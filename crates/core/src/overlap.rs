//! Threaded overlap prefetcher: the real-data counterpart of the simulated
//! overlap in [`crate::session`].
//!
//! Algorithm 1 hides prefetch latency behind rendering. In the simulator
//! that is a `max(render, prefetch)` accounting rule; here it is an actual
//! worker thread that pulls block payloads from a [`BlockSource`] into a
//! shared resident set while the caller renders. Used by the example
//! binaries that drive the CPU ray caster over a disk-backed store.

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use viz_volume::{BlockKey, BlockSource};

/// Shared pool of resident block payloads.
///
/// The renderer reads blocks out of the pool; the prefetcher inserts them.
/// Eviction is the caller's business (the pool only stores what it is
/// given) — policy decisions stay in `viz-cache`.
#[derive(Debug, Default)]
pub struct BlockPool {
    blocks: RwLock<HashMap<BlockKey, Arc<Vec<f32>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BlockPool {
    /// Create an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a resident block, counting hit/miss statistics.
    pub fn get(&self, key: BlockKey) -> Option<Arc<Vec<f32>>> {
        let got = self.blocks.read().get(&key).cloned();
        match got {
            Some(b) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(b)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Residency check without statistics side effects.
    pub fn contains(&self, key: BlockKey) -> bool {
        self.blocks.read().contains_key(&key)
    }

    /// Insert a payload.
    pub fn insert(&self, key: BlockKey, data: Vec<f32>) {
        self.blocks.write().insert(key, Arc::new(data));
    }

    /// Drop a block (eviction decided by the cache layer).
    pub fn remove(&self, key: BlockKey) {
        self.blocks.write().remove(&key);
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.blocks.read().len()
    }

    /// `true` when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }
}

enum Request {
    Fetch(BlockKey),
    /// Fence: reply when every prior request has been serviced.
    Sync(Sender<()>),
    Shutdown,
}

/// Background worker that loads blocks from a [`BlockSource`] into a
/// [`BlockPool`], overlapping with the caller's rendering work.
pub struct Prefetcher {
    tx: Sender<Request>,
    handle: Option<JoinHandle<u64>>,
}

impl Prefetcher {
    /// Spawn the worker. `queue_depth` bounds the request channel so a
    /// runaway producer back-pressures instead of ballooning memory.
    pub fn spawn(source: Arc<dyn BlockSource>, pool: Arc<BlockPool>, queue_depth: usize) -> Self {
        assert!(queue_depth > 0);
        let (tx, rx): (Sender<Request>, Receiver<Request>) = bounded(queue_depth);
        let handle = std::thread::Builder::new()
            .name("viz-prefetcher".into())
            .spawn(move || {
                let mut fetched = 0u64;
                while let Ok(req) = rx.recv() {
                    match req {
                        Request::Fetch(key) => {
                            if !pool.contains(key) {
                                if let Ok(data) = source.read_block(key) {
                                    pool.insert(key, data);
                                    fetched += 1;
                                }
                            }
                        }
                        Request::Sync(ack) => {
                            let _ = ack.send(());
                        }
                        Request::Shutdown => break,
                    }
                }
                fetched
            })
            .expect("failed to spawn prefetcher thread");
        Prefetcher { tx, handle: Some(handle) }
    }

    /// Enqueue a block for background loading. Blocks when the queue is
    /// full (back-pressure); returns `false` if the worker is gone.
    pub fn request(&self, key: BlockKey) -> bool {
        self.tx.send(Request::Fetch(key)).is_ok()
    }

    /// Wait until every previously enqueued request has been serviced.
    pub fn sync(&self) {
        let (ack_tx, ack_rx) = bounded(1);
        if self.tx.send(Request::Sync(ack_tx)).is_ok() {
            let _ = ack_rx.recv();
        }
    }

    /// Stop the worker and return how many blocks it fetched.
    pub fn shutdown(mut self) -> u64 {
        let _ = self.tx.send(Request::Shutdown);
        self.handle.take().map(|h| h.join().unwrap_or(0)).unwrap_or(0)
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        if let Some(h) = self.handle.take() {
            let _ = self.tx.send(Request::Shutdown);
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viz_volume::{BlockId, MemBlockStore};

    fn store_with(n: u32) -> Arc<MemBlockStore> {
        let s = MemBlockStore::new();
        for i in 0..n {
            s.insert(BlockKey::scalar(BlockId(i)), vec![i as f32; 8]);
        }
        Arc::new(s)
    }

    #[test]
    fn pool_get_insert_remove() {
        let pool = BlockPool::new();
        let key = BlockKey::scalar(BlockId(1));
        assert!(pool.get(key).is_none());
        pool.insert(key, vec![1.0, 2.0]);
        assert_eq!(pool.get(key).unwrap().as_slice(), &[1.0, 2.0]);
        pool.remove(key);
        assert!(pool.get(key).is_none());
        assert_eq!(pool.stats(), (1, 2));
    }

    #[test]
    fn prefetcher_loads_requested_blocks() {
        let source = store_with(16);
        let pool = Arc::new(BlockPool::new());
        let pf = Prefetcher::spawn(source, pool.clone(), 32);
        for i in 0..16u32 {
            assert!(pf.request(BlockKey::scalar(BlockId(i))));
        }
        pf.sync();
        assert_eq!(pool.len(), 16);
        assert_eq!(pool.get(BlockKey::scalar(BlockId(5))).unwrap().as_slice(), &[5.0f32; 8]);
        let fetched = pf.shutdown();
        assert_eq!(fetched, 16);
    }

    #[test]
    fn duplicate_requests_fetch_once() {
        let source = store_with(2);
        let pool = Arc::new(BlockPool::new());
        let pf = Prefetcher::spawn(source, pool.clone(), 8);
        for _ in 0..5 {
            pf.request(BlockKey::scalar(BlockId(0)));
        }
        pf.sync();
        assert_eq!(pf.shutdown(), 1);
    }

    #[test]
    fn missing_blocks_are_skipped_silently() {
        let source = store_with(1);
        let pool = Arc::new(BlockPool::new());
        let pf = Prefetcher::spawn(source, pool.clone(), 8);
        pf.request(BlockKey::scalar(BlockId(0)));
        pf.request(BlockKey::scalar(BlockId(99))); // not in the store
        pf.sync();
        assert_eq!(pool.len(), 1);
        pf.shutdown();
    }

    #[test]
    fn sync_is_a_barrier() {
        let source = store_with(64);
        let pool = Arc::new(BlockPool::new());
        let pf = Prefetcher::spawn(source, pool.clone(), 64);
        for i in 0..64u32 {
            pf.request(BlockKey::scalar(BlockId(i)));
        }
        pf.sync();
        // After sync every requested block must be resident.
        for i in 0..64u32 {
            assert!(pool.contains(BlockKey::scalar(BlockId(i))), "block {i} missing after sync");
        }
        pf.shutdown();
    }

    #[test]
    fn drop_shuts_worker_down() {
        let source = store_with(4);
        let pool = Arc::new(BlockPool::new());
        {
            let pf = Prefetcher::spawn(source, pool.clone(), 8);
            pf.request(BlockKey::scalar(BlockId(0)));
            // Dropped without explicit shutdown.
        }
        // Reaching here without hanging is the assertion.
    }
}
