//! Importance-aware data partitioning and parallel fetching — the paper's
//! stated future work (§VI: "extend our method for parallel data fetching
//! and rendering ... study data partitioning and distribution schemes by
//! leveraging data importance information").
//!
//! Blocks are distributed across `k` independent storage devices. A frame's
//! fetch set is serviced in parallel, so its latency is the *maximum* of
//! the per-device queue times. Because the app-aware policy concentrates
//! traffic on high-entropy blocks, placing them round-robin by id can pile
//! several hot blocks onto one device; balancing devices by aggregate
//! entropy (greedy LPT) flattens the hot set across all spindles.

use crate::importance::ImportanceTable;
use serde::{Deserialize, Serialize};
use viz_cache::TierCost;
use viz_volume::BlockId;

/// Identifier of a storage device in a striped set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DeviceId(pub u16);

/// A block→device placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Distribution {
    /// `assignment[block.index()]` = owning device.
    assignment: Vec<DeviceId>,
    /// Number of devices.
    pub devices: u16,
}

impl Distribution {
    /// Round-robin striping by block id (the importance-oblivious default).
    pub fn round_robin(num_blocks: usize, devices: u16) -> Self {
        assert!(devices > 0, "need at least one device");
        Distribution {
            assignment: (0..num_blocks).map(|i| DeviceId((i % devices as usize) as u16)).collect(),
            devices,
        }
    }

    /// Importance-balanced placement: greedy LPT (longest-processing-time)
    /// over block entropies — blocks in descending importance, each to the
    /// device with the smallest entropy load so far. Guarantees a per-
    /// device entropy load within 4/3 of optimal (classic LPT bound).
    pub fn importance_balanced(importance: &ImportanceTable, devices: u16) -> Self {
        assert!(devices > 0, "need at least one device");
        let mut assignment = vec![DeviceId(0); importance.len()];
        let mut load = vec![0.0f64; devices as usize];
        for entry in importance.ranked() {
            let dev = load
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            assignment[entry.block.index()] = DeviceId(dev as u16);
            // Weight by entropy + epsilon so zero-entropy blocks still
            // spread by count.
            load[dev] += entry.entropy + 1e-3;
        }
        Distribution { assignment, devices }
    }

    /// Owning device of a block.
    #[inline]
    pub fn device_of(&self, b: BlockId) -> DeviceId {
        self.assignment[b.index()]
    }

    /// Number of blocks assigned to each device.
    pub fn block_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.devices as usize];
        for d in &self.assignment {
            counts[d.0 as usize] += 1;
        }
        counts
    }

    /// Aggregate entropy load per device under `importance`.
    pub fn entropy_loads(&self, importance: &ImportanceTable) -> Vec<f64> {
        let mut loads = vec![0.0f64; self.devices as usize];
        for (i, d) in self.assignment.iter().enumerate() {
            loads[d.0 as usize] += importance.entropy(BlockId(i as u32));
        }
        loads
    }

    /// Imbalance factor of a load vector: `max / mean` (1.0 = perfect).
    pub fn imbalance(loads: &[f64]) -> f64 {
        if loads.is_empty() {
            return 1.0;
        }
        let total: f64 = loads.iter().sum();
        let mean = total / loads.len() as f64;
        if mean <= 0.0 {
            return 1.0;
        }
        loads.iter().cloned().fold(0.0, f64::max) / mean
    }
}

/// Parallel fetch-latency model: each device serves its assigned blocks
/// sequentially (latency + bytes/bandwidth per block); devices run
/// concurrently, so the set's latency is the slowest device's queue.
pub fn parallel_fetch_time(
    blocks: &[BlockId],
    dist: &Distribution,
    device_cost: TierCost,
    block_bytes: usize,
) -> f64 {
    let mut queue = vec![0.0f64; dist.devices as usize];
    for &b in blocks {
        queue[dist.device_of(b).0 as usize] += device_cost.read_time(block_bytes);
    }
    queue.into_iter().fold(0.0, f64::max)
}

/// Fetch latency without striping (single device services everything) —
/// the baseline the speedup is measured against.
pub fn serial_fetch_time(blocks: &[BlockId], device_cost: TierCost, block_bytes: usize) -> f64 {
    blocks.len() as f64 * device_cost.read_time(block_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn importance(entropies: Vec<f64>) -> ImportanceTable {
        ImportanceTable::from_entropies(entropies, 64)
    }

    #[test]
    fn round_robin_spreads_counts_evenly() {
        let d = Distribution::round_robin(10, 3);
        assert_eq!(d.block_counts(), vec![4, 3, 3]);
        assert_eq!(d.device_of(BlockId(4)), DeviceId(1));
    }

    #[test]
    fn balanced_distribution_flattens_entropy() {
        // Hot blocks clustered at even ids: round-robin with 2 devices puts
        // ALL heat on device 0; LPT splits it.
        let ent: Vec<f64> = (0..64).map(|i| if i % 2 == 0 { 5.0 } else { 0.0 }).collect();
        let imp = importance(ent);
        let rr = Distribution::round_robin(64, 2);
        let lpt = Distribution::importance_balanced(&imp, 2);
        let rr_imb = Distribution::imbalance(&rr.entropy_loads(&imp));
        let lpt_imb = Distribution::imbalance(&lpt.entropy_loads(&imp));
        assert!(rr_imb > 1.9, "round-robin should be pathological here ({rr_imb})");
        assert!(lpt_imb < 1.05, "LPT should balance ({lpt_imb})");
    }

    #[test]
    fn lpt_respects_classic_bound() {
        // LPT makespan <= 4/3 OPT; a weaker sanity check: max load <=
        // 4/3 * mean + max single item.
        let ent: Vec<f64> = (0..100).map(|i| ((i * 37) % 13) as f64).collect();
        let imp = importance(ent.clone());
        for k in [2u16, 3, 5, 8] {
            let d = Distribution::importance_balanced(&imp, k);
            let loads = d.entropy_loads(&imp);
            let total: f64 = loads.iter().sum();
            let mean = total / k as f64;
            let max_item = ent.iter().cloned().fold(0.0, f64::max);
            let max_load = loads.iter().cloned().fold(0.0, f64::max);
            assert!(
                max_load <= mean * 4.0 / 3.0 + max_item,
                "k={k}: load {max_load} vs mean {mean}"
            );
        }
    }

    #[test]
    fn every_block_is_assigned_exactly_once() {
        let imp = importance((0..50).map(|i| i as f64 * 0.1).collect());
        let d = Distribution::importance_balanced(&imp, 4);
        assert_eq!(d.block_counts().iter().sum::<usize>(), 50);
    }

    #[test]
    fn parallel_fetch_beats_serial() {
        let imp = importance(vec![1.0; 40]);
        let d = Distribution::importance_balanced(&imp, 4);
        let blocks: Vec<BlockId> = (0..40).map(BlockId).collect();
        let cost = TierCost::hdd();
        let par = parallel_fetch_time(&blocks, &d, cost, 1 << 20);
        let ser = serial_fetch_time(&blocks, cost, 1 << 20);
        // Perfect 4-way stripe → exactly 4x.
        assert!((ser / par - 4.0).abs() < 1e-9, "speedup {}", ser / par);
    }

    #[test]
    fn hot_set_fetch_is_faster_under_balanced_placement() {
        // The working set is the hot half of the blocks; balanced placement
        // stripes it across devices, round-robin concentrates it.
        let ent: Vec<f64> = (0..64).map(|i| if i < 32 { 4.0 } else { 0.0 }).collect();
        let imp = importance(ent);
        // Adversarial round-robin: hot blocks are ids 0..32; with 2 devices
        // they do spread — craft instead hot blocks on even ids.
        let ent2: Vec<f64> = (0..64).map(|i| if i % 2 == 0 { 4.0 } else { 0.0 }).collect();
        let imp2 = importance(ent2);
        let hot: Vec<BlockId> = (0..64).step_by(2).map(BlockId).collect();
        let rr = Distribution::round_robin(64, 2);
        let bal = Distribution::importance_balanced(&imp2, 2);
        let cost = TierCost::hdd();
        let t_rr = parallel_fetch_time(&hot, &rr, cost, 1 << 20);
        let t_bal = parallel_fetch_time(&hot, &bal, cost, 1 << 20);
        assert!(t_bal < t_rr * 0.6, "balanced {t_bal} should be ~half of round-robin {t_rr}");
        let _ = imp;
    }

    #[test]
    fn single_device_parallel_equals_serial() {
        let imp = importance(vec![1.0; 8]);
        let d = Distribution::importance_balanced(&imp, 1);
        let blocks: Vec<BlockId> = (0..8).map(BlockId).collect();
        let cost = TierCost::ssd();
        assert_eq!(
            parallel_fetch_time(&blocks, &d, cost, 4096),
            serial_fetch_time(&blocks, cost, 4096)
        );
    }

    #[test]
    fn imbalance_of_uniform_loads_is_one() {
        assert_eq!(Distribution::imbalance(&[2.0, 2.0, 2.0]), 1.0);
        assert!(Distribution::imbalance(&[4.0, 0.0]) > 1.9);
        assert_eq!(Distribution::imbalance(&[]), 1.0);
    }

    #[test]
    #[should_panic]
    fn zero_devices_panics() {
        Distribution::round_robin(4, 0);
    }
}
