//! Closed-loop controllers: the shared integral-controller abstraction
//! and the adaptive-σ policy built on it.
//!
//! The paper leaves its knobs — the entropy threshold σ, the vicinal
//! radius `r`, and (one layer up) the serve admission watermarks — as
//! free parameters. Each has the same operational shape: a scalar output
//! bounded to a safe range, chasing a measurable target ("prefetch time ≈
//! render time", "demand p99 ≤ SLO"), where over- and under-shoot by
//! equal *factors* deserve equal corrections. [`IntegralController`] is
//! that shape, extracted once: a log-ratio integral controller whose
//! integrator *is* the clamped output — the standard conditional
//! anti-windup, so a controller that sat pinned at a bound for an hour
//! responds to the first reversal at full gain instead of unwinding an
//! accumulated error backlog.
//!
//! [`SigmaController`] (the original in-process session tuner, and since
//! the serve wiring also the server-side flight tuner) is a thin facade
//! over it; the `viz-adapt` control plane builds its ladder and radius
//! tuners from the same primitive.

use serde::{Deserialize, Serialize};

/// Configuration of a bounded log-ratio integral controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Integral gain, in output units per unit of log-ratio error.
    pub gain: f64,
    /// Lower output clamp.
    pub min: f64,
    /// Upper output clamp.
    pub max: f64,
}

impl ControllerConfig {
    /// A controller confined to `[min, max]` with `gain`.
    pub fn new(gain: f64, min: f64, max: f64) -> Self {
        assert!(gain >= 0.0, "gain must be non-negative");
        assert!(min <= max, "controller bounds inverted");
        ControllerConfig { gain, min, max }
    }
}

/// A bounded integral controller on log-ratio error (see module docs).
///
/// `observe(actual, target)` nudges the output by
/// `gain · ln(actual/target)` and clamps it into `[min, max]`. Because
/// the clamped output is the *only* integrator state, saturation cannot
/// wind up: at a bound the controller simply stays there, and the first
/// error reversal moves it immediately.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntegralController {
    cfg: ControllerConfig,
    output: f64,
}

impl IntegralController {
    /// Start from `initial` (clamped into bounds).
    pub fn new(cfg: ControllerConfig, initial: f64) -> Self {
        assert!(cfg.gain >= 0.0, "gain must be non-negative");
        assert!(cfg.min <= cfg.max, "controller bounds inverted");
        IntegralController { cfg, output: initial.clamp(cfg.min, cfg.max) }
    }

    /// The current output.
    pub fn output(&self) -> f64 {
        self.output
    }

    /// The configuration in force.
    pub fn config(&self) -> ControllerConfig {
        self.cfg
    }

    /// `true` when the output sits at its lower bound.
    pub fn at_min(&self) -> bool {
        self.output <= self.cfg.min
    }

    /// `true` when the output sits at its upper bound.
    pub fn at_max(&self) -> bool {
        self.output >= self.cfg.max
    }

    /// Feed one measurement of `actual` against `target`; returns the
    /// updated output. Raises the output when `actual > target`, lowers
    /// it when under; non-positive or non-finite inputs carry no signal
    /// and leave the output unchanged.
    pub fn observe(&mut self, actual: f64, target: f64) -> f64 {
        if !(actual.is_finite() && target.is_finite()) || actual <= 0.0 || target <= 0.0 {
            return self.output;
        }
        let error = (actual / target).ln();
        self.output = (self.output + self.cfg.gain * error).clamp(self.cfg.min, self.cfg.max);
        self.output
    }

    /// [`observe`](Self::observe) with the correction sign flipped —
    /// for plants where a *larger* output should push `actual` up (e.g.
    /// a watermark scale that must grow when latency is comfortably
    /// under its SLO).
    pub fn observe_inverse(&mut self, actual: f64, target: f64) -> f64 {
        if !(actual.is_finite() && target.is_finite()) || actual <= 0.0 || target <= 0.0 {
            return self.output;
        }
        let error = (target / actual).ln();
        self.output = (self.output + self.cfg.gain * error).clamp(self.cfg.min, self.cfg.max);
        self.output
    }
}

/// Debounced discrete switching: a challenger must beat the incumbent
/// for `patience` *consecutive* evaluations before a switch is taken.
///
/// Controllers that pick among discrete arms (the policy selector
/// choosing from the replacement zoo) need this, not a gain: a single
/// noisy window must never flip a cache policy and throw away residency
/// state that took thousands of accesses to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hysteresis {
    patience: u32,
    streak: u32,
    candidate: Option<usize>,
}

impl Hysteresis {
    /// Require `patience` consecutive wins (≥ 1) before switching.
    pub fn new(patience: u32) -> Self {
        assert!(patience >= 1, "patience must be at least 1");
        Hysteresis { patience, streak: 0, candidate: None }
    }

    /// Report the winner of one evaluation window: `None` means the
    /// incumbent held. Returns `Some(arm)` when `arm` has now won
    /// `patience` consecutive windows and the switch should be taken
    /// (the streak resets so the next switch needs a fresh run).
    pub fn observe(&mut self, winner: Option<usize>) -> Option<usize> {
        match winner {
            None => {
                self.streak = 0;
                self.candidate = None;
                None
            }
            Some(arm) => {
                if self.candidate == Some(arm) {
                    self.streak += 1;
                } else {
                    self.candidate = Some(arm);
                    self.streak = 1;
                }
                if self.streak >= self.patience {
                    self.streak = 0;
                    self.candidate = None;
                    Some(arm)
                } else {
                    None
                }
            }
        }
    }

    /// Consecutive wins the current candidate holds.
    pub fn streak(&self) -> u32 {
        self.streak
    }
}

/// Configuration of the σ controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveSigma {
    /// Integral gain, in entropy bits per unit of (log) budget error.
    pub gain: f64,
    /// Lower σ clamp (bits).
    pub min_sigma: f64,
    /// Upper σ clamp (bits).
    pub max_sigma: f64,
    /// Target prefetch/render ratio (1.0 = exactly fill the window; use
    /// slightly below 1 to leave headroom).
    pub target_ratio: f64,
}

impl AdaptiveSigma {
    /// Reasonable defaults for 64-bin entropies: gain 0.25 bits, σ within
    /// `[0, 6]`, aim to fill 90% of the render window.
    pub fn default_for_bins(bins: usize) -> Self {
        AdaptiveSigma {
            gain: 0.25,
            min_sigma: 0.0,
            max_sigma: (bins as f64).log2(),
            target_ratio: 0.9,
        }
    }
}

/// The σ controller: prefetch is free exactly while it hides under
/// rendering (§IV-D), so the ideal σ admits just enough blocks that
/// per-step prefetch time ≈ render time. A facade over
/// [`IntegralController`] — σ rises (prefetch less) when prefetch spills
/// past the render window, falls (use the idle I/O) when under-used.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SigmaController {
    cfg: AdaptiveSigma,
    inner: IntegralController,
}

impl SigmaController {
    /// Start from an initial σ.
    pub fn new(cfg: AdaptiveSigma, initial_sigma: f64) -> Self {
        assert!(cfg.target_ratio > 0.0, "target ratio must be positive");
        let inner = IntegralController::new(
            ControllerConfig::new(cfg.gain, cfg.min_sigma, cfg.max_sigma),
            initial_sigma,
        );
        SigmaController { cfg, inner }
    }

    /// Current threshold.
    pub fn sigma(&self) -> f64 {
        self.inner.output()
    }

    /// The configuration in force.
    pub fn config(&self) -> AdaptiveSigma {
        self.cfg
    }

    /// Feed one step's measured prefetch and render durations; returns the
    /// updated σ. Uses the log of the fill ratio so over- and under-shoot
    /// of equal *factors* produce equal corrections.
    pub fn observe(&mut self, prefetch_s: f64, render_s: f64) -> f64 {
        if render_s <= 0.0 {
            return self.sigma();
        }
        let target = self.cfg.target_ratio * render_s;
        // Steps with zero prefetch (everything already resident) carry no
        // signal about σ being too high — treat as a mild "lower σ" nudge
        // by flooring the reading at half the target, which bounds the
        // per-step correction to `gain * ln(1/2)` instead of letting a
        // single empty step slam σ to its minimum clamp.
        let actual = prefetch_s.max(0.5 * target);
        self.inner.observe(actual, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(initial: f64) -> SigmaController {
        SigmaController::new(AdaptiveSigma::default_for_bins(64), initial)
    }

    #[test]
    fn overshoot_raises_sigma() {
        let mut c = controller(2.0);
        let before = c.sigma();
        c.observe(0.2, 0.05); // prefetch 4x the render window
        assert!(c.sigma() > before);
    }

    #[test]
    fn undershoot_lowers_sigma() {
        let mut c = controller(2.0);
        let before = c.sigma();
        c.observe(0.001, 0.05);
        assert!(c.sigma() < before);
    }

    #[test]
    fn balanced_step_is_near_fixed_point() {
        let mut c = controller(2.0);
        let before = c.sigma();
        c.observe(0.9 * 0.05, 0.05); // exactly the target ratio
        assert!((c.sigma() - before).abs() < 1e-9);
    }

    #[test]
    fn sigma_stays_clamped() {
        let mut c = controller(5.9);
        for _ in 0..100 {
            c.observe(10.0, 0.01); // massive overshoot
        }
        assert!(c.sigma() <= 6.0 + 1e-12);
        let mut c = controller(0.1);
        for _ in 0..100 {
            c.observe(0.0, 0.01);
        }
        assert!(c.sigma() >= 0.0);
    }

    #[test]
    fn zero_render_time_is_a_noop() {
        let mut c = controller(2.0);
        let before = c.sigma();
        c.observe(0.5, 0.0);
        assert_eq!(c.sigma(), before);
    }

    #[test]
    fn converges_on_a_monotone_plant() {
        // Toy plant: prefetch time decreases as sigma rises. The controller
        // must settle near the sigma where prefetch = 0.9 * render.
        let render = 0.05;
        let plant = |sigma: f64| (6.0 - sigma).max(0.0) * 0.02; // s
        let mut c = controller(0.5);
        for _ in 0..200 {
            let p = plant(c.sigma());
            c.observe(p, render);
        }
        let settled = plant(c.sigma());
        assert!(
            (settled - 0.9 * render).abs() < 0.01,
            "settled prefetch {settled} vs target {}",
            0.9 * render
        );
    }

    #[test]
    #[should_panic]
    fn inverted_bounds_panic() {
        SigmaController::new(
            AdaptiveSigma { gain: 0.1, min_sigma: 5.0, max_sigma: 1.0, target_ratio: 0.9 },
            2.0,
        );
    }

    // ---- anti-windup: the satellite's bound-recovery contract --------

    /// How far one reversal step of the given factor must move σ: the
    /// full `gain · ln(factor)` correction, because a clamped integrator
    /// holds no hidden backlog to unwind first.
    fn one_step_correction(gain: f64, factor: f64) -> f64 {
        gain * factor.ln()
    }

    #[test]
    fn no_windup_at_upper_sigma_bound() {
        let cfg = AdaptiveSigma::default_for_bins(64);
        let mut c = SigmaController::new(cfg, 3.0);
        // Saturate hard at max for a long time: prefetch 100x the window.
        for _ in 0..1_000 {
            c.observe(5.0, 0.05);
        }
        assert!((c.sigma() - cfg.max_sigma).abs() < 1e-12, "pinned at max");
        // One reversal (prefetch at half target — the floor of the
        // under-target reading) must immediately move σ down by the full
        // single-step correction — no accumulated error.
        let before = c.sigma();
        c.observe(0.5 * cfg.target_ratio * 0.05, 0.05);
        let moved = before - c.sigma();
        let expect = one_step_correction(cfg.gain, 2.0);
        assert!((moved - expect).abs() < 1e-9, "windup detected: moved {moved} expected {expect}");
        // Readings below half target are floored there, so even a zero
        // reading applies the same bounded nudge — an empty step can
        // never slam σ across its range.
        let before = c.sigma();
        c.observe(0.0, 0.05);
        let moved = before - c.sigma();
        assert!(
            (moved - expect).abs() < 1e-9,
            "empty-step nudge unbounded: moved {moved} expected {expect}"
        );
    }

    #[test]
    fn no_windup_at_lower_sigma_bound() {
        let cfg = AdaptiveSigma::default_for_bins(64);
        let mut c = SigmaController::new(cfg, 2.0);
        // Saturate at min: prefetch far under target for a long time.
        for _ in 0..1_000 {
            c.observe(1e-9, 0.05);
        }
        assert!((c.sigma() - cfg.min_sigma).abs() < 1e-12, "pinned at min");
        // One overshoot by 4x must raise σ by the full correction.
        let before = c.sigma();
        c.observe(4.0 * cfg.target_ratio * 0.05, 0.05);
        let moved = c.sigma() - before;
        let expect = one_step_correction(cfg.gain, 4.0);
        assert!((moved - expect).abs() < 1e-9, "windup detected: moved {moved} expected {expect}");
    }

    // ---- the generic controller ------------------------------------

    #[test]
    fn integral_controller_tracks_and_clamps() {
        let mut c = IntegralController::new(ControllerConfig::new(0.5, 0.0, 10.0), 5.0);
        assert_eq!(c.output(), 5.0);
        c.observe(2.0, 1.0); // over target: raise
        assert!(c.output() > 5.0);
        c.observe(1.0, 2.0); // under target: back down
        assert!((c.output() - 5.0).abs() < 1e-12);
        for _ in 0..200 {
            c.observe(100.0, 1.0);
        }
        assert!(c.at_max());
        for _ in 0..200 {
            c.observe(1.0, 100.0);
        }
        assert!(c.at_min());
    }

    #[test]
    fn inverse_observation_flips_direction() {
        let mut c = IntegralController::new(ControllerConfig::new(0.5, 0.0, 10.0), 5.0);
        c.observe_inverse(2.0, 1.0); // actual above target: inverse lowers
        assert!(c.output() < 5.0);
        c.observe_inverse(1.0, 4.0);
        assert!(c.output() > 5.0 - 0.5 * 2.0f64.ln() + 1e-12 - 1.0, "raises when under");
    }

    #[test]
    fn degenerate_inputs_are_noops() {
        let mut c = IntegralController::new(ControllerConfig::new(0.5, 0.0, 10.0), 5.0);
        c.observe(0.0, 1.0);
        c.observe(1.0, 0.0);
        c.observe(f64::NAN, 1.0);
        c.observe(1.0, f64::NAN);
        c.observe_inverse(0.0, 0.0);
        assert_eq!(c.output(), 5.0);
    }

    #[test]
    fn initial_output_is_clamped() {
        let c = IntegralController::new(ControllerConfig::new(0.1, 1.0, 2.0), 99.0);
        assert_eq!(c.output(), 2.0);
    }

    #[test]
    fn hysteresis_requires_consecutive_wins() {
        let mut h = Hysteresis::new(3);
        assert_eq!(h.observe(Some(1)), None);
        assert_eq!(h.observe(Some(1)), None);
        assert_eq!(h.streak(), 2);
        // A different winner resets the streak.
        assert_eq!(h.observe(Some(2)), None);
        assert_eq!(h.streak(), 1);
        // The incumbent holding resets everything.
        assert_eq!(h.observe(None), None);
        assert_eq!(h.streak(), 0);
        // Three consecutive wins switch, then the state is fresh.
        assert_eq!(h.observe(Some(2)), None);
        assert_eq!(h.observe(Some(2)), None);
        assert_eq!(h.observe(Some(2)), Some(2));
        assert_eq!(h.streak(), 0);
        assert_eq!(h.observe(Some(2)), None, "post-switch needs a fresh run");
    }

    #[test]
    fn hysteresis_patience_one_switches_immediately() {
        let mut h = Hysteresis::new(1);
        assert_eq!(h.observe(Some(4)), Some(4));
    }
}
