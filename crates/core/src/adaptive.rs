//! Adaptive σ: closed-loop tuning of the entropy threshold.
//!
//! The paper leaves σ as a free parameter. But σ has a natural operational
//! target: prefetch is free exactly while it hides under rendering
//! (§IV-D), so the *ideal* σ admits just enough blocks that per-step
//! prefetch time ≈ render time. This module provides a small integral
//! controller that chases that target online — raising σ (prefetch less)
//! when prefetch spills past the render window and lowering it (use the
//! idle I/O) when the window is under-used.

use serde::{Deserialize, Serialize};

/// Configuration of the σ controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveSigma {
    /// Integral gain, in entropy bits per unit of (log) budget error.
    pub gain: f64,
    /// Lower σ clamp (bits).
    pub min_sigma: f64,
    /// Upper σ clamp (bits).
    pub max_sigma: f64,
    /// Target prefetch/render ratio (1.0 = exactly fill the window; use
    /// slightly below 1 to leave headroom).
    pub target_ratio: f64,
}

impl AdaptiveSigma {
    /// Reasonable defaults for 64-bin entropies: gain 0.25 bits, σ within
    /// `[0, 6]`, aim to fill 90% of the render window.
    pub fn default_for_bins(bins: usize) -> Self {
        AdaptiveSigma {
            gain: 0.25,
            min_sigma: 0.0,
            max_sigma: (bins as f64).log2(),
            target_ratio: 0.9,
        }
    }
}

/// The controller state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SigmaController {
    cfg: AdaptiveSigma,
    sigma: f64,
}

impl SigmaController {
    /// Start from an initial σ.
    pub fn new(cfg: AdaptiveSigma, initial_sigma: f64) -> Self {
        assert!(cfg.gain >= 0.0, "gain must be non-negative");
        assert!(cfg.min_sigma <= cfg.max_sigma, "sigma bounds inverted");
        assert!(cfg.target_ratio > 0.0, "target ratio must be positive");
        SigmaController { cfg, sigma: initial_sigma.clamp(cfg.min_sigma, cfg.max_sigma) }
    }

    /// Current threshold.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Feed one step's measured prefetch and render durations; returns the
    /// updated σ. Uses the log of the fill ratio so over- and under-shoot
    /// of equal *factors* produce equal corrections.
    pub fn observe(&mut self, prefetch_s: f64, render_s: f64) -> f64 {
        if render_s <= 0.0 {
            return self.sigma;
        }
        let target = self.cfg.target_ratio * render_s;
        // Steps with zero prefetch (everything already resident) carry no
        // signal about σ being too high — treat as a mild "lower σ" nudge
        // through the epsilon floor.
        let actual = prefetch_s.max(1e-6 * render_s);
        let error = (actual / target).ln();
        self.sigma =
            (self.sigma + self.cfg.gain * error).clamp(self.cfg.min_sigma, self.cfg.max_sigma);
        self.sigma
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(initial: f64) -> SigmaController {
        SigmaController::new(AdaptiveSigma::default_for_bins(64), initial)
    }

    #[test]
    fn overshoot_raises_sigma() {
        let mut c = controller(2.0);
        let before = c.sigma();
        c.observe(0.2, 0.05); // prefetch 4x the render window
        assert!(c.sigma() > before);
    }

    #[test]
    fn undershoot_lowers_sigma() {
        let mut c = controller(2.0);
        let before = c.sigma();
        c.observe(0.001, 0.05);
        assert!(c.sigma() < before);
    }

    #[test]
    fn balanced_step_is_near_fixed_point() {
        let mut c = controller(2.0);
        let before = c.sigma();
        c.observe(0.9 * 0.05, 0.05); // exactly the target ratio
        assert!((c.sigma() - before).abs() < 1e-9);
    }

    #[test]
    fn sigma_stays_clamped() {
        let mut c = controller(5.9);
        for _ in 0..100 {
            c.observe(10.0, 0.01); // massive overshoot
        }
        assert!(c.sigma() <= 6.0 + 1e-12);
        let mut c = controller(0.1);
        for _ in 0..100 {
            c.observe(0.0, 0.01);
        }
        assert!(c.sigma() >= 0.0);
    }

    #[test]
    fn zero_render_time_is_a_noop() {
        let mut c = controller(2.0);
        let before = c.sigma();
        c.observe(0.5, 0.0);
        assert_eq!(c.sigma(), before);
    }

    #[test]
    fn converges_on_a_monotone_plant() {
        // Toy plant: prefetch time decreases as sigma rises. The controller
        // must settle near the sigma where prefetch = 0.9 * render.
        let render = 0.05;
        let plant = |sigma: f64| (6.0 - sigma).max(0.0) * 0.02; // s
        let mut c = controller(0.5);
        for _ in 0..200 {
            let p = plant(c.sigma());
            c.observe(p, render);
        }
        let settled = plant(c.sigma());
        assert!(
            (settled - 0.9 * render).abs() < 0.01,
            "settled prefetch {settled} vs target {}",
            0.9 * render
        );
    }

    #[test]
    #[should_panic]
    fn inverted_bounds_panic() {
        SigmaController::new(
            AdaptiveSigma { gain: 0.1, min_sigma: 5.0, max_sigma: 1.0, target_ratio: 0.9 },
            2.0,
        );
    }
}
