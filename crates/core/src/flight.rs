//! Per-client flight state for the serve layer: one camera path plus the
//! `T_visible` / `T_important` handles that drive it.
//!
//! The paper's tables are built once per dataset, but every *viewer* flies
//! its own path over them. A [`ClientFlight`] packages what one client
//! session needs — the pose sequence, the per-step visible sets, and
//! (optionally) shared [`Arc`] handles to the prediction tables — and
//! turns each step into a [`FrameRequest`]: the demand keys the frame
//! cannot render without, plus the entropy-prioritized prefetch list for
//! the step after it. The serve registry holds one flight per session;
//! bench clients replay them directly.

use crate::importance::ImportanceTable;
use crate::sampling::VisibleTable;
use crate::session::compute_visibility;
use std::sync::Arc;
use viz_geom::CameraPose;
use viz_volume::{BlockId, BlockKey, BrickLayout};

/// What one frame of a flight asks of the fetch layer.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameRequest {
    /// Step index within the flight (before any rotation is applied).
    pub step: usize,
    /// The flight's generation after this frame: monotone, bumped once per
    /// [`ClientFlight::next_frame`], mirroring the engine's camera-step
    /// cancellation counter but scoped to one client.
    pub generation: u64,
    /// Blocks the frame renders from — fetched at demand priority.
    pub demand: Vec<BlockKey>,
    /// `(key, priority)` speculation for the upcoming step; priority is
    /// `T_important` entropy when tables are attached, 1.0 otherwise.
    pub prefetch: Vec<(BlockKey, f64)>,
}

/// One client's replayable camera flight (see module docs).
#[derive(Clone)]
pub struct ClientFlight {
    var: u16,
    time: u16,
    poses: Vec<CameraPose>,
    visible: Vec<Vec<BlockId>>,
    tables: Option<(Arc<VisibleTable>, Arc<ImportanceTable>)>,
    sigma: f64,
    cursor: usize,
    generation: u64,
}

impl ClientFlight {
    /// Build a flight over `layout`, computing each pose's visible set via
    /// the BVH. Attach `tables` to prefetch from `T_visible` predictions
    /// filtered by `T_important` entropy ≥ `sigma` (Algorithm 1's gate);
    /// without tables, prefetch falls back to the next step's ground-truth
    /// visible set at uniform priority.
    pub fn new(
        layout: &BrickLayout,
        poses: Vec<CameraPose>,
        tables: Option<(Arc<VisibleTable>, Arc<ImportanceTable>)>,
        sigma: f64,
    ) -> Self {
        let visible = compute_visibility(layout, &poses);
        Self::from_visible(poses, visible, tables, sigma)
    }

    /// Build from precomputed per-step visible sets (`visible[i]` pairs
    /// with `poses[i]`). The serve bench shares one visibility computation
    /// across many phase-shifted clients this way.
    pub fn from_visible(
        poses: Vec<CameraPose>,
        visible: Vec<Vec<BlockId>>,
        tables: Option<(Arc<VisibleTable>, Arc<ImportanceTable>)>,
        sigma: f64,
    ) -> Self {
        assert_eq!(poses.len(), visible.len(), "pose/visible length mismatch");
        ClientFlight { var: 0, time: 0, poses, visible, tables, sigma, cursor: 0, generation: 0 }
    }

    /// Address a specific variable/timestep instead of the scalar default.
    pub fn for_variable(mut self, var: u16, time: u16) -> Self {
        self.var = var;
        self.time = time;
        self
    }

    /// Rotate the step order left by `offset` (modulo length): clients
    /// sharing one path but phase-shifted along it, so their demand sets
    /// overlap without being identical per frame.
    pub fn rotated(mut self, offset: usize) -> Self {
        if !self.poses.is_empty() {
            let k = offset % self.poses.len();
            self.poses.rotate_left(k);
            self.visible.rotate_left(k);
        }
        self
    }

    /// Steps in the flight.
    pub fn len(&self) -> usize {
        self.poses.len()
    }

    /// `true` for a zero-step flight.
    pub fn is_empty(&self) -> bool {
        self.poses.is_empty()
    }

    /// Next step [`next_frame`](Self::next_frame) will produce.
    pub fn position(&self) -> usize {
        self.cursor
    }

    /// Frames produced so far across all replays (never resets).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Restart the flight from step 0 (the generation keeps counting).
    pub fn rewind(&mut self) {
        self.cursor = 0;
    }

    /// The entropy gate currently applied to predicted blocks.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Retune the entropy gate mid-flight — the σ controller's actuator:
    /// subsequent frames admit prefetch only for blocks with entropy
    /// ≥ the new threshold.
    pub fn set_sigma(&mut self, sigma: f64) {
        self.sigma = sigma;
    }

    /// Produce the next frame's request, or `None` once the flight ends
    /// (call [`rewind`](Self::rewind) to replay).
    pub fn next_frame(&mut self) -> Option<FrameRequest> {
        let step = self.cursor;
        if step >= self.poses.len() {
            return None;
        }
        self.cursor += 1;
        self.generation += 1;
        let key_of = |id: BlockId| BlockKey::new(self.var, self.time, id);
        let demand: Vec<BlockKey> = self.visible[step].iter().copied().map(key_of).collect();
        let prefetch = match (&self.tables, self.poses.get(self.cursor)) {
            (Some((tv, ti)), Some(next_pose)) => tv
                .predict(next_pose)
                .iter()
                .filter_map(|&id| {
                    let h = ti.entropy(id);
                    (h >= self.sigma).then(|| (key_of(id), h))
                })
                .collect(),
            (None, Some(_)) => {
                self.visible[self.cursor].iter().map(|&id| (key_of(id), 1.0)).collect()
            }
            (_, None) => Vec::new(),
        };
        Some(FrameRequest { step, generation: self.generation, demand, prefetch })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::{RadiusRule, SamplingConfig};
    use viz_geom::angle::deg_to_rad;
    use viz_geom::{CameraPath, ExplorationDomain, SphericalPath, Vec3};
    use viz_volume::{DatasetKind, DatasetSpec, Dims3};

    fn fixture() -> (BrickLayout, Vec<CameraPose>, Arc<VisibleTable>, Arc<ImportanceTable>) {
        let spec = DatasetSpec::new(DatasetKind::Ball3d, 16, 5);
        let field = spec.materialize(0, 0.0);
        let layout = BrickLayout::new(field.dims, Dims3::cube(8));
        let importance = Arc::new(ImportanceTable::from_field(&layout, &field, 32));
        let angle = deg_to_rad(20.0);
        let sampling = SamplingConfig::paper_default(2.0, 3.0, angle).with_target_samples(64);
        let tv = Arc::new(VisibleTable::build(sampling, &layout, RadiusRule::Fixed(0.6), None));
        let domain = ExplorationDomain::new(Vec3::ZERO, 2.0, 3.0);
        let poses = SphericalPath::new(domain, 2.5, 10.0, angle).generate(12);
        (layout, poses, tv, importance)
    }

    #[test]
    fn flight_walks_every_step_then_ends() {
        let (layout, poses, _, _) = fixture();
        let n = poses.len();
        let mut f = ClientFlight::new(&layout, poses, None, 0.0);
        assert_eq!(f.len(), n);
        let mut steps = 0;
        while let Some(req) = f.next_frame() {
            assert_eq!(req.step, steps);
            assert_eq!(req.generation, steps as u64 + 1);
            assert!(!req.demand.is_empty(), "an orbit pose should see blocks");
            steps += 1;
        }
        assert_eq!(steps, n);
        assert!(f.next_frame().is_none());
        f.rewind();
        assert_eq!(f.next_frame().unwrap().step, 0);
        assert_eq!(f.generation(), n as u64 + 1, "generation keeps counting across replays");
    }

    #[test]
    fn tables_gate_prefetch_by_entropy() {
        let (layout, poses, tv, ti) = fixture();
        let lax = ClientFlight::new(&layout, poses.clone(), Some((tv.clone(), ti.clone())), -1.0)
            .next_frame()
            .unwrap();
        let strict = ClientFlight::new(&layout, poses, Some((tv, ti.clone())), f64::INFINITY)
            .next_frame()
            .unwrap();
        assert!(!lax.prefetch.is_empty(), "sigma below every entropy admits the prediction");
        assert!(strict.prefetch.is_empty(), "infinite sigma filters everything");
        for (key, pri) in &lax.prefetch {
            assert_eq!(*pri, ti.entropy(key.block), "priority is the block's entropy");
        }
    }

    #[test]
    fn untabled_flight_prefetches_next_visible_set() {
        let (layout, poses, _, _) = fixture();
        let mut f = ClientFlight::new(&layout, poses, None, 0.0);
        let first = f.next_frame().unwrap();
        let second = f.next_frame().unwrap();
        let predicted: Vec<BlockKey> = first.prefetch.iter().map(|(k, _)| *k).collect();
        assert_eq!(predicted, second.demand, "lookahead is the next step's demand");
        assert!(first.prefetch.iter().all(|(_, p)| *p == 1.0));
    }

    #[test]
    fn rotation_and_variable_addressing() {
        let (layout, poses, _, _) = fixture();
        let base = ClientFlight::new(&layout, poses, None, 0.0);
        let n = base.len();
        let mut plain = base.clone();
        let mut shifted = base.clone().rotated(3).for_variable(2, 9);
        let p0 = plain.next_frame().unwrap();
        let s0 = shifted.next_frame().unwrap();
        assert!(s0.demand.iter().all(|k| k.var == 2 && k.time == 9));
        let s0_ids: Vec<BlockId> = s0.demand.iter().map(|k| k.block).collect();
        let mut expected = base.clone();
        for _ in 0..3 {
            expected.next_frame();
        }
        let e = expected.next_frame().unwrap();
        let e_ids: Vec<BlockId> = e.demand.iter().map(|k| k.block).collect();
        assert_eq!(s0_ids, e_ids, "offset 3 starts at step 3's visible set");
        assert_eq!(p0.step, 0);
        assert_eq!(n % n, 0);
    }
}
