//! Experiment report helpers: CSV-style tables the bench binaries print,
//! mirroring the rows/series of the paper's figures.

use crate::session::SessionReport;
use serde::{Deserialize, Serialize};

/// One row of a figure/table: an x-coordinate (sweep parameter) plus one
/// value per strategy series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Sweep coordinate label (e.g. "5deg", "1024 blocks").
    pub x: String,
    /// `(series name, value)` pairs.
    pub values: Vec<(String, f64)>,
}

/// A printable experiment table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Table {
    /// Experiment identifier ("fig12a", "table1", ...).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Name of the x column.
    pub x_label: String,
    /// Unit of the values ("miss rate", "seconds", ...).
    pub y_label: String,
    /// Data rows.
    pub rows: Vec<Row>,
}

impl Table {
    /// Create an empty table.
    pub fn new(id: &str, title: &str, x_label: &str, y_label: &str) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push(&mut self, x: impl Into<String>, values: Vec<(String, f64)>) {
        self.rows.push(Row { x: x.into(), values });
    }

    /// Series names in first-appearance order.
    pub fn series(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for row in &self.rows {
            for (name, _) in &row.values {
                if !out.iter().any(|n| n == name) {
                    out.push(name.clone());
                }
            }
        }
        out
    }

    /// Value at `(x, series)` if present.
    pub fn get(&self, x: &str, series: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.x == x)?
            .values
            .iter()
            .find(|(n, _)| n == series)
            .map(|(_, v)| *v)
    }

    /// Render as CSV (header + rows). Missing cells are empty.
    pub fn to_csv(&self) -> String {
        let series = self.series();
        let mut out = String::new();
        out.push_str(&self.x_label);
        for s in &series {
            out.push(',');
            out.push_str(s);
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.x);
            for s in &series {
                out.push(',');
                if let Some((_, v)) = row.values.iter().find(|(n, _)| n == s) {
                    out.push_str(&format!("{v:.6}"));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Render as an aligned text table with a title banner, the format the
    /// bench binaries print to stdout.
    pub fn to_text(&self) -> String {
        let series = self.series();
        let mut widths: Vec<usize> = Vec::with_capacity(series.len() + 1);
        widths.push(
            self.rows.iter().map(|r| r.x.len()).chain([self.x_label.len()]).max().unwrap_or(4),
        );
        for s in &series {
            widths.push(s.len().max(10));
        }
        let mut out = format!("== {} [{}] ({}) ==\n", self.title, self.id, self.y_label);
        out.push_str(&format!("{:<w$}", self.x_label, w = widths[0]));
        for (i, s) in series.iter().enumerate() {
            out.push_str(&format!("  {:>w$}", s, w = widths[i + 1]));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!("{:<w$}", row.x, w = widths[0]));
            for (i, s) in series.iter().enumerate() {
                let cell = row
                    .values
                    .iter()
                    .find(|(n, _)| n == s)
                    .map(|(_, v)| format!("{v:.4}"))
                    .unwrap_or_default();
                out.push_str(&format!("  {:>w$}", cell, w = widths[i + 1]));
            }
            out.push('\n');
        }
        out
    }
}

/// Pull the metric a figure plots out of a session report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Fast-memory miss rate (Figs. 9, 12, 7a).
    MissRate,
    /// Demand I/O seconds (Fig. 7b).
    IoSeconds,
    /// I/O + prefetch seconds (Fig. 11).
    IoPlusPrefetchSeconds,
    /// Total wall seconds under the overlap rule (Fig. 13).
    TotalSeconds,
}

impl Metric {
    /// Extract the metric value from a report.
    pub fn of(&self, r: &SessionReport) -> f64 {
        match self {
            Metric::MissRate => r.miss_rate,
            Metric::IoSeconds => r.io_s,
            Metric::IoPlusPrefetchSeconds => r.io_s + r.prefetch_s + r.lookup_s,
            Metric::TotalSeconds => r.total_s,
        }
    }

    /// Axis label.
    pub fn label(&self) -> &'static str {
        match self {
            Metric::MissRate => "miss rate",
            Metric::IoSeconds => "I/O time (s)",
            Metric::IoPlusPrefetchSeconds => "I/O + prefetch time (s)",
            Metric::TotalSeconds => "total time (s)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("fig_x", "Sample", "deg", "miss rate");
        t.push("1", vec![("FIFO".into(), 0.5), ("OPT".into(), 0.1)]);
        t.push("5", vec![("FIFO".into(), 0.6), ("OPT".into(), 0.2)]);
        t
    }

    #[test]
    fn series_discovery_and_get() {
        let t = sample();
        assert_eq!(t.series(), vec!["FIFO".to_string(), "OPT".to_string()]);
        assert_eq!(t.get("5", "OPT"), Some(0.2));
        assert_eq!(t.get("5", "LRU"), None);
        assert_eq!(t.get("9", "OPT"), None);
    }

    #[test]
    fn csv_shape() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.trim_end().split('\n').collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "deg,FIFO,OPT");
        assert!(lines[1].starts_with("1,0.5"));
    }

    #[test]
    fn csv_handles_missing_cells() {
        let mut t = sample();
        t.push("9", vec![("OPT".into(), 0.3)]);
        let csv = t.to_csv();
        let last = csv.trim_end().split('\n').next_back().unwrap();
        assert_eq!(last, "9,,0.300000");
    }

    #[test]
    fn text_render_contains_all_values() {
        let txt = sample().to_text();
        assert!(txt.contains("Sample"));
        assert!(txt.contains("FIFO"));
        assert!(txt.contains("0.6000"));
    }

    #[test]
    fn metric_extraction() {
        let r = SessionReport {
            strategy: "OPT".into(),
            steps: 1,
            accesses: 10,
            misses: 2,
            miss_rate: 0.2,
            io_s: 1.0,
            render_s: 4.0,
            prefetch_s: 0.5,
            lookup_s: 0.25,
            total_s: 5.0,
            degraded_steps: 0,
            per_step: vec![],
        };
        assert_eq!(Metric::MissRate.of(&r), 0.2);
        assert_eq!(Metric::IoSeconds.of(&r), 1.0);
        assert_eq!(Metric::IoPlusPrefetchSeconds.of(&r), 1.75);
        assert_eq!(Metric::TotalSeconds.of(&r), 5.0);
    }
}
