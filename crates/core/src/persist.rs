//! Persistence for the pre-processing artifacts.
//!
//! Building `T_visible` over 10⁵ sampling positions is the paper's one-time
//! pre-processing step (§IV-B); a production deployment computes it once
//! per (layout, sampling config) and memoizes it on disk. Two formats are
//! provided: a compact framed binary (fast, for the tables themselves) and
//! JSON (for configs and reports, human-inspectable).

use crate::histable::BlockHistogramTable;
use crate::importance::ImportanceTable;
use crate::radius::RadiusModel;
use crate::sampling::{RadiusRule, SamplingConfig, VisibleTable};
use bytes::{Buf, BufMut};
use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;
use viz_volume::Histogram;

const VIS_MAGIC: &[u8; 4] = b"TVIS";
const IMP_MAGIC: &[u8; 4] = b"TIMP";
const THB_MAGIC: &[u8; 4] = b"THBT";
/// Current `T_visible` frame version: CSR payload, LEB128 varint
/// delta-encoded per entry, with a CRC-32 of the body right after the
/// version field so bit-rot on disk is rejected at load instead of
/// skewing predictions, and a self-describing *binary* header (version 4)
/// so encode/decode has no JSON dependency. Versions 1 (fixed u32 runs,
/// JSON header), 2 (varint, JSON header, no checksum) and 3 (varint, JSON
/// header, checksum) are still decoded.
const VIS_VERSION: u16 = 4;
/// Current per-block histogram-table frame version.
const THB_VERSION: u16 = 1;
/// Current `T_important` frame version: entropies + CRC-32 of the body.
/// The seed's unchecksummed version 1 is still decoded.
const IMP_VERSION: u16 = 2;

fn err(m: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, m.into())
}

/// Append `v` as an LEB128 varint (1–5 bytes).
pub(crate) fn put_varint_u32(buf: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Read one LEB128 varint from the front of `buf`.
pub(crate) fn get_varint_u32(buf: &mut &[u8]) -> io::Result<u32> {
    let mut v: u32 = 0;
    for shift in [0u32, 7, 14, 21, 28] {
        if !buf.has_remaining() {
            return Err(err("truncated varint"));
        }
        let byte = buf.get_u8();
        let bits = (byte & 0x7F) as u32;
        if shift == 28 && bits > 0x0F {
            return Err(err("varint overflows u32"));
        }
        v |= bits << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(err("varint longer than 5 bytes"))
}

/// Serialize the `T_visible` header (sampling config + radius rule) in
/// the self-describing binary layout of frame version 4: fixed-width
/// little-endian fields plus a one-byte radius-rule tag. No JSON involved,
/// so tables encode/decode in environments without `serde_json`.
fn encode_sampling_header(config: &SamplingConfig, rule: &RadiusRule) -> Vec<u8> {
    let mut h = Vec::with_capacity(64);
    h.put_u32_le(config.n_theta as u32);
    h.put_u32_le(config.n_phi as u32);
    h.put_u32_le(config.n_dist as u32);
    h.put_u32_le(config.vicinal_points as u32);
    h.put_f64_le(config.d_min);
    h.put_f64_le(config.d_max);
    h.put_f64_le(config.view_angle);
    h.put_u64_le(config.seed);
    match rule {
        RadiusRule::Fixed(r) => {
            h.put_u8(0);
            h.put_f64_le(*r);
        }
        RadiusRule::Optimal(m) => {
            h.put_u8(1);
            h.put_f64_le(m.cache_ratio);
            h.put_f64_le(m.view_angle);
            h.put_f64_le(m.min_radius);
        }
    }
    h
}

/// Parse a header produced by [`encode_sampling_header`].
fn decode_sampling_header(mut buf: &[u8]) -> io::Result<(SamplingConfig, RadiusRule)> {
    if buf.remaining() < 4 * 4 + 8 * 4 + 1 {
        return Err(err("truncated T_visible binary header"));
    }
    let config = SamplingConfig {
        n_theta: buf.get_u32_le() as usize,
        n_phi: buf.get_u32_le() as usize,
        n_dist: buf.get_u32_le() as usize,
        vicinal_points: buf.get_u32_le() as usize,
        d_min: buf.get_f64_le(),
        d_max: buf.get_f64_le(),
        view_angle: buf.get_f64_le(),
        seed: buf.get_u64_le(),
    };
    let rule = match buf.get_u8() {
        0 => {
            if buf.remaining() < 8 {
                return Err(err("truncated fixed-radius rule"));
            }
            RadiusRule::Fixed(buf.get_f64_le())
        }
        1 => {
            if buf.remaining() < 24 {
                return Err(err("truncated radius model"));
            }
            RadiusRule::Optimal(RadiusModel {
                cache_ratio: buf.get_f64_le(),
                view_angle: buf.get_f64_le(),
                min_radius: buf.get_f64_le(),
            })
        }
        t => return Err(err(format!("unknown radius-rule tag {t}"))),
    };
    if buf.has_remaining() {
        return Err(err("trailing bytes after T_visible binary header"));
    }
    Ok((config, rule))
}

/// Serialize a `T_visible` table: a small binary header (config + radius
/// rule) followed by the CSR payload — per entry a varint length, then the
/// first block id and successive (wrapping) deltas as varints. Entries are
/// sorted ascending, so deltas are small and most ids persist in 1–2 bytes
/// instead of the 4 of the version-1 format.
pub fn encode_visible_table(t: &VisibleTable) -> io::Result<Vec<u8>> {
    let header = encode_sampling_header(&t.config, &t.radius_rule);
    let mut buf = Vec::with_capacity(header.len() + t.approx_bytes() / 2 + 64);
    buf.put_slice(VIS_MAGIC);
    buf.put_u16_le(VIS_VERSION);
    let crc_at = buf.len();
    buf.put_u32_le(0); // crc placeholder, patched below
    buf.put_u32_le(header.len() as u32);
    buf.put_slice(&header);
    buf.put_u32_le(t.len() as u32);
    for i in 0..t.len() {
        let entry = t.entry(i);
        put_varint_u32(&mut buf, entry.len() as u32);
        let mut prev = 0u32;
        for (j, b) in entry.iter().enumerate() {
            // Wrapping deltas round-trip even if an entry is unsorted.
            put_varint_u32(&mut buf, if j == 0 { b.0 } else { b.0.wrapping_sub(prev) });
            prev = b.0;
        }
    }
    let crc = viz_volume::crc32(&buf[crc_at + 4..]);
    buf[crc_at..crc_at + 4].copy_from_slice(&crc.to_le_bytes());
    Ok(buf)
}

/// Parse a buffer produced by [`encode_visible_table`] — the current
/// binary-header version 4 or any of the earlier JSON-header layouts
/// (versions 1–3).
pub fn decode_visible_table(mut buf: &[u8]) -> io::Result<VisibleTable> {
    if buf.remaining() < 10 {
        return Err(err("T_visible frame too short"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != VIS_MAGIC {
        return Err(err("bad T_visible magic"));
    }
    let version = buf.get_u16_le();
    if !(1..=VIS_VERSION).contains(&version) {
        return Err(err("unsupported T_visible version"));
    }
    if version >= 3 {
        if buf.remaining() < 4 {
            return Err(err("T_visible crc frame too short"));
        }
        let want = buf.get_u32_le();
        let got = viz_volume::crc32(buf);
        if got != want {
            return Err(err(format!(
                "T_visible checksum mismatch (stored {want:#010x}, computed {got:#010x})"
            )));
        }
    }
    if buf.remaining() < 4 {
        return Err(err("T_visible frame too short"));
    }
    let hlen = buf.get_u32_le() as usize;
    if buf.remaining() < hlen {
        return Err(err("truncated T_visible header"));
    }
    let (config, radius_rule) = if version >= 4 {
        decode_sampling_header(&buf[..hlen])?
    } else {
        // Versions 1–3 carried the header as JSON.
        serde_json::from_slice(&buf[..hlen]).map_err(|e| err(format!("bad header: {e}")))?
    };
    buf.advance(hlen);
    if buf.remaining() < 4 {
        return Err(err("missing entry count"));
    }
    let n = buf.get_u32_le() as usize;
    let mut offsets = Vec::with_capacity(n + 1);
    let mut ids: Vec<viz_volume::BlockId> = Vec::new();
    offsets.push(0u32);
    for _ in 0..n {
        let k = if version == 1 {
            if buf.remaining() < 4 {
                return Err(err("truncated entry length"));
            }
            buf.get_u32_le() as usize
        } else {
            get_varint_u32(&mut buf)? as usize
        };
        if version == 1 {
            if buf.remaining() < k * 4 {
                return Err(err("truncated entry payload"));
            }
            for _ in 0..k {
                ids.push(viz_volume::BlockId(buf.get_u32_le()));
            }
        } else {
            let mut prev = 0u32;
            for j in 0..k {
                let raw = get_varint_u32(&mut buf)?;
                prev = if j == 0 { raw } else { prev.wrapping_add(raw) };
                ids.push(viz_volume::BlockId(prev));
            }
        }
        if ids.len() > u32::MAX as usize {
            return Err(err("T_visible id count overflows u32 offsets"));
        }
        offsets.push(ids.len() as u32);
    }
    if buf.has_remaining() {
        return Err(err("trailing bytes after T_visible payload"));
    }
    VisibleTable::from_csr(config, radius_rule, offsets, ids).map_err(err)
}

/// Serialize a `T_important` table (bin count + per-block entropies).
pub fn encode_importance_table(t: &ImportanceTable) -> Vec<u8> {
    let mut buf = Vec::with_capacity(18 + t.len() * 8);
    buf.put_slice(IMP_MAGIC);
    buf.put_u16_le(IMP_VERSION);
    let crc_at = buf.len();
    buf.put_u32_le(0); // crc placeholder, patched below
    buf.put_u32_le(t.bins as u32);
    buf.put_u32_le(t.len() as u32);
    for i in 0..t.len() {
        buf.put_f64_le(t.entropy(viz_volume::BlockId(i as u32)));
    }
    let crc = viz_volume::crc32(&buf[crc_at + 4..]);
    buf[crc_at..crc_at + 4].copy_from_slice(&crc.to_le_bytes());
    buf
}

/// Parse a buffer produced by [`encode_importance_table`].
pub fn decode_importance_table(mut buf: &[u8]) -> io::Result<ImportanceTable> {
    if buf.remaining() < 14 {
        return Err(err("T_important frame too short"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != IMP_MAGIC {
        return Err(err("bad T_important magic"));
    }
    let version = buf.get_u16_le();
    if !(1..=IMP_VERSION).contains(&version) {
        return Err(err("unsupported T_important version"));
    }
    if version >= 2 {
        if buf.remaining() < 4 {
            return Err(err("T_important crc frame too short"));
        }
        let want = buf.get_u32_le();
        let got = viz_volume::crc32(buf);
        if got != want {
            return Err(err(format!(
                "T_important checksum mismatch (stored {want:#010x}, computed {got:#010x})"
            )));
        }
    }
    if buf.remaining() < 8 {
        return Err(err("T_important frame too short"));
    }
    let bins = buf.get_u32_le() as usize;
    let n = buf.get_u32_le() as usize;
    if buf.remaining() != n * 8 {
        return Err(err("T_important payload length mismatch"));
    }
    let mut by_block = Vec::with_capacity(n);
    for _ in 0..n {
        by_block.push(buf.get_f64_le());
    }
    Ok(ImportanceTable::from_entropies(by_block, bins))
}

/// Serialize a per-block histogram table: shared range + bin count, then
/// per block the varint bin counts (most bins are empty or small, so
/// varints beat fixed u64s by a wide margin). Checksummed like the other
/// table frames.
pub fn encode_histogram_table(t: &BlockHistogramTable) -> Vec<u8> {
    let mut buf = Vec::with_capacity(22 + t.len() * t.bins);
    buf.put_slice(THB_MAGIC);
    buf.put_u16_le(THB_VERSION);
    let crc_at = buf.len();
    buf.put_u32_le(0); // crc placeholder, patched below
    buf.put_f32_le(t.range.0);
    buf.put_f32_le(t.range.1);
    buf.put_u32_le(t.bins as u32);
    buf.put_u32_le(t.len() as u32);
    for i in 0..t.len() {
        let h = t.histogram(viz_volume::BlockId(i as u32));
        for &c in &h.counts {
            // A bin count is bounded by one block's voxel count, far below
            // 2^32; assert rather than silently truncate if that changes.
            assert!(c <= u64::from(u32::MAX), "bin count {c} overflows u32 varint");
            put_varint_u32(&mut buf, c as u32);
        }
    }
    let crc = viz_volume::crc32(&buf[crc_at + 4..]);
    buf[crc_at..crc_at + 4].copy_from_slice(&crc.to_le_bytes());
    buf
}

/// Parse a buffer produced by [`encode_histogram_table`].
pub fn decode_histogram_table(mut buf: &[u8]) -> io::Result<BlockHistogramTable> {
    if buf.remaining() < 26 {
        return Err(err("histogram-table frame too short"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != THB_MAGIC {
        return Err(err("bad histogram-table magic"));
    }
    let version = buf.get_u16_le();
    if version != THB_VERSION {
        return Err(err("unsupported histogram-table version"));
    }
    let want = buf.get_u32_le();
    let got = viz_volume::crc32(buf);
    if got != want {
        return Err(err(format!(
            "histogram-table checksum mismatch (stored {want:#010x}, computed {got:#010x})"
        )));
    }
    let lo = buf.get_f32_le();
    let hi = buf.get_f32_le();
    let bins = buf.get_u32_le() as usize;
    let n = buf.get_u32_le() as usize;
    if bins == 0 {
        return Err(err("histogram-table with zero bins"));
    }
    let mut histograms = Vec::with_capacity(n);
    for _ in 0..n {
        let mut h = Histogram::new(lo, hi, bins);
        let mut total = 0u64;
        for c in h.counts.iter_mut() {
            *c = u64::from(get_varint_u32(&mut buf)?);
            total += *c;
        }
        h.total = total;
        histograms.push(h);
    }
    if buf.has_remaining() {
        return Err(err("trailing bytes after histogram payload"));
    }
    BlockHistogramTable::from_parts(histograms, (lo, hi), bins).map_err(err)
}

/// Write both tables next to each other under `dir`
/// (`t_visible.bin`, `t_important.bin`).
pub fn save_tables(
    dir: &Path,
    visible: &VisibleTable,
    importance: &ImportanceTable,
) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let atomically = |name: &str, bytes: &[u8]| -> io::Result<()> {
        let tmp = dir.join(format!("{name}.tmp"));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
        }
        fs::rename(tmp, dir.join(name))
    };
    atomically("t_visible.bin", &encode_visible_table(visible)?)?;
    atomically("t_important.bin", &encode_importance_table(importance))
}

/// Load tables previously written by [`save_tables`].
pub fn load_tables(dir: &Path) -> io::Result<(VisibleTable, ImportanceTable)> {
    let read = |name: &str| -> io::Result<Vec<u8>> {
        let mut buf = Vec::new();
        fs::File::open(dir.join(name))?.read_to_end(&mut buf)?;
        Ok(buf)
    };
    Ok((
        decode_visible_table(&read("t_visible.bin")?)?,
        decode_importance_table(&read("t_important.bin")?)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radius::RadiusModel;
    use crate::sampling::{RadiusRule, SamplingConfig};
    use viz_geom::angle::deg_to_rad;
    use viz_volume::{BrickLayout, Dims3};

    fn sample_tables() -> (VisibleTable, ImportanceTable) {
        let layout = BrickLayout::new(Dims3::cube(32), Dims3::cube(8));
        let cfg = SamplingConfig {
            n_theta: 4,
            n_phi: 8,
            n_dist: 2,
            d_min: 2.0,
            d_max: 3.0,
            vicinal_points: 3,
            view_angle: deg_to_rad(20.0),
            seed: 77,
        };
        let imp = ImportanceTable::from_entropies(
            (0..layout.num_blocks()).map(|i| (i % 7) as f64).collect(),
            32,
        );
        let tv = VisibleTable::build(
            cfg,
            &layout,
            RadiusRule::Optimal(RadiusModel::new(0.3, deg_to_rad(20.0))),
            Some((&imp, 10)),
        );
        (tv, imp)
    }

    #[test]
    fn visible_table_binary_roundtrip() {
        let (tv, _) = sample_tables();
        let buf = encode_visible_table(&tv).unwrap();
        let back = decode_visible_table(&buf).unwrap();
        assert_eq!(back.len(), tv.len());
        assert_eq!(back.config, tv.config);
        assert_eq!(back.radius_rule, tv.radius_rule);
        for i in 0..tv.len() {
            assert_eq!(back.entry(i), tv.entry(i), "entry {i}");
        }
    }

    #[test]
    fn importance_table_binary_roundtrip() {
        let (_, imp) = sample_tables();
        let buf = encode_importance_table(&imp);
        let back = decode_importance_table(&buf).unwrap();
        assert_eq!(back, imp);
    }

    #[test]
    fn corrupted_magic_rejected() {
        let (tv, imp) = sample_tables();
        let mut a = encode_visible_table(&tv).unwrap();
        a[0] = b'X';
        assert!(decode_visible_table(&a).is_err());
        let mut b = encode_importance_table(&imp);
        b[1] = b'?';
        assert!(decode_importance_table(&b).is_err());
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let (tv, _) = sample_tables();
        let buf = encode_visible_table(&tv).unwrap();
        // Cut at several depths: header, count, entry bodies.
        for cut in [2usize, 8, 12, buf.len() / 2, buf.len() - 1] {
            assert!(decode_visible_table(&buf[..cut]).is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let (tv, _) = sample_tables();
        let mut buf = encode_visible_table(&tv).unwrap();
        buf.extend_from_slice(&[0, 1, 2, 3]);
        assert!(decode_visible_table(&buf).is_err());
    }

    #[test]
    fn save_load_files_roundtrip() {
        let dir = std::env::temp_dir().join(format!("viz_persist_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let (tv, imp) = sample_tables();
        save_tables(&dir, &tv, &imp).unwrap();
        let (tv2, imp2) = load_tables(&dir).unwrap();
        assert_eq!(tv2.len(), tv.len());
        assert_eq!(imp2, imp);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn loading_missing_dir_errors() {
        let dir = std::env::temp_dir().join("viz_persist_definitely_missing");
        assert!(load_tables(&dir).is_err());
    }

    #[test]
    fn varint_roundtrips_edge_values() {
        for v in [0u32, 1, 127, 128, 300, 16_383, 16_384, 1 << 21, u32::MAX - 1, u32::MAX] {
            let mut buf = Vec::new();
            put_varint_u32(&mut buf, v);
            assert!(buf.len() <= 5);
            let mut s = buf.as_slice();
            assert_eq!(get_varint_u32(&mut s).unwrap(), v);
            assert!(s.is_empty());
        }
        // Overlong / overflowing encodings are rejected.
        let mut s: &[u8] = &[0x80, 0x80, 0x80, 0x80, 0x80, 0x01];
        assert!(get_varint_u32(&mut s).is_err());
        let mut s: &[u8] = &[0xFF, 0xFF, 0xFF, 0xFF, 0x7F];
        assert!(get_varint_u32(&mut s).is_err());
        let mut s: &[u8] = &[0x80];
        assert!(get_varint_u32(&mut s).is_err());
    }

    /// A frame in the seed's version-1 layout (fixed u32 lengths and ids,
    /// JSON header) must still decode to the same table. Named `json`: the
    /// offline harness skips it (no real serde_json there).
    #[test]
    fn decodes_version_1_json_header_frames() {
        let (tv, _) = sample_tables();
        let header = serde_json::to_vec(&(&tv.config, &tv.radius_rule)).unwrap();
        let mut buf = Vec::new();
        buf.put_slice(VIS_MAGIC);
        buf.put_u16_le(1);
        buf.put_u32_le(header.len() as u32);
        buf.put_slice(&header);
        buf.put_u32_le(tv.len() as u32);
        for i in 0..tv.len() {
            let entry = tv.entry(i);
            buf.put_u32_le(entry.len() as u32);
            for b in entry {
                buf.put_u32_le(b.0);
            }
        }
        let back = decode_visible_table(&buf).unwrap();
        assert_eq!(back.csr_offsets(), tv.csr_offsets());
        assert_eq!(back.csr_ids(), tv.csr_ids());
    }

    #[test]
    fn varint_payload_is_smaller_than_fixed_width() {
        let (tv, _) = sample_tables();
        let v4 = encode_visible_table(&tv).unwrap();
        // Strip the fixed prefix (magic + version + crc + hlen + header +
        // count) to isolate the varint-delta payload, then compare with
        // the version-1 fixed-width cost of the same CSR data.
        let hlen = u32::from_le_bytes(v4[10..14].try_into().unwrap()) as usize;
        let varint_payload = v4.len() - (14 + hlen + 4);
        let fixed_payload = tv.len() * 4 + tv.csr_ids().len() * 4;
        assert!(
            varint_payload < fixed_payload,
            "varint {varint_payload} bytes >= fixed {fixed_payload} bytes"
        );
    }

    /// A frame in the version-2 layout (varints, JSON header, no checksum)
    /// must still decode — pre-checksum tables on disk stay loadable.
    /// Named `json`: the offline harness skips it.
    #[test]
    fn decodes_version_2_json_header_frames() {
        let (tv, _) = sample_tables();
        let header = serde_json::to_vec(&(&tv.config, &tv.radius_rule)).unwrap();
        let mut buf = Vec::new();
        buf.put_slice(VIS_MAGIC);
        buf.put_u16_le(2);
        buf.put_u32_le(header.len() as u32);
        buf.put_slice(&header);
        buf.put_u32_le(tv.len() as u32);
        for i in 0..tv.len() {
            let entry = tv.entry(i);
            put_varint_u32(&mut buf, entry.len() as u32);
            let mut prev = 0u32;
            for (j, b) in entry.iter().enumerate() {
                put_varint_u32(&mut buf, if j == 0 { b.0 } else { b.0.wrapping_sub(prev) });
                prev = b.0;
            }
        }
        let back = decode_visible_table(&buf).unwrap();
        assert_eq!(back.csr_offsets(), tv.csr_offsets());
        assert_eq!(back.csr_ids(), tv.csr_ids());
    }

    /// A frame in the version-3 layout (varints + checksum, JSON header)
    /// must still decode. Named `json`: the offline harness skips it.
    #[test]
    fn decodes_version_3_json_header_frames() {
        let (tv, _) = sample_tables();
        let header = serde_json::to_vec(&(&tv.config, &tv.radius_rule)).unwrap();
        let mut buf = Vec::new();
        buf.put_slice(VIS_MAGIC);
        buf.put_u16_le(3);
        let crc_at = buf.len();
        buf.put_u32_le(0);
        buf.put_u32_le(header.len() as u32);
        buf.put_slice(&header);
        buf.put_u32_le(tv.len() as u32);
        for i in 0..tv.len() {
            let entry = tv.entry(i);
            put_varint_u32(&mut buf, entry.len() as u32);
            let mut prev = 0u32;
            for (j, b) in entry.iter().enumerate() {
                put_varint_u32(&mut buf, if j == 0 { b.0 } else { b.0.wrapping_sub(prev) });
                prev = b.0;
            }
        }
        let crc = viz_volume::crc32(&buf[crc_at + 4..]);
        buf[crc_at..crc_at + 4].copy_from_slice(&crc.to_le_bytes());
        let back = decode_visible_table(&buf).unwrap();
        assert_eq!(back.csr_offsets(), tv.csr_offsets());
        assert_eq!(back.csr_ids(), tv.csr_ids());
    }

    #[test]
    fn fixed_radius_rule_survives_binary_header() {
        let layout = BrickLayout::new(Dims3::cube(32), Dims3::cube(8));
        let cfg = SamplingConfig {
            n_theta: 3,
            n_phi: 6,
            n_dist: 2,
            d_min: 2.0,
            d_max: 3.0,
            vicinal_points: 2,
            view_angle: deg_to_rad(25.0),
            seed: 9,
        };
        let tv = VisibleTable::build(cfg, &layout, RadiusRule::Fixed(0.075), None);
        let back = decode_visible_table(&encode_visible_table(&tv).unwrap()).unwrap();
        assert_eq!(back.config, tv.config);
        assert_eq!(back.radius_rule, tv.radius_rule);
    }

    #[test]
    fn histogram_table_binary_roundtrip() {
        use viz_volume::{DatasetKind, DatasetSpec};
        let spec = DatasetSpec::new(DatasetKind::Ball3d, 8, 5); // 32³
        let field = spec.materialize(0, 0.0);
        let layout = BrickLayout::new(field.dims, Dims3::cube(8));
        let table = BlockHistogramTable::from_field(&layout, &field, 32);
        let buf = encode_histogram_table(&table);
        let back = decode_histogram_table(&buf).unwrap();
        assert_eq!(back, table);
        // Varints keep the frame well under the fixed-u64 cost.
        assert!(buf.len() < 22 + table.len() * table.bins * 8);
    }

    #[test]
    fn histogram_table_corruption_rejected() {
        use viz_volume::{DatasetKind, DatasetSpec};
        let spec = DatasetSpec::new(DatasetKind::Ball3d, 8, 5);
        let field = spec.materialize(0, 0.0);
        let layout = BrickLayout::new(field.dims, Dims3::cube(8));
        let table = BlockHistogramTable::from_field(&layout, &field, 16);
        let buf = encode_histogram_table(&table);
        // Magic.
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(decode_histogram_table(&bad).is_err());
        // Bit rot in the payload trips the checksum.
        let mut rotted = buf.clone();
        let at = buf.len() - 2;
        rotted[at] ^= 0x04;
        let e = decode_histogram_table(&rotted).unwrap_err();
        assert!(e.to_string().contains("checksum"), "got: {e}");
        // Truncation at every depth class.
        for cut in [3usize, 9, 20, buf.len() / 2, buf.len() - 1] {
            assert!(decode_histogram_table(&buf[..cut]).is_err(), "cut at {cut} decoded");
        }
        // Trailing garbage.
        let mut long = buf.clone();
        long.extend_from_slice(&[1, 2, 3]);
        assert!(decode_histogram_table(&long).is_err());
    }

    #[test]
    fn bit_rot_in_visible_table_rejected_by_checksum() {
        let (tv, _) = sample_tables();
        let buf = encode_visible_table(&tv).unwrap();
        // Flip a single payload bit past the header region: without the
        // checksum this would silently skew a prediction entry.
        let mut rotted = buf.clone();
        let at = buf.len() - 2;
        rotted[at] ^= 0x10;
        let err = decode_visible_table(&rotted).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "got: {err}");
    }

    #[test]
    fn bit_rot_in_importance_table_rejected_by_checksum() {
        let (_, imp) = sample_tables();
        let buf = encode_importance_table(&imp);
        let mut rotted = buf.clone();
        let at = buf.len() - 3; // middle of an f64 entropy
        rotted[at] ^= 0x01;
        let err = decode_importance_table(&rotted).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "got: {err}");
    }

    /// A version-1 importance frame (no checksum) must still decode.
    #[test]
    fn decodes_version_1_importance_frames() {
        let (_, imp) = sample_tables();
        let mut buf = Vec::new();
        buf.put_slice(IMP_MAGIC);
        buf.put_u16_le(1);
        buf.put_u32_le(imp.bins as u32);
        buf.put_u32_le(imp.len() as u32);
        for i in 0..imp.len() {
            buf.put_f64_le(imp.entropy(viz_volume::BlockId(i as u32)));
        }
        let back = decode_importance_table(&buf).unwrap();
        assert_eq!(back, imp);
    }

    #[test]
    fn unknown_version_rejected() {
        let (tv, _) = sample_tables();
        let mut buf = encode_visible_table(&tv).unwrap();
        buf[4] = 99; // version field low byte
        assert!(decode_visible_table(&buf).is_err());
    }

    #[test]
    fn predictions_survive_roundtrip() {
        let (tv, _) = sample_tables();
        let buf = encode_visible_table(&tv).unwrap();
        let back = decode_visible_table(&buf).unwrap();
        let pose = viz_geom::CameraPose::orbit(45.0, 90.0, 2.5, 20.0);
        assert_eq!(back.predict(&pose), tv.predict(&pose));
    }
}
