//! Persistence for the pre-processing artifacts.
//!
//! Building `T_visible` over 10⁵ sampling positions is the paper's one-time
//! pre-processing step (§IV-B); a production deployment computes it once
//! per (layout, sampling config) and memoizes it on disk. Two formats are
//! provided: a compact framed binary (fast, for the tables themselves) and
//! JSON (for configs and reports, human-inspectable).

use crate::importance::ImportanceTable;
use crate::sampling::VisibleTable;
use bytes::{Buf, BufMut};
use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

const VIS_MAGIC: &[u8; 4] = b"TVIS";
const IMP_MAGIC: &[u8; 4] = b"TIMP";
const VERSION: u16 = 1;

fn err(m: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, m.into())
}

/// Serialize a `T_visible` table: a small JSON header (config + radius
/// rule, via serde) followed by length-prefixed block-id runs per entry.
pub fn encode_visible_table(t: &VisibleTable) -> io::Result<Vec<u8>> {
    let header = serde_json::to_vec(&(&t.config, &t.radius_rule)).map_err(io::Error::other)?;
    let mut buf = Vec::with_capacity(header.len() + t.approx_bytes() + 64);
    buf.put_slice(VIS_MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(header.len() as u32);
    buf.put_slice(&header);
    buf.put_u32_le(t.len() as u32);
    for i in 0..t.len() {
        let entry = t.entry(i);
        buf.put_u32_le(entry.len() as u32);
        for b in entry {
            buf.put_u32_le(b.0);
        }
    }
    Ok(buf)
}

/// Parse a buffer produced by [`encode_visible_table`].
pub fn decode_visible_table(mut buf: &[u8]) -> io::Result<VisibleTable> {
    if buf.remaining() < 10 {
        return Err(err("T_visible frame too short"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != VIS_MAGIC {
        return Err(err("bad T_visible magic"));
    }
    if buf.get_u16_le() != VERSION {
        return Err(err("unsupported T_visible version"));
    }
    let hlen = buf.get_u32_le() as usize;
    if buf.remaining() < hlen {
        return Err(err("truncated T_visible header"));
    }
    let (config, radius_rule) =
        serde_json::from_slice(&buf[..hlen]).map_err(|e| err(format!("bad header: {e}")))?;
    buf.advance(hlen);
    if buf.remaining() < 4 {
        return Err(err("missing entry count"));
    }
    let n = buf.get_u32_le() as usize;
    let mut sets = Vec::with_capacity(n);
    for _ in 0..n {
        if buf.remaining() < 4 {
            return Err(err("truncated entry length"));
        }
        let k = buf.get_u32_le() as usize;
        if buf.remaining() < k * 4 {
            return Err(err("truncated entry payload"));
        }
        let mut set = Vec::with_capacity(k);
        for _ in 0..k {
            set.push(viz_volume::BlockId(buf.get_u32_le()));
        }
        sets.push(set);
    }
    if buf.has_remaining() {
        return Err(err("trailing bytes after T_visible payload"));
    }
    VisibleTable::from_parts(config, radius_rule, sets).map_err(err)
}

/// Serialize a `T_important` table (bin count + per-block entropies).
pub fn encode_importance_table(t: &ImportanceTable) -> Vec<u8> {
    let mut buf = Vec::with_capacity(14 + t.len() * 8);
    buf.put_slice(IMP_MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(t.bins as u32);
    buf.put_u32_le(t.len() as u32);
    for i in 0..t.len() {
        buf.put_f64_le(t.entropy(viz_volume::BlockId(i as u32)));
    }
    buf
}

/// Parse a buffer produced by [`encode_importance_table`].
pub fn decode_importance_table(mut buf: &[u8]) -> io::Result<ImportanceTable> {
    if buf.remaining() < 14 {
        return Err(err("T_important frame too short"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != IMP_MAGIC {
        return Err(err("bad T_important magic"));
    }
    if buf.get_u16_le() != VERSION {
        return Err(err("unsupported T_important version"));
    }
    let bins = buf.get_u32_le() as usize;
    let n = buf.get_u32_le() as usize;
    if buf.remaining() != n * 8 {
        return Err(err("T_important payload length mismatch"));
    }
    let mut by_block = Vec::with_capacity(n);
    for _ in 0..n {
        by_block.push(buf.get_f64_le());
    }
    Ok(ImportanceTable::from_entropies(by_block, bins))
}

/// Write both tables next to each other under `dir`
/// (`t_visible.bin`, `t_important.bin`).
pub fn save_tables(dir: &Path, visible: &VisibleTable, importance: &ImportanceTable) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let atomically = |name: &str, bytes: &[u8]| -> io::Result<()> {
        let tmp = dir.join(format!("{name}.tmp"));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
        }
        fs::rename(tmp, dir.join(name))
    };
    atomically("t_visible.bin", &encode_visible_table(visible)?)?;
    atomically("t_important.bin", &encode_importance_table(importance))
}

/// Load tables previously written by [`save_tables`].
pub fn load_tables(dir: &Path) -> io::Result<(VisibleTable, ImportanceTable)> {
    let read = |name: &str| -> io::Result<Vec<u8>> {
        let mut buf = Vec::new();
        fs::File::open(dir.join(name))?.read_to_end(&mut buf)?;
        Ok(buf)
    };
    Ok((
        decode_visible_table(&read("t_visible.bin")?)?,
        decode_importance_table(&read("t_important.bin")?)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radius::RadiusModel;
    use crate::sampling::{RadiusRule, SamplingConfig};
    use viz_geom::angle::deg_to_rad;
    use viz_volume::{BrickLayout, Dims3};

    fn sample_tables() -> (VisibleTable, ImportanceTable) {
        let layout = BrickLayout::new(Dims3::cube(32), Dims3::cube(8));
        let cfg = SamplingConfig {
            n_theta: 4,
            n_phi: 8,
            n_dist: 2,
            d_min: 2.0,
            d_max: 3.0,
            vicinal_points: 3,
            view_angle: deg_to_rad(20.0),
            seed: 77,
        };
        let imp = ImportanceTable::from_entropies(
            (0..layout.num_blocks()).map(|i| (i % 7) as f64).collect(),
            32,
        );
        let tv = VisibleTable::build(
            cfg,
            &layout,
            RadiusRule::Optimal(RadiusModel::new(0.3, deg_to_rad(20.0))),
            Some((&imp, 10)),
        );
        (tv, imp)
    }

    #[test]
    fn visible_table_binary_roundtrip() {
        let (tv, _) = sample_tables();
        let buf = encode_visible_table(&tv).unwrap();
        let back = decode_visible_table(&buf).unwrap();
        assert_eq!(back.len(), tv.len());
        assert_eq!(back.config, tv.config);
        assert_eq!(back.radius_rule, tv.radius_rule);
        for i in 0..tv.len() {
            assert_eq!(back.entry(i), tv.entry(i), "entry {i}");
        }
    }

    #[test]
    fn importance_table_binary_roundtrip() {
        let (_, imp) = sample_tables();
        let buf = encode_importance_table(&imp);
        let back = decode_importance_table(&buf).unwrap();
        assert_eq!(back, imp);
    }

    #[test]
    fn corrupted_magic_rejected() {
        let (tv, imp) = sample_tables();
        let mut a = encode_visible_table(&tv).unwrap();
        a[0] = b'X';
        assert!(decode_visible_table(&a).is_err());
        let mut b = encode_importance_table(&imp);
        b[1] = b'?';
        assert!(decode_importance_table(&b).is_err());
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let (tv, _) = sample_tables();
        let buf = encode_visible_table(&tv).unwrap();
        // Cut at several depths: header, count, entry bodies.
        for cut in [2usize, 8, 12, buf.len() / 2, buf.len() - 1] {
            assert!(decode_visible_table(&buf[..cut]).is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let (tv, _) = sample_tables();
        let mut buf = encode_visible_table(&tv).unwrap();
        buf.extend_from_slice(&[0, 1, 2, 3]);
        assert!(decode_visible_table(&buf).is_err());
    }

    #[test]
    fn save_load_files_roundtrip() {
        let dir = std::env::temp_dir().join(format!("viz_persist_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let (tv, imp) = sample_tables();
        save_tables(&dir, &tv, &imp).unwrap();
        let (tv2, imp2) = load_tables(&dir).unwrap();
        assert_eq!(tv2.len(), tv.len());
        assert_eq!(imp2, imp);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn loading_missing_dir_errors() {
        let dir = std::env::temp_dir().join("viz_persist_definitely_missing");
        assert!(load_tables(&dir).is_err());
    }

    #[test]
    fn predictions_survive_roundtrip() {
        let (tv, _) = sample_tables();
        let buf = encode_visible_table(&tv).unwrap();
        let back = decode_visible_table(&buf).unwrap();
        let pose = viz_geom::CameraPose::orbit(45.0, 90.0, 2.5, 20.0);
        assert_eq!(back.predict(&pose), tv.predict(&pose));
    }
}
