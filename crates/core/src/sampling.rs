//! Camera-position sampling and the `T_visible` look-up table (§IV-B).
//!
//! Camera positions are sampled over the exploration domain Ω on a
//! (polar ring × azimuth × distance shell) lattice. For each sample `v`,
//! several points `v'` are drawn inside the vicinal sphere φ of radius
//! `r(d)` (the radius model of §V-B2); the union of the blocks visible from
//! every `v'` (Eq. 1 cone test) becomes the entry `S_v`. At visualization
//! time the nearest sample to the current camera is found in O(1) via the
//! lattice structure and its `S_v` drives prefetching.

use crate::importance::ImportanceTable;
use crate::radius::RadiusModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::f64::consts::{PI, TAU};
use viz_geom::sphere::sample_in_ball;
use viz_geom::{Aabb, CameraPose, ConeFrustum, SphericalCoord, Vec3};
use viz_volume::{BlockId, BrickLayout};

/// Lattice configuration for camera-position sampling.
///
/// Total sample count = `n_theta × n_phi × n_dist`; the paper sweeps this
/// between 3,240 and 108,000 (Fig. 7) and settles on 25,920.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplingConfig {
    /// Polar rings (view-direction latitude).
    pub n_theta: usize,
    /// Azimuthal sectors (view-direction longitude).
    pub n_phi: usize,
    /// Distance shells between `d_min` and `d_max`.
    pub n_dist: usize,
    /// Nearest camera distance sampled.
    pub d_min: f64,
    /// Farthest camera distance sampled.
    pub d_max: f64,
    /// Points `v'` drawn inside each vicinal sphere φ.
    pub vicinal_points: usize,
    /// Full frustum view angle θ (radians).
    pub view_angle: f64,
    /// RNG seed for vicinal sampling.
    pub seed: u64,
}

impl SamplingConfig {
    /// The paper's preferred operating point: 25,920 samples
    /// (36 rings × 72 sectors × 10 shells), 8 vicinal points.
    pub fn paper_default(d_min: f64, d_max: f64, view_angle: f64) -> Self {
        SamplingConfig {
            n_theta: 36,
            n_phi: 72,
            n_dist: 10,
            d_min,
            d_max,
            vicinal_points: 8,
            view_angle,
            seed: 0x5EED,
        }
    }

    /// Scale the lattice to approximately `target` samples, preserving the
    /// paper's 1:2 ring:sector aspect and shell count.
    pub fn with_target_samples(mut self, target: usize) -> Self {
        assert!(target > 0);
        let shells = self.n_dist.max(1);
        let per_shell = (target as f64 / shells as f64).max(1.0);
        // n_theta : n_phi = 1 : 2 ⇒ n_theta = sqrt(per_shell / 2).
        let nt = (per_shell / 2.0).sqrt().round().max(1.0) as usize;
        self.n_theta = nt;
        self.n_phi = 2 * nt;
        self
    }

    /// Total number of sampled camera positions.
    pub fn total_samples(&self) -> usize {
        self.n_theta * self.n_phi * self.n_dist
    }

    fn validate(&self) {
        assert!(self.n_theta > 0 && self.n_phi > 0 && self.n_dist > 0, "empty lattice");
        assert!(self.d_min > 0.0 && self.d_max >= self.d_min, "bad distance range");
        assert!(self.vicinal_points > 0, "need at least one vicinal point");
        assert!(self.view_angle > 0.0 && self.view_angle < PI, "bad view angle");
    }

    /// Camera position of lattice node `(it, ip, id_)` (volume centered at
    /// the origin).
    fn position(&self, it: usize, ip: usize, id_: usize) -> Vec3 {
        let theta = PI * (it as f64 + 0.5) / self.n_theta as f64;
        let phi = TAU * ip as f64 / self.n_phi as f64;
        let d = self.shell_distance(id_);
        SphericalCoord { radius: d, theta, phi }.to_cartesian()
    }

    /// Distance of shell `id_`.
    fn shell_distance(&self, id_: usize) -> f64 {
        if self.n_dist == 1 {
            return (self.d_min + self.d_max) * 0.5;
        }
        self.d_min + (self.d_max - self.d_min) * id_ as f64 / (self.n_dist - 1) as f64
    }

    /// Index of the lattice node nearest to a camera pose, O(1).
    fn nearest_index(&self, pose: &CameraPose) -> usize {
        let sc = pose.spherical();
        let it = ((sc.theta / PI * self.n_theta as f64 - 0.5).round() as isize)
            .clamp(0, self.n_theta as isize - 1) as usize;
        let ip = ((sc.phi / TAU * self.n_phi as f64).round() as usize) % self.n_phi;
        let d = pose.distance();
        let id_ = if self.n_dist == 1 {
            0
        } else {
            let t = (d - self.d_min) / (self.d_max - self.d_min);
            ((t * (self.n_dist - 1) as f64).round() as isize)
                .clamp(0, self.n_dist as isize - 1) as usize
        };
        (it * self.n_phi + ip) * self.n_dist + id_
    }
}

/// How the vicinal radius is chosen when building the table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RadiusRule {
    /// The paper's Eq. 6 model, adapting to each shell's distance.
    Optimal(RadiusModel),
    /// A fixed radius (the Fig. 11 baselines: 0.1, 0.075, 0.05, 0.025).
    Fixed(f64),
}

impl RadiusRule {
    fn radius(&self, d: f64) -> f64 {
        match self {
            RadiusRule::Optimal(m) => m.optimal_radius(d),
            RadiusRule::Fixed(r) => *r,
        }
    }
}

/// The `T_visible` look-up table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VisibleTable {
    /// Lattice this table was built on.
    pub config: SamplingConfig,
    /// Radius rule used.
    pub radius_rule: RadiusRule,
    /// `sets[i]` = sorted block ids visible from sample `i` (`S_v`).
    sets: Vec<Vec<BlockId>>,
}

impl VisibleTable {
    /// Build the table: the paper's one-time pre-processing step. Parallel
    /// over sampling positions. When `max_blocks_per_entry` is set, each
    /// `S_v` is truncated to its most important blocks using `importance`
    /// (the §IV-C over-prediction fallback).
    pub fn build(
        config: SamplingConfig,
        layout: &BrickLayout,
        radius_rule: RadiusRule,
        importance: Option<(&ImportanceTable, usize)>,
    ) -> Self {
        config.validate();
        let bounds = layout.all_block_bounds();
        let n = config.total_samples();
        let sets: Vec<Vec<BlockId>> = (0..n)
            .into_par_iter()
            .map(|i| {
                let id_ = i % config.n_dist;
                let ip = (i / config.n_dist) % config.n_phi;
                let it = i / (config.n_dist * config.n_phi);
                let v = config.position(it, ip, id_);
                let d = config.shell_distance(id_);
                let r = radius_rule.radius(d);
                // Derive a per-sample seed so the build is order-independent.
                let mut rng = StdRng::seed_from_u64(config.seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15));
                let mut visible = vec![false; bounds.len()];
                mark_visible_from(v, config.view_angle, &bounds, &mut visible);
                for _ in 1..config.vicinal_points {
                    let v_prime = sample_in_ball(&mut rng, v, r);
                    mark_visible_from(v_prime, config.view_angle, &bounds, &mut visible);
                }
                let mut set: Vec<BlockId> = visible
                    .iter()
                    .enumerate()
                    .filter_map(|(b, &vis)| vis.then_some(BlockId(b as u32)))
                    .collect();
                if let Some((imp, max)) = importance {
                    if set.len() > max {
                        set = imp.filter_top(&set, max);
                        set.sort_unstable();
                    }
                }
                set
            })
            .collect();
        VisibleTable { config, radius_rule, sets }
    }

    /// Reassemble a table from its parts (deserialization path). Fails when
    /// the entry count does not match the config's lattice size.
    pub fn from_parts(
        config: SamplingConfig,
        radius_rule: RadiusRule,
        sets: Vec<Vec<BlockId>>,
    ) -> Result<Self, String> {
        if sets.len() != config.total_samples() {
            return Err(format!(
                "entry count {} does not match lattice size {}",
                sets.len(),
                config.total_samples()
            ));
        }
        Ok(VisibleTable { config, radius_rule, sets })
    }

    /// Number of table entries.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// `true` when the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Predicted visible set for the sample nearest to `pose` — the
    /// Algorithm 1 prefetch candidates for the *next* camera position.
    pub fn predict(&self, pose: &CameraPose) -> &[BlockId] {
        &self.sets[self.config.nearest_index(pose)]
    }

    /// Entry by raw sample index (diagnostics).
    pub fn entry(&self, i: usize) -> &[BlockId] {
        &self.sets[i]
    }

    /// Mean `S_v` size across the table (over-prediction diagnostic).
    pub fn mean_set_size(&self) -> f64 {
        if self.sets.is_empty() {
            return 0.0;
        }
        self.sets.iter().map(|s| s.len()).sum::<usize>() as f64 / self.sets.len() as f64
    }

    /// Approximate in-memory footprint in bytes (the Fig. 7 look-up
    /// overhead grows with this).
    pub fn approx_bytes(&self) -> usize {
        self.sets.iter().map(|s| s.len() * 4 + 24).sum::<usize>()
    }
}

/// Mark every block visible from `v` per the paper's Eq. 1 cone test.
fn mark_visible_from(v: Vec3, view_angle: f64, bounds: &[Aabb], visible: &mut [bool]) {
    let pose = CameraPose::new(v, Vec3::ZERO, view_angle);
    let cone = ConeFrustum::from_pose(&pose);
    for (i, b) in bounds.iter().enumerate() {
        if !visible[i] && cone.intersects_block_corners(b) {
            visible[i] = true;
        }
    }
}

/// Ground-truth visible set for a pose (the same Eq. 1 test the table is
/// built from, applied to the exact camera position).
pub fn visible_blocks(pose: &CameraPose, layout: &BrickLayout) -> Vec<BlockId> {
    let cone = ConeFrustum::from_pose(pose);
    layout
        .block_ids()
        .filter(|&id| cone.intersects_block_corners(&layout.block_bounds(id)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use viz_geom::angle::deg_to_rad;
    use viz_volume::Dims3;

    fn small_config() -> SamplingConfig {
        SamplingConfig {
            n_theta: 6,
            n_phi: 12,
            n_dist: 3,
            d_min: 2.0,
            d_max: 4.0,
            vicinal_points: 4,
            view_angle: deg_to_rad(30.0),
            seed: 42,
        }
    }

    fn layout() -> BrickLayout {
        BrickLayout::new(Dims3::cube(64), Dims3::cube(16)) // 64 blocks
    }

    #[test]
    fn total_samples_is_product() {
        assert_eq!(small_config().total_samples(), 6 * 12 * 3);
    }

    #[test]
    fn with_target_samples_is_close() {
        for target in [3_240usize, 8_640, 25_920, 72_000, 108_000] {
            let c = SamplingConfig::paper_default(2.0, 4.0, 0.5).with_target_samples(target);
            let got = c.total_samples();
            assert!(
                (got as f64 / target as f64 - 1.0).abs() < 0.35,
                "target {target} → {got}"
            );
        }
    }

    #[test]
    fn paper_default_is_25920() {
        let c = SamplingConfig::paper_default(2.0, 4.0, 0.5);
        assert_eq!(c.total_samples(), 25_920);
    }

    #[test]
    fn build_produces_nonempty_sets() {
        let t = VisibleTable::build(
            small_config(),
            &layout(),
            RadiusRule::Fixed(0.1),
            None,
        );
        assert_eq!(t.len(), small_config().total_samples());
        assert!(t.mean_set_size() > 0.0, "no sample sees any block");
    }

    #[test]
    fn build_is_deterministic() {
        let a = VisibleTable::build(small_config(), &layout(), RadiusRule::Fixed(0.1), None);
        let b = VisibleTable::build(small_config(), &layout(), RadiusRule::Fixed(0.1), None);
        for i in 0..a.len() {
            assert_eq!(a.entry(i), b.entry(i), "entry {i} differs");
        }
    }

    #[test]
    fn bigger_radius_predicts_more_blocks() {
        let l = layout();
        let small = VisibleTable::build(small_config(), &l, RadiusRule::Fixed(0.02), None);
        let big = VisibleTable::build(small_config(), &l, RadiusRule::Fixed(0.5), None);
        assert!(
            big.mean_set_size() > small.mean_set_size(),
            "big {} <= small {}",
            big.mean_set_size(),
            small.mean_set_size()
        );
    }

    #[test]
    fn nearest_index_recovers_lattice_nodes() {
        let c = small_config();
        for it in 0..c.n_theta {
            for ip in 0..c.n_phi {
                for id_ in 0..c.n_dist {
                    let v = c.position(it, ip, id_);
                    let pose = CameraPose::new(v, Vec3::ZERO, c.view_angle);
                    let want = (it * c.n_phi + ip) * c.n_dist + id_;
                    assert_eq!(c.nearest_index(&pose), want, "node ({it},{ip},{id_})");
                }
            }
        }
    }

    #[test]
    fn nearest_index_clamps_outside_distance_range() {
        let c = small_config();
        let near = CameraPose::new(Vec3::new(0.1, 0.0, 0.0), Vec3::ZERO, c.view_angle);
        let far = CameraPose::new(Vec3::new(100.0, 0.0, 0.0), Vec3::ZERO, c.view_angle);
        // Must not panic and must produce valid indices.
        assert!(c.nearest_index(&near) < c.total_samples());
        assert!(c.nearest_index(&far) < c.total_samples());
    }

    #[test]
    fn prediction_covers_true_visible_set_nearby() {
        // For a pose close to a lattice node with a reasonable radius, the
        // predicted set should cover most of the true visible set.
        let l = layout();
        let c = small_config();
        let t = VisibleTable::build(c, &l, RadiusRule::Fixed(0.3), None);
        let pose = CameraPose::new(c.position(2, 5, 1) * 1.01, Vec3::ZERO, c.view_angle);
        let truth = visible_blocks(&pose, &l);
        let predicted = t.predict(&pose);
        let covered = truth.iter().filter(|b| predicted.contains(b)).count();
        assert!(
            covered as f64 >= 0.7 * truth.len() as f64,
            "prediction covered {covered}/{} blocks",
            truth.len()
        );
    }

    #[test]
    fn importance_truncation_caps_entry_size() {
        let l = layout();
        let imp = ImportanceTable::from_entropies(
            (0..l.num_blocks()).map(|i| i as f64).collect(),
            64,
        );
        let t = VisibleTable::build(
            small_config(),
            &l,
            RadiusRule::Fixed(0.5),
            Some((&imp, 5)),
        );
        for i in 0..t.len() {
            assert!(t.entry(i).len() <= 5, "entry {i} has {} blocks", t.entry(i).len());
        }
    }

    #[test]
    fn truncation_keeps_highest_entropy_blocks() {
        let l = layout();
        // Entropy = block id: highest ids are most important.
        let imp = ImportanceTable::from_entropies(
            (0..l.num_blocks()).map(|i| i as f64).collect(),
            64,
        );
        let full = VisibleTable::build(small_config(), &l, RadiusRule::Fixed(0.5), None);
        let cut = VisibleTable::build(small_config(), &l, RadiusRule::Fixed(0.5), Some((&imp, 3)));
        for i in 0..full.len() {
            let f = full.entry(i);
            if f.len() > 3 {
                let best: Vec<BlockId> = imp.filter_top(f, 3);
                let mut best_sorted = best.clone();
                best_sorted.sort_unstable();
                assert_eq!(cut.entry(i), best_sorted.as_slice(), "entry {i}");
            }
        }
    }

    #[test]
    fn visible_blocks_ground_truth_sane() {
        let l = layout();
        // Camera far away on +X looking at the center sees roughly the
        // whole volume with a wide angle…
        let pose = CameraPose::new(Vec3::new(4.0, 0.0, 0.0), Vec3::ZERO, deg_to_rad(60.0));
        let vis = visible_blocks(&pose, &l);
        assert!(vis.len() > l.num_blocks() / 2);
        // …and a very narrow angle sees only a sliver.
        let pose = CameraPose::new(Vec3::new(4.0, 0.0, 0.0), Vec3::ZERO, deg_to_rad(4.0));
        let vis = visible_blocks(&pose, &l);
        assert!(vis.len() < l.num_blocks() / 2);
        assert!(!vis.is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let t = VisibleTable::build(small_config(), &layout(), RadiusRule::Fixed(0.1), None);
        let json = serde_json::to_string(&t).unwrap();
        let back: VisibleTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(back.entry(7), t.entry(7));
    }
}
