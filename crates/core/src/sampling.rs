//! Camera-position sampling and the `T_visible` look-up table (§IV-B).
//!
//! Camera positions are sampled over the exploration domain Ω on a
//! (polar ring × azimuth × distance shell) lattice. For each sample `v`,
//! several points `v'` are drawn inside the vicinal sphere φ of radius
//! `r(d)` (the radius model of §V-B2); the union of the blocks visible from
//! every `v'` (Eq. 1 cone test) becomes the entry `S_v`. At visualization
//! time the nearest sample to the current camera is found in O(1) via the
//! lattice structure and its `S_v` drives prefetching.

use crate::importance::ImportanceTable;
use crate::radius::RadiusModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::f64::consts::{PI, TAU};
use viz_geom::sphere::sample_in_ball;
use viz_geom::{Aabb, CameraPose, ConeFrustum, SphericalCoord, Vec3};
use viz_volume::{BlockId, BrickLayout};

/// Lattice configuration for camera-position sampling.
///
/// Total sample count = `n_theta × n_phi × n_dist`; the paper sweeps this
/// between 3,240 and 108,000 (Fig. 7) and settles on 25,920.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplingConfig {
    /// Polar rings (view-direction latitude).
    pub n_theta: usize,
    /// Azimuthal sectors (view-direction longitude).
    pub n_phi: usize,
    /// Distance shells between `d_min` and `d_max`.
    pub n_dist: usize,
    /// Nearest camera distance sampled.
    pub d_min: f64,
    /// Farthest camera distance sampled.
    pub d_max: f64,
    /// Points `v'` drawn inside each vicinal sphere φ.
    pub vicinal_points: usize,
    /// Full frustum view angle θ (radians).
    pub view_angle: f64,
    /// RNG seed for vicinal sampling.
    pub seed: u64,
}

impl SamplingConfig {
    /// The paper's preferred operating point: 25,920 samples
    /// (36 rings × 72 sectors × 10 shells), 8 vicinal points.
    pub fn paper_default(d_min: f64, d_max: f64, view_angle: f64) -> Self {
        SamplingConfig {
            n_theta: 36,
            n_phi: 72,
            n_dist: 10,
            d_min,
            d_max,
            vicinal_points: 8,
            view_angle,
            seed: 0x5EED,
        }
    }

    /// Scale the lattice to approximately `target` samples, preserving the
    /// paper's 1:2 ring:sector aspect and shell count.
    pub fn with_target_samples(mut self, target: usize) -> Self {
        assert!(target > 0);
        let shells = self.n_dist.max(1);
        let per_shell = (target as f64 / shells as f64).max(1.0);
        // n_theta : n_phi = 1 : 2 ⇒ n_theta = sqrt(per_shell / 2).
        let nt = (per_shell / 2.0).sqrt().round().max(1.0) as usize;
        self.n_theta = nt;
        self.n_phi = 2 * nt;
        self
    }

    /// Total number of sampled camera positions.
    pub fn total_samples(&self) -> usize {
        self.n_theta * self.n_phi * self.n_dist
    }

    fn validate(&self) {
        assert!(self.n_theta > 0 && self.n_phi > 0 && self.n_dist > 0, "empty lattice");
        assert!(self.d_min > 0.0 && self.d_max >= self.d_min, "bad distance range");
        assert!(self.vicinal_points > 0, "need at least one vicinal point");
        assert!(self.view_angle > 0.0 && self.view_angle < PI, "bad view angle");
    }

    /// Camera position of lattice node `(it, ip, id_)` (volume centered at
    /// the origin).
    fn position(&self, it: usize, ip: usize, id_: usize) -> Vec3 {
        let theta = PI * (it as f64 + 0.5) / self.n_theta as f64;
        let phi = TAU * ip as f64 / self.n_phi as f64;
        let d = self.shell_distance(id_);
        SphericalCoord { radius: d, theta, phi }.to_cartesian()
    }

    /// Distance of shell `id_`.
    fn shell_distance(&self, id_: usize) -> f64 {
        if self.n_dist == 1 {
            return (self.d_min + self.d_max) * 0.5;
        }
        self.d_min + (self.d_max - self.d_min) * id_ as f64 / (self.n_dist - 1) as f64
    }

    /// Index of the lattice node nearest to a camera pose, O(1).
    fn nearest_index(&self, pose: &CameraPose) -> usize {
        let sc = pose.spherical();
        let it = ((sc.theta / PI * self.n_theta as f64 - 0.5).round() as isize)
            .clamp(0, self.n_theta as isize - 1) as usize;
        let ip = ((sc.phi / TAU * self.n_phi as f64).round() as usize) % self.n_phi;
        let d = pose.distance();
        let id_ = if self.n_dist == 1 {
            0
        } else {
            let t = (d - self.d_min) / (self.d_max - self.d_min);
            ((t * (self.n_dist - 1) as f64).round() as isize).clamp(0, self.n_dist as isize - 1)
                as usize
        };
        (it * self.n_phi + ip) * self.n_dist + id_
    }
}

/// How the vicinal radius is chosen when building the table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RadiusRule {
    /// The paper's Eq. 6 model, adapting to each shell's distance.
    Optimal(RadiusModel),
    /// A fixed radius (the Fig. 11 baselines: 0.1, 0.075, 0.05, 0.025).
    Fixed(f64),
}

impl RadiusRule {
    fn radius(&self, d: f64) -> f64 {
        match self {
            RadiusRule::Optimal(m) => m.optimal_radius(d),
            RadiusRule::Fixed(r) => *r,
        }
    }
}

/// The `T_visible` look-up table, stored as a flat CSR (compressed sparse
/// row) layout: one `offsets` array of `total_samples() + 1` entries and one
/// concatenated `ids` array. Entry `i` is `ids[offsets[i]..offsets[i + 1]]`.
/// Compared with the former `Vec<Vec<BlockId>>`, this is one allocation
/// instead of one per sample, contiguous in memory for `predict`, and
/// compact to persist.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VisibleTable {
    /// Lattice this table was built on.
    pub config: SamplingConfig,
    /// Radius rule used.
    pub radius_rule: RadiusRule,
    /// CSR row offsets into [`Self::csr_ids`]; `offsets.len()` is
    /// `total_samples() + 1` and `offsets[0] == 0`.
    offsets: Vec<u32>,
    /// Concatenated per-sample block ids (each run sorted ascending).
    ids: Vec<BlockId>,
}

impl VisibleTable {
    /// Build the table: the paper's one-time pre-processing step. Parallel
    /// over sampling positions, with the per-cone Eq. 1 scan accelerated by
    /// the layout's [`viz_volume::BlockBvh`] — results are identical to
    /// [`Self::build_brute_force`]. When `max_blocks_per_entry` is set, each
    /// `S_v` is truncated to its most important blocks using `importance`
    /// (the §IV-C over-prediction fallback).
    pub fn build(
        config: SamplingConfig,
        layout: &BrickLayout,
        radius_rule: RadiusRule,
        importance: Option<(&ImportanceTable, usize)>,
    ) -> Self {
        Self::build_inner(config, layout, radius_rule, importance, true)
    }

    /// The seed's brute-force build path (linear Eq. 1 scan over every block
    /// per vicinal point), retained as the reference for equivalence tests
    /// and the perf baseline recorded by the `visibility` bench bin.
    pub fn build_brute_force(
        config: SamplingConfig,
        layout: &BrickLayout,
        radius_rule: RadiusRule,
        importance: Option<(&ImportanceTable, usize)>,
    ) -> Self {
        Self::build_inner(config, layout, radius_rule, importance, false)
    }

    fn build_inner(
        config: SamplingConfig,
        layout: &BrickLayout,
        radius_rule: RadiusRule,
        importance: Option<(&ImportanceTable, usize)>,
        accelerated: bool,
    ) -> Self {
        config.validate();
        let num_blocks = layout.num_blocks();
        // Brute force scans this; the accelerated path queries the cached
        // BVH (warmed here so the parallel loop never races to build it).
        let bounds = (!accelerated).then(|| layout.all_block_bounds());
        let bvh = accelerated.then(|| layout.block_bvh());
        let n = config.total_samples();
        let sets: Vec<Vec<BlockId>> = (0..n)
            .into_par_iter()
            .map(|i| {
                let id_ = i % config.n_dist;
                let ip = (i / config.n_dist) % config.n_phi;
                let it = i / (config.n_dist * config.n_phi);
                let v = config.position(it, ip, id_);
                let d = config.shell_distance(id_);
                let r = radius_rule.radius(d);
                // Derive a per-sample seed so the build is order-independent.
                let mut rng = StdRng::seed_from_u64(
                    config.seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15),
                );
                let mut visible = vec![false; num_blocks];
                let mut scratch: Vec<u32> = Vec::new();
                let mark = |v_prime: Vec3, visible: &mut [bool], scratch: &mut Vec<u32>| {
                    let cone = cone_at(v_prime, config.view_angle);
                    match (bvh, &bounds) {
                        (Some(bvh), _) => {
                            scratch.clear();
                            bvh.visible_into(&cone, scratch);
                            for &b in scratch.iter() {
                                visible[b as usize] = true;
                            }
                        }
                        (None, Some(bounds)) => mark_visible_from(&cone, bounds, visible),
                        (None, None) => unreachable!("one scan path is always prepared"),
                    }
                };
                mark(v, &mut visible, &mut scratch);
                for _ in 1..config.vicinal_points {
                    let v_prime = sample_in_ball(&mut rng, v, r);
                    mark(v_prime, &mut visible, &mut scratch);
                }
                let mut set: Vec<BlockId> = visible
                    .iter()
                    .enumerate()
                    .filter_map(|(b, &vis)| vis.then_some(BlockId(b as u32)))
                    .collect();
                if let Some((imp, max)) = importance {
                    if set.len() > max {
                        set = imp.filter_top(&set, max);
                        set.sort_unstable();
                    }
                }
                set
            })
            .collect();
        Self::from_sets(config, radius_rule, sets)
    }

    /// Flatten per-sample sets into the CSR arrays.
    fn from_sets(config: SamplingConfig, radius_rule: RadiusRule, sets: Vec<Vec<BlockId>>) -> Self {
        let total: usize = sets.iter().map(|s| s.len()).sum();
        let mut offsets = Vec::with_capacity(sets.len() + 1);
        let mut ids = Vec::with_capacity(total);
        offsets.push(0u32);
        for s in &sets {
            ids.extend_from_slice(s);
            offsets.push(ids.len() as u32);
        }
        VisibleTable { config, radius_rule, offsets, ids }
    }

    /// Reassemble a table from per-entry sets (legacy deserialization path).
    /// Fails when the entry count does not match the config's lattice size.
    pub fn from_parts(
        config: SamplingConfig,
        radius_rule: RadiusRule,
        sets: Vec<Vec<BlockId>>,
    ) -> Result<Self, String> {
        if sets.len() != config.total_samples() {
            return Err(format!(
                "entry count {} does not match lattice size {}",
                sets.len(),
                config.total_samples()
            ));
        }
        Ok(Self::from_sets(config, radius_rule, sets))
    }

    /// Reassemble a table directly from its CSR arrays (the compact binary
    /// persist path). Validates the offsets invariants.
    pub fn from_csr(
        config: SamplingConfig,
        radius_rule: RadiusRule,
        offsets: Vec<u32>,
        ids: Vec<BlockId>,
    ) -> Result<Self, String> {
        if offsets.len() != config.total_samples() + 1 {
            return Err(format!(
                "offset count {} does not match lattice size {} + 1",
                offsets.len(),
                config.total_samples()
            ));
        }
        if offsets.first() != Some(&0) {
            return Err("CSR offsets must start at 0".to_string());
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("CSR offsets must be non-decreasing".to_string());
        }
        if *offsets.last().unwrap() as usize != ids.len() {
            return Err(format!(
                "last offset {} does not match id count {}",
                offsets.last().unwrap(),
                ids.len()
            ));
        }
        Ok(VisibleTable { config, radius_rule, offsets, ids })
    }

    /// Number of table entries.
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// `true` when the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Predicted visible set for the sample nearest to `pose` — the
    /// Algorithm 1 prefetch candidates for the *next* camera position.
    pub fn predict(&self, pose: &CameraPose) -> &[BlockId] {
        self.entry(self.config.nearest_index(pose))
    }

    /// Entry by raw sample index (diagnostics).
    pub fn entry(&self, i: usize) -> &[BlockId] {
        &self.ids[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// The raw CSR row offsets (persist/diagnostics).
    pub fn csr_offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The raw concatenated block ids (persist/diagnostics).
    pub fn csr_ids(&self) -> &[BlockId] {
        &self.ids
    }

    /// Mean `S_v` size across the table (over-prediction diagnostic).
    pub fn mean_set_size(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.ids.len() as f64 / self.len() as f64
    }

    /// Approximate in-memory footprint in bytes (the Fig. 7 look-up
    /// overhead grows with this). Two flat arrays — compare with the former
    /// `Vec<Vec<_>>` layout at `ids * 4 + entries * 24`.
    pub fn approx_bytes(&self) -> usize {
        self.offsets.len() * 4 + self.ids.len() * 4
    }
}

/// Cone of the paper's Eq. 1 for a camera at `v` looking at the centroid.
fn cone_at(v: Vec3, view_angle: f64) -> ConeFrustum {
    ConeFrustum::from_pose(&CameraPose::new(v, Vec3::ZERO, view_angle))
}

/// Mark every block visible per the paper's Eq. 1 cone test (linear scan).
fn mark_visible_from(cone: &ConeFrustum, bounds: &[Aabb], visible: &mut [bool]) {
    for (i, b) in bounds.iter().enumerate() {
        if !visible[i] && cone.intersects_block_corners(b) {
            visible[i] = true;
        }
    }
}

/// Ground-truth visible set for a pose (the same Eq. 1 test the table is
/// built from, applied to the exact camera position), answered through the
/// layout's cached BVH. Identical to [`visible_blocks_brute_force`].
pub fn visible_blocks(pose: &CameraPose, layout: &BrickLayout) -> Vec<BlockId> {
    layout.block_bvh().visible_blocks(&ConeFrustum::from_pose(pose))
}

/// The seed's linear-scan ground truth, kept as the reference implementation
/// for equivalence tests and benches.
pub fn visible_blocks_brute_force(pose: &CameraPose, layout: &BrickLayout) -> Vec<BlockId> {
    let cone = ConeFrustum::from_pose(pose);
    layout
        .block_ids()
        .filter(|&id| cone.intersects_block_corners(&layout.block_bounds(id)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use viz_geom::angle::deg_to_rad;
    use viz_volume::Dims3;

    fn small_config() -> SamplingConfig {
        SamplingConfig {
            n_theta: 6,
            n_phi: 12,
            n_dist: 3,
            d_min: 2.0,
            d_max: 4.0,
            vicinal_points: 4,
            view_angle: deg_to_rad(30.0),
            seed: 42,
        }
    }

    fn layout() -> BrickLayout {
        BrickLayout::new(Dims3::cube(64), Dims3::cube(16)) // 64 blocks
    }

    #[test]
    fn total_samples_is_product() {
        assert_eq!(small_config().total_samples(), 6 * 12 * 3);
    }

    #[test]
    fn with_target_samples_is_close() {
        for target in [3_240usize, 8_640, 25_920, 72_000, 108_000] {
            let c = SamplingConfig::paper_default(2.0, 4.0, 0.5).with_target_samples(target);
            let got = c.total_samples();
            assert!((got as f64 / target as f64 - 1.0).abs() < 0.35, "target {target} → {got}");
        }
    }

    #[test]
    fn paper_default_is_25920() {
        let c = SamplingConfig::paper_default(2.0, 4.0, 0.5);
        assert_eq!(c.total_samples(), 25_920);
    }

    #[test]
    fn build_produces_nonempty_sets() {
        let t = VisibleTable::build(small_config(), &layout(), RadiusRule::Fixed(0.1), None);
        assert_eq!(t.len(), small_config().total_samples());
        assert!(t.mean_set_size() > 0.0, "no sample sees any block");
    }

    #[test]
    fn build_is_deterministic() {
        let a = VisibleTable::build(small_config(), &layout(), RadiusRule::Fixed(0.1), None);
        let b = VisibleTable::build(small_config(), &layout(), RadiusRule::Fixed(0.1), None);
        for i in 0..a.len() {
            assert_eq!(a.entry(i), b.entry(i), "entry {i} differs");
        }
    }

    #[test]
    fn bigger_radius_predicts_more_blocks() {
        let l = layout();
        let small = VisibleTable::build(small_config(), &l, RadiusRule::Fixed(0.02), None);
        let big = VisibleTable::build(small_config(), &l, RadiusRule::Fixed(0.5), None);
        assert!(
            big.mean_set_size() > small.mean_set_size(),
            "big {} <= small {}",
            big.mean_set_size(),
            small.mean_set_size()
        );
    }

    #[test]
    fn nearest_index_recovers_lattice_nodes() {
        let c = small_config();
        for it in 0..c.n_theta {
            for ip in 0..c.n_phi {
                for id_ in 0..c.n_dist {
                    let v = c.position(it, ip, id_);
                    let pose = CameraPose::new(v, Vec3::ZERO, c.view_angle);
                    let want = (it * c.n_phi + ip) * c.n_dist + id_;
                    assert_eq!(c.nearest_index(&pose), want, "node ({it},{ip},{id_})");
                }
            }
        }
    }

    #[test]
    fn nearest_index_clamps_outside_distance_range() {
        let c = small_config();
        let near = CameraPose::new(Vec3::new(0.1, 0.0, 0.0), Vec3::ZERO, c.view_angle);
        let far = CameraPose::new(Vec3::new(100.0, 0.0, 0.0), Vec3::ZERO, c.view_angle);
        // Must not panic and must produce valid indices.
        assert!(c.nearest_index(&near) < c.total_samples());
        assert!(c.nearest_index(&far) < c.total_samples());
    }

    #[test]
    fn prediction_covers_true_visible_set_nearby() {
        // For a pose close to a lattice node with a reasonable radius, the
        // predicted set should cover most of the true visible set.
        let l = layout();
        let c = small_config();
        let t = VisibleTable::build(c, &l, RadiusRule::Fixed(0.3), None);
        let pose = CameraPose::new(c.position(2, 5, 1) * 1.01, Vec3::ZERO, c.view_angle);
        let truth = visible_blocks(&pose, &l);
        let predicted = t.predict(&pose);
        let covered = truth.iter().filter(|b| predicted.contains(b)).count();
        assert!(
            covered as f64 >= 0.7 * truth.len() as f64,
            "prediction covered {covered}/{} blocks",
            truth.len()
        );
    }

    #[test]
    fn importance_truncation_caps_entry_size() {
        let l = layout();
        let imp =
            ImportanceTable::from_entropies((0..l.num_blocks()).map(|i| i as f64).collect(), 64);
        let t = VisibleTable::build(small_config(), &l, RadiusRule::Fixed(0.5), Some((&imp, 5)));
        for i in 0..t.len() {
            assert!(t.entry(i).len() <= 5, "entry {i} has {} blocks", t.entry(i).len());
        }
    }

    #[test]
    fn truncation_keeps_highest_entropy_blocks() {
        let l = layout();
        // Entropy = block id: highest ids are most important.
        let imp =
            ImportanceTable::from_entropies((0..l.num_blocks()).map(|i| i as f64).collect(), 64);
        let full = VisibleTable::build(small_config(), &l, RadiusRule::Fixed(0.5), None);
        let cut = VisibleTable::build(small_config(), &l, RadiusRule::Fixed(0.5), Some((&imp, 3)));
        for i in 0..full.len() {
            let f = full.entry(i);
            if f.len() > 3 {
                let best: Vec<BlockId> = imp.filter_top(f, 3);
                let mut best_sorted = best.clone();
                best_sorted.sort_unstable();
                assert_eq!(cut.entry(i), best_sorted.as_slice(), "entry {i}");
            }
        }
    }

    #[test]
    fn visible_blocks_ground_truth_sane() {
        let l = layout();
        // Camera far away on +X looking at the center sees roughly the
        // whole volume with a wide angle…
        let pose = CameraPose::new(Vec3::new(4.0, 0.0, 0.0), Vec3::ZERO, deg_to_rad(60.0));
        let vis = visible_blocks(&pose, &l);
        assert!(vis.len() > l.num_blocks() / 2);
        // …and a very narrow angle sees only a sliver.
        let pose = CameraPose::new(Vec3::new(4.0, 0.0, 0.0), Vec3::ZERO, deg_to_rad(4.0));
        let vis = visible_blocks(&pose, &l);
        assert!(vis.len() < l.num_blocks() / 2);
        assert!(!vis.is_empty());
    }

    #[test]
    fn accelerated_build_matches_brute_force() {
        let l = layout();
        let fast = VisibleTable::build(small_config(), &l, RadiusRule::Fixed(0.2), None);
        let slow =
            VisibleTable::build_brute_force(small_config(), &l, RadiusRule::Fixed(0.2), None);
        assert_eq!(fast.csr_offsets(), slow.csr_offsets());
        assert_eq!(fast.csr_ids(), slow.csr_ids());
    }

    #[test]
    fn visible_blocks_matches_brute_force() {
        let l = layout();
        for (theta, phi, d, ang) in
            [(10.0, 0.0, 2.5, 15.0), (85.0, 140.0, 3.0, 45.0), (170.0, 301.0, 2.1, 70.0)]
        {
            let pose = CameraPose::orbit(theta, phi, d, ang);
            assert_eq!(
                visible_blocks(&pose, &l),
                visible_blocks_brute_force(&pose, &l),
                "{theta},{phi},{d},{ang}"
            );
        }
    }

    #[test]
    fn csr_invariants_hold() {
        let t = VisibleTable::build(small_config(), &layout(), RadiusRule::Fixed(0.1), None);
        let offs = t.csr_offsets();
        assert_eq!(offs.len(), t.len() + 1);
        assert_eq!(offs[0], 0);
        assert!(offs.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*offs.last().unwrap() as usize, t.csr_ids().len());
        // entry() slices line up with the raw arrays.
        let flat: Vec<BlockId> = (0..t.len()).flat_map(|i| t.entry(i).to_vec()).collect();
        assert_eq!(flat.as_slice(), t.csr_ids());
    }

    #[test]
    fn from_csr_validates_offsets() {
        let c = small_config();
        let n = c.total_samples();
        let rule = RadiusRule::Fixed(0.1);
        // Valid: all-empty entries.
        let ok = VisibleTable::from_csr(c, rule, vec![0; n + 1], Vec::new());
        assert!(ok.is_ok());
        // Wrong offset count.
        assert!(VisibleTable::from_csr(c, rule, vec![0; n], Vec::new()).is_err());
        // First offset nonzero.
        let mut offs = vec![1u32; n + 1];
        offs[n] = 1;
        assert!(VisibleTable::from_csr(c, rule, offs, vec![BlockId(0)]).is_err());
        // Decreasing offsets.
        let mut offs = vec![0u32; n + 1];
        offs[1] = 2;
        offs[2] = 1;
        *offs.last_mut().unwrap() = 2;
        assert!(VisibleTable::from_csr(c, rule, offs, vec![BlockId(0); 2]).is_err());
        // Last offset disagrees with id count.
        let mut offs = vec![0u32; n + 1];
        *offs.last_mut().unwrap() = 3;
        assert!(VisibleTable::from_csr(c, rule, offs, vec![BlockId(0); 2]).is_err());
    }

    #[test]
    fn from_parts_roundtrips_entries() {
        let t = VisibleTable::build(small_config(), &layout(), RadiusRule::Fixed(0.2), None);
        let sets: Vec<Vec<BlockId>> = (0..t.len()).map(|i| t.entry(i).to_vec()).collect();
        let back = VisibleTable::from_parts(t.config, t.radius_rule, sets).unwrap();
        assert_eq!(back.csr_offsets(), t.csr_offsets());
        assert_eq!(back.csr_ids(), t.csr_ids());
    }

    #[test]
    fn binary_roundtrip() {
        let t = VisibleTable::build(small_config(), &layout(), RadiusRule::Fixed(0.1), None);
        let buf = crate::persist::encode_visible_table(&t).unwrap();
        let back = crate::persist::decode_visible_table(&buf).unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(back.entry(7), t.entry(7));
        assert_eq!(back.config, t.config);
        assert_eq!(back.radius_rule, t.radius_rule);
    }

    /// JSON snapshot (skipped by the offline harness, which has no real
    /// serde_json).
    #[test]
    fn json_serde_roundtrip() {
        let t = VisibleTable::build(small_config(), &layout(), RadiusRule::Fixed(0.1), None);
        let json = serde_json::to_string(&t).unwrap();
        let back: VisibleTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(back.entry(7), t.entry(7));
    }
}
