//! Degraded-frame fetch: a per-frame I/O budget over the real
//! [`viz_fetch::FetchEngine`].
//!
//! The simulator's counterpart is [`crate::session::SessionConfig::frame_deadline_s`];
//! this module is the real-data side. A frame hands its demand set and a
//! wall-clock budget to [`fetch_frame`]; every block still gets requested
//! (so the engine's coalescing and retry machinery works the backlog), but
//! the *wait* is bounded by whatever budget remains. Blocks that miss the
//! deadline are reported back so the renderer can draw the frame with
//! resident blocks only — degraded now, recovered on a later frame when
//! the in-flight reads land in the pool.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use viz_fetch::FetchEngine;
use viz_telemetry::EventKind as Ev;
use viz_volume::BlockKey;

/// Monotone frame counter used as the telemetry span key — one sequence
/// shared by every engine in the process so frames sort globally.
static FRAME_SEQ: AtomicU64 = AtomicU64::new(0);

/// Outcome of fetching one frame's demand set under a budget.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameFetchReport {
    /// Blocks the frame demanded.
    pub requested: usize,
    /// Blocks resident (or loaded within budget).
    pub loaded: usize,
    /// Blocks that missed the deadline or failed; their reads may still be
    /// in flight and land for a later frame.
    pub missed: Vec<BlockKey>,
    /// `true` when at least one block is missing: the frame should render
    /// with resident blocks only.
    pub degraded: bool,
    /// Wall-clock seconds spent in this call.
    pub elapsed_s: f64,
}

impl FrameFetchReport {
    /// Fraction of the demand set available to the renderer (1.0 when the
    /// frame is complete).
    pub fn coverage(&self) -> f64 {
        if self.requested == 0 {
            1.0
        } else {
            self.loaded as f64 / self.requested as f64
        }
    }
}

/// Fetch `keys` through `engine`, waiting at most `budget` wall-clock time
/// in total. The budget converts to one absolute deadline up front and
/// every block waits against that same clock ([`FetchEngine::get_until`]);
/// once the deadline passes the remaining blocks are still requested
/// (zero wait) so their reads stay in flight, but the frame proceeds
/// without them.
pub fn fetch_frame(engine: &FetchEngine, keys: &[BlockKey], budget: Duration) -> FrameFetchReport {
    let ft = viz_telemetry::start();
    let start = Instant::now();
    let deadline = start.checked_add(budget).unwrap_or_else(|| {
        // An effectively-infinite budget: clamp a year out.
        start + Duration::from_secs(365 * 24 * 3600)
    });
    let mut loaded = 0usize;
    let mut missed = Vec::new();
    for &key in keys {
        match engine.get_until(key, deadline) {
            Ok(_) => loaded += 1,
            Err(_) => missed.push(key),
        }
    }
    if viz_telemetry::enabled() {
        let frame = FRAME_SEQ.fetch_add(1, Ordering::Relaxed);
        let arg = ((missed.len() as u64) << 8) | u64::from(!missed.is_empty());
        viz_telemetry::span(Ev::Frame, frame, arg, ft);
    }
    FrameFetchReport {
        requested: keys.len(),
        loaded,
        degraded: !missed.is_empty(),
        missed,
        elapsed_s: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use viz_fetch::{BlockPool, FetchConfig, FetchEngine};
    use viz_volume::{BlockId, MemBlockStore};

    fn store_with(n: u32) -> Arc<MemBlockStore> {
        let s = MemBlockStore::new();
        for i in 0..n {
            s.insert(BlockKey::scalar(BlockId(i)), vec![i as f32; 8]);
        }
        Arc::new(s)
    }

    fn keys(n: u32) -> Vec<BlockKey> {
        (0..n).map(|i| BlockKey::scalar(BlockId(i))).collect()
    }

    #[test]
    fn zero_budget_degrades_then_recovers_next_frame() {
        let pool = Arc::new(BlockPool::new());
        let eng = FetchEngine::spawn(store_with(8), pool.clone(), FetchConfig::deterministic());
        let ks = keys(8);

        // Frame 1: nothing resident, no budget — fully degraded, but every
        // block was still requested (the backlog is in the engine).
        let r1 = fetch_frame(&eng, &ks, Duration::ZERO);
        assert_eq!(r1.requested, 8);
        assert_eq!(r1.loaded, 0);
        assert_eq!(r1.missed.len(), 8);
        assert!(r1.degraded);
        assert_eq!(r1.coverage(), 0.0);
        assert_eq!(eng.metrics().deadline_misses, 8);

        // The abandoned reads land between frames.
        eng.run_until_idle();
        assert_eq!(pool.len(), 8);

        // Frame 2: everything resident — complete frame, same zero budget.
        let r2 = fetch_frame(&eng, &ks, Duration::ZERO);
        assert_eq!(r2.loaded, 8);
        assert!(!r2.degraded);
        assert!(r2.missed.is_empty());
        assert_eq!(r2.coverage(), 1.0);
        eng.shutdown();
    }

    #[test]
    fn generous_budget_loads_everything() {
        let pool = Arc::new(BlockPool::new());
        let eng = FetchEngine::spawn(
            store_with(16),
            pool.clone(),
            FetchConfig { workers: 2, ..FetchConfig::default() },
        );
        let r = fetch_frame(&eng, &keys(16), Duration::from_secs(5));
        assert_eq!(r.loaded, 16);
        assert!(!r.degraded);
        assert!(r.elapsed_s < 5.0);
        eng.shutdown();
    }

    #[test]
    fn empty_frame_is_complete() {
        let pool = Arc::new(BlockPool::new());
        let eng = FetchEngine::spawn(store_with(1), pool, FetchConfig::deterministic());
        let r = fetch_frame(&eng, &[], Duration::from_millis(1));
        assert!(!r.degraded);
        assert_eq!(r.coverage(), 1.0);
        eng.shutdown();
    }
}
