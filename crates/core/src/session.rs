//! The interactive-visualization session engine — the paper's Algorithm 1
//! and its FIFO/LRU baselines, driven over a camera path against the
//! simulated DRAM/SSD/HDD hierarchy.
//!
//! Per view point `v_i` the engine:
//!
//! 1. computes the ground-truth visible blocks (Eq. 1 cone test),
//! 2. demand-fetches the misses into fast memory (baselines evict by their
//!    own policy; the app-aware mode evicts LRU-among-stale: blocks used by
//!    the current step are pinned),
//! 3. "renders" (an analytic render-time model — see DESIGN.md §2), and
//! 4. in app-aware mode, overlaps rendering with prefetching the predicted
//!    next-view blocks from `T_visible`, entropy-filtered by `T_important`.
//!
//! Total time accounting follows §V-D exactly: baselines accumulate
//! `io + render` per step; the app-aware mode accumulates
//! `io + max(prefetch, render)` because prefetch is hidden behind rendering.

use crate::adaptive::{AdaptiveSigma, SigmaController};
use crate::importance::ImportanceTable;
use crate::prediction::extrapolate_pose;
use crate::sampling::{visible_blocks, VisibleTable};
use serde::{Deserialize, Serialize};
use viz_cache::{AccessClass, Hierarchy, PolicyKind};
use viz_geom::CameraPose;
use viz_telemetry::EventKind as Ev;
use viz_volume::{BlockId, BrickLayout};

/// Analytic render-time model: `base + per_block × |visible|` seconds.
///
/// Substitutes for the paper's GPU volume renderer; only the duration that
/// prefetching can hide matters to the policy (DESIGN.md §2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RenderModel {
    /// Fixed per-frame cost (s).
    pub base_s: f64,
    /// Additional cost per visible block (s).
    pub per_block_s: f64,
}

impl RenderModel {
    /// A frame-rate-realistic default: ~5 ms fixed + 0.2 ms per block
    /// (≈30 fps at 100 visible blocks).
    pub fn default_interactive() -> Self {
        RenderModel { base_s: 5e-3, per_block_s: 2e-4 }
    }

    /// Render duration for a frame touching `blocks` blocks.
    pub fn time(&self, blocks: usize) -> f64 {
        self.base_s + self.per_block_s * blocks as f64
    }
}

/// Strategy under evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Strategy {
    /// Conventional replacement with no prediction: the paper's FIFO and
    /// LRU comparison points (any [`PolicyKind`] works).
    Baseline(PolicyKind),
    /// The paper's application-aware scheme ("OPT" in the figures).
    AppAware(AppAwareConfig),
}

impl Strategy {
    /// Label used in reports ("FIFO", "LRU", "OPT", ...).
    pub fn label(&self) -> String {
        match self {
            Strategy::Baseline(k) => k.label().to_string(),
            Strategy::AppAware(c) => {
                if c.prefetch && c.preload {
                    "OPT".to_string()
                } else {
                    format!(
                        "OPT(preload={},prefetch={},overlap={})",
                        c.preload, c.prefetch, c.overlap
                    )
                }
            }
        }
    }
}

/// Knobs of the app-aware strategy; the ablation bench toggles these.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppAwareConfig {
    /// Entropy threshold σ: only blocks with entropy > σ are pre-loaded and
    /// prefetched (Algorithm 1 lines 7 and 22).
    pub sigma: f64,
    /// Pre-load important blocks before the path starts (line 7).
    pub preload: bool,
    /// Prefetch predicted next-view blocks during rendering (line 22).
    pub prefetch: bool,
    /// Overlap prefetch with rendering; when `false` prefetch time adds
    /// serially (used to quantify the overlap benefit).
    pub overlap: bool,
    /// Closed-loop σ tuning (an extension beyond the paper): when set, σ
    /// tracks the render window online instead of staying fixed.
    pub adaptive: Option<AdaptiveSigma>,
    /// How the next view's blocks are predicted (ablation knob).
    pub predictor: PredictorKind,
}

/// Source of the next-view prediction driving prefetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PredictorKind {
    /// The paper's `T_visible` nearest-sample lookup (§IV-B).
    #[default]
    Table,
    /// Dead reckoning: extrapolate the camera's motion and compute exact
    /// visibility at the extrapolated pose (no pre-processing; whiffs on
    /// direction changes). Extension baseline.
    DeadReckoning,
}

impl AppAwareConfig {
    /// The full paper configuration (fixed σ).
    pub fn paper(sigma: f64) -> Self {
        AppAwareConfig {
            sigma,
            preload: true,
            prefetch: true,
            overlap: true,
            adaptive: None,
            predictor: PredictorKind::Table,
        }
    }

    /// Swap in the dead-reckoning predictor (ablation).
    pub fn with_dead_reckoning(mut self) -> Self {
        self.predictor = PredictorKind::DeadReckoning;
        self
    }

    /// Enable closed-loop σ tuning starting from the current σ.
    pub fn with_adaptive_sigma(mut self, adaptive: AdaptiveSigma) -> Self {
        self.adaptive = Some(adaptive);
        self
    }
}

/// Per-step record of a session run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepMetrics {
    /// Blocks visible this step.
    pub visible: usize,
    /// Demand misses (block not in fast memory when requested).
    pub misses: usize,
    /// Simulated demand I/O seconds.
    pub io_s: f64,
    /// Simulated render seconds.
    pub render_s: f64,
    /// Simulated prefetch seconds (0 for baselines).
    pub prefetch_s: f64,
    /// Table look-up overhead seconds (0 for baselines).
    pub lookup_s: f64,
    /// Step wall time under the strategy's overlap rule.
    pub total_s: f64,
    /// Demand misses *not* fetched because the frame's I/O deadline was
    /// already spent (0 when no deadline is configured).
    pub skipped: usize,
    /// `true` when this step rendered with resident blocks only because
    /// its demand reads missed the frame deadline (`skipped > 0`).
    pub degraded: bool,
}

/// Aggregated result of a session run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionReport {
    /// Strategy label ("FIFO" / "LRU" / "OPT" / ...).
    pub strategy: String,
    /// Steps walked.
    pub steps: usize,
    /// Total demand accesses (visible-block requests).
    pub accesses: u64,
    /// Demand accesses missing fast memory.
    pub misses: u64,
    /// `misses / accesses`.
    pub miss_rate: f64,
    /// Σ per-step demand I/O seconds.
    pub io_s: f64,
    /// Σ render seconds.
    pub render_s: f64,
    /// Σ prefetch seconds.
    pub prefetch_s: f64,
    /// Σ look-up overhead seconds.
    pub lookup_s: f64,
    /// Σ per-step wall time (the paper's "total time").
    pub total_s: f64,
    /// Steps that rendered degraded (resident blocks only) because their
    /// demand I/O missed the frame deadline.
    pub degraded_steps: usize,
    /// Per-step details.
    pub per_step: Vec<StepMetrics>,
}

impl SessionReport {
    /// The demand access trace is replayable through Belady's MIN; this
    /// helper just documents the pairing.
    pub fn misses_per_step(&self) -> impl Iterator<Item = usize> + '_ {
        self.per_step.iter().map(|s| s.misses)
    }
}

/// Session configuration independent of the strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Fast:slow cache-size ratio (0.5 or 0.7 in the paper).
    pub cache_ratio: f64,
    /// Uniform block payload bytes for the cost model.
    pub block_bytes: usize,
    /// Render-time model.
    pub render: RenderModel,
    /// Per-entry look-up cost modeling the paper's Fig. 7 observation that
    /// larger `T_visible` tables slow down prefetch queries (their lookup
    /// scales with table size; ours is O(1), so this reintroduces the
    /// measured overhead as a model, default 15 ns/entry per query).
    pub lookup_s_per_entry: f64,
    /// Device costs `[fastest, middle, backing]`; defaults to the paper's
    /// DRAM/SSD/HDD testbed.
    pub tier_costs: [viz_cache::TierCost; 3],
    /// Per-frame demand I/O budget in seconds. When set, a step stops
    /// issuing demand fetches once its accumulated I/O reaches the budget:
    /// the remaining misses are skipped, the step renders with resident
    /// blocks only, and the step is marked [`StepMetrics::degraded`]. The
    /// analog of the fetch path's `get_deadline` for the simulator.
    /// `None` (the default) preserves the paper's fetch-everything rule.
    pub frame_deadline_s: Option<f64>,
}

impl SessionConfig {
    /// Paper-default configuration at a given cache ratio.
    pub fn paper(cache_ratio: f64, block_bytes: usize) -> Self {
        SessionConfig {
            cache_ratio,
            block_bytes,
            render: RenderModel::default_interactive(),
            lookup_s_per_entry: 15e-9,
            tier_costs: [
                viz_cache::TierCost::dram(),
                viz_cache::TierCost::ssd(),
                viz_cache::TierCost::hdd(),
            ],
            frame_deadline_s: None,
        }
    }

    /// Bound each step's demand I/O to `seconds`; steps that exceed it
    /// render degraded (resident blocks only) instead of stalling.
    pub fn with_frame_deadline(mut self, seconds: f64) -> Self {
        assert!(seconds >= 0.0, "frame deadline must be non-negative");
        self.frame_deadline_s = Some(seconds);
        self
    }

    /// Swap in a different device triple (e.g. GPU-mem/DRAM/NVMe for VR).
    pub fn with_tier_costs(mut self, costs: [viz_cache::TierCost; 3]) -> Self {
        self.tier_costs = costs;
        self
    }
}

/// Run one strategy over a camera path. Returns the aggregated report; the
/// underlying hierarchy statistics are folded in.
///
/// `tables` must be `Some((t_visible, t_important))` for
/// [`Strategy::AppAware`]; baselines ignore them.
pub fn run_session(
    config: &SessionConfig,
    layout: &BrickLayout,
    strategy: &Strategy,
    poses: &[CameraPose],
    tables: Option<(&VisibleTable, &ImportanceTable)>,
) -> SessionReport {
    let visible = compute_visibility(layout, poses);
    run_session_precomputed(config, layout, strategy, poses, &visible, tables)
}

/// Ground-truth visible sets for every pose of a path (Eq. 1 cone test),
/// computed in parallel. Sweeps that replay the same path under several
/// strategies compute this once and call [`run_session_precomputed`].
pub fn compute_visibility(layout: &BrickLayout, poses: &[CameraPose]) -> Vec<Vec<BlockId>> {
    use rayon::prelude::*;
    // Warm the cached BVH once up front so the rayon workers don't all
    // stall on the same lazy build.
    let _ = layout.block_bvh();
    poses.par_iter().map(|p| visible_blocks(p, layout)).collect()
}

/// [`run_session`] with the per-step visible sets supplied by the caller
/// (`visible.len()` must equal `poses.len()`).
pub fn run_session_precomputed(
    config: &SessionConfig,
    layout: &BrickLayout,
    strategy: &Strategy,
    poses: &[CameraPose],
    visible_sets: &[Vec<BlockId>],
    tables: Option<(&VisibleTable, &ImportanceTable)>,
) -> SessionReport {
    assert_eq!(poses.len(), visible_sets.len(), "one visible set per pose");
    let num_blocks = layout.num_blocks();
    let policy = match strategy {
        Strategy::Baseline(k) => *k,
        // Algorithm 1 replaces by least-recently-used among stale blocks.
        Strategy::AppAware(_) => PolicyKind::Lru,
    };
    let mut hier: Hierarchy<BlockId> = Hierarchy::two_level(
        num_blocks,
        config.cache_ratio,
        policy,
        config.block_bytes,
        config.tier_costs,
    );

    let app = match strategy {
        Strategy::AppAware(c) => Some(*c),
        Strategy::Baseline(_) => None,
    };
    let (t_visible, t_important) = match (app, tables) {
        (Some(_), Some((tv, ti))) => (Some(tv), Some(ti)),
        (Some(_), None) => panic!("AppAware strategy requires T_visible and T_important"),
        _ => (None, None),
    };

    // Algorithm 1 line 7: pre-load important blocks (capped at fast-memory
    // capacity so the pre-load cannot thrash itself).
    if let (Some(c), Some(ti)) = (app, t_important) {
        if c.preload {
            let cap = hier.tier_capacity(0);
            for b in ti.above_threshold(c.sigma).take(cap) {
                hier.preload(b);
            }
        }
    }

    let mut sigma_ctl = app.and_then(|c| c.adaptive.map(|a| SigmaController::new(a, c.sigma)));

    let lookup_cost = match (app, t_visible) {
        (Some(c), Some(tv)) if c.prefetch => config.lookup_s_per_entry * tv.len() as f64,
        _ => 0.0,
    };

    let mut per_step = Vec::with_capacity(poses.len());
    let (mut io_total, mut render_total, mut prefetch_total, mut lookup_total, mut wall_total) =
        (0.0f64, 0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut degraded_steps = 0usize;
    let mut prev_pose: Option<CameraPose> = None;

    for (step_index, (pose, visible)) in poses.iter().zip(visible_sets).enumerate() {
        let ft = viz_telemetry::start();
        // Pin the current working set in app-aware mode: Algorithm 1 only
        // evicts blocks whose last-use time predates the current step.
        if app.is_some() {
            for &b in visible {
                hier.pin_fastest(b);
            }
        }

        let mut step_io = 0.0;
        let mut step_misses = 0usize;
        let mut step_skipped = 0usize;
        for &b in visible {
            // Frame deadline: once the step's demand I/O budget is spent,
            // non-resident blocks are skipped — the frame renders with
            // what is resident instead of stalling on the slow tiers.
            if let Some(deadline) = config.frame_deadline_s {
                if step_io >= deadline && !hier.in_fastest(&b) {
                    step_skipped += 1;
                    continue;
                }
            }
            let o = hier.fetch(b, AccessClass::Demand);
            if !o.fast_hit {
                step_misses += 1;
                step_io += o.time_s;
            }
        }
        let step_degraded = step_skipped > 0;

        let render_s = config.render.time(visible.len());

        // Algorithm 1 lines 20–22: during rendering, prefetch the predicted
        // set for the nearest sampling position, entropy-filtered.
        let mut step_prefetch = 0.0;
        let mut step_lookup = 0.0;
        if let (Some(c), Some(tv), Some(ti)) = (app, t_visible, t_important) {
            if c.prefetch {
                let sigma = sigma_ctl.as_ref().map(|s| s.sigma()).unwrap_or(c.sigma);
                let predicted: Vec<BlockId> = match c.predictor {
                    PredictorKind::Table => {
                        step_lookup = lookup_cost;
                        tv.predict(pose).to_vec()
                    }
                    PredictorKind::DeadReckoning => {
                        // Extrapolate motion; exact visibility at the
                        // predicted pose (no table, no lookup cost).
                        let next = extrapolate_pose(prev_pose.as_ref(), pose);
                        visible_blocks(&next, layout)
                    }
                };
                for &b in &predicted {
                    if ti.entropy(b) > sigma && !hier.in_fastest(&b) {
                        let o = hier.fetch(b, AccessClass::Prefetch);
                        step_prefetch += o.time_s;
                    }
                }
                if let Some(ctl) = sigma_ctl.as_mut() {
                    ctl.observe(step_prefetch, render_s);
                }
            }
        }
        prev_pose = Some(*pose);
        if app.is_some() {
            hier.unpin_fastest();
        }

        let total_s = match app {
            // §V-D: total = io + max(prefetch, render) when overlapped.
            Some(c) if c.overlap => step_io + render_s.max(step_prefetch) + step_lookup,
            Some(_) => step_io + render_s + step_prefetch + step_lookup,
            None => step_io + render_s,
        };

        io_total += step_io;
        render_total += render_s;
        prefetch_total += step_prefetch;
        lookup_total += step_lookup;
        wall_total += total_s;
        degraded_steps += usize::from(step_degraded);
        viz_telemetry::span(
            Ev::Frame,
            step_index as u64,
            ((step_skipped as u64) << 8) | u64::from(step_degraded),
            ft,
        );
        per_step.push(StepMetrics {
            visible: visible.len(),
            misses: step_misses,
            io_s: step_io,
            render_s,
            prefetch_s: step_prefetch,
            lookup_s: step_lookup,
            total_s,
            skipped: step_skipped,
            degraded: step_degraded,
        });
    }

    let stats = hier.stats();
    SessionReport {
        strategy: strategy.label(),
        steps: poses.len(),
        accesses: stats.demand_accesses,
        misses: stats.demand_fast_misses,
        miss_rate: stats.miss_rate(),
        io_s: io_total,
        render_s: render_total,
        prefetch_s: prefetch_total,
        lookup_s: lookup_total,
        total_s: wall_total,
        degraded_steps,
        per_step,
    }
}

/// Record the demand access trace a path generates (for offline analyses
/// such as the Belady bound): simply the concatenated visible sets.
pub fn demand_trace(layout: &BrickLayout, poses: &[CameraPose]) -> Vec<BlockId> {
    let mut trace = Vec::new();
    for pose in poses {
        trace.extend(visible_blocks(pose, layout));
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::{RadiusRule, SamplingConfig};
    use viz_geom::angle::deg_to_rad;
    use viz_geom::{CameraPath, ExplorationDomain, SphericalPath};
    use viz_volume::Dims3;

    fn layout() -> BrickLayout {
        BrickLayout::new(Dims3::cube(64), Dims3::cube(16)) // 64 blocks
    }

    fn domain() -> ExplorationDomain {
        ExplorationDomain::new(viz_geom::Vec3::ZERO, 2.0, 4.0)
    }

    fn poses(step_deg: f64, n: usize) -> Vec<CameraPose> {
        SphericalPath::new(domain(), 2.5, step_deg, deg_to_rad(30.0)).generate(n)
    }

    fn tables(l: &BrickLayout) -> (VisibleTable, ImportanceTable) {
        let imp = ImportanceTable::from_entropies(vec![4.0; l.num_blocks()], 64);
        let cfg = SamplingConfig {
            n_theta: 8,
            n_phi: 16,
            n_dist: 3,
            d_min: 2.0,
            d_max: 4.0,
            vicinal_points: 6,
            view_angle: deg_to_rad(30.0),
            seed: 1,
        };
        let tv = VisibleTable::build(cfg, l, RadiusRule::Fixed(0.3), None);
        (tv, imp)
    }

    #[test]
    fn baseline_report_is_consistent() {
        let l = layout();
        let r = run_session(
            &SessionConfig::paper(0.5, 4096),
            &l,
            &Strategy::Baseline(PolicyKind::Lru),
            &poses(10.0, 50),
            None,
        );
        assert_eq!(r.steps, 50);
        assert_eq!(r.per_step.len(), 50);
        assert!(r.accesses > 0);
        assert!(r.miss_rate >= 0.0 && r.miss_rate <= 1.0);
        assert_eq!(r.prefetch_s, 0.0);
        // Totals are the per-step sums.
        let io_sum: f64 = r.per_step.iter().map(|s| s.io_s).sum();
        assert!((io_sum - r.io_s).abs() < 1e-9);
        let miss_sum: usize = r.per_step.iter().map(|s| s.misses).sum();
        assert_eq!(miss_sum as u64, r.misses);
    }

    #[test]
    fn telemetry_emits_one_frame_span_per_step() {
        // Other tests may run concurrently and also emit while the global
        // gate is open, so assertions are >= and keyed by step index.
        let l = layout();
        viz_telemetry::set_enabled(true);
        let r = run_session(
            &SessionConfig::paper(0.5, 4096),
            &l,
            &Strategy::Baseline(PolicyKind::Lru),
            &poses(10.0, 12),
            None,
        );
        let trace = viz_telemetry::drain();
        viz_telemetry::set_enabled(false);
        assert_eq!(r.steps, 12);
        let frames: Vec<_> = trace.events.iter().filter(|e| e.kind == Ev::Frame).collect();
        assert!(frames.len() >= 12, "expected >=12 frame spans, got {}", frames.len());
        for step in 0..12u64 {
            assert!(frames.iter().any(|e| e.key == step), "no frame span for step {step}");
        }
    }

    #[test]
    fn baseline_total_is_io_plus_render() {
        let l = layout();
        let r = run_session(
            &SessionConfig::paper(0.5, 4096),
            &l,
            &Strategy::Baseline(PolicyKind::Fifo),
            &poses(15.0, 30),
            None,
        );
        assert!((r.total_s - (r.io_s + r.render_s)).abs() < 1e-9);
    }

    #[test]
    fn appaware_beats_baselines_on_smooth_path() {
        let l = layout();
        let cfg = SessionConfig::paper(0.5, 4096);
        let path = poses(5.0, 100);
        let (tv, ti) = tables(&l);
        let opt = run_session(
            &cfg,
            &l,
            &Strategy::AppAware(AppAwareConfig::paper(0.0)),
            &path,
            Some((&tv, &ti)),
        );
        for base in [PolicyKind::Fifo, PolicyKind::Lru] {
            let b = run_session(&cfg, &l, &Strategy::Baseline(base), &path, None);
            assert!(
                opt.miss_rate < b.miss_rate,
                "OPT {} vs {} {}",
                opt.miss_rate,
                base.label(),
                b.miss_rate
            );
        }
    }

    #[test]
    fn appaware_overlap_hides_prefetch_time() {
        let l = layout();
        let cfg = SessionConfig::paper(0.5, 4096);
        let path = poses(5.0, 60);
        let (tv, ti) = tables(&l);
        let with = run_session(
            &cfg,
            &l,
            &Strategy::AppAware(AppAwareConfig { adaptive: None, ..AppAwareConfig::paper(0.0) }),
            &path,
            Some((&tv, &ti)),
        );
        let without = run_session(
            &cfg,
            &l,
            &Strategy::AppAware(AppAwareConfig { overlap: false, ..AppAwareConfig::paper(0.0) }),
            &path,
            Some((&tv, &ti)),
        );
        // Same cache behaviour, strictly less or equal wall time.
        assert_eq!(with.miss_rate, without.miss_rate);
        assert!(with.total_s <= without.total_s + 1e-12);
        assert!(with.prefetch_s > 0.0);
    }

    #[test]
    fn sigma_filters_prefetch_volume() {
        let l = layout();
        let cfg = SessionConfig::paper(0.5, 4096);
        let path = poses(10.0, 40);
        // Half the blocks high-entropy, half zero.
        let ent: Vec<f64> =
            (0..l.num_blocks()).map(|i| if i % 2 == 0 { 5.0 } else { 0.0 }).collect();
        let ti = ImportanceTable::from_entropies(ent, 64);
        let scfg = SamplingConfig {
            n_theta: 8,
            n_phi: 16,
            n_dist: 3,
            d_min: 2.0,
            d_max: 4.0,
            vicinal_points: 6,
            view_angle: deg_to_rad(30.0),
            seed: 1,
        };
        let tv = VisibleTable::build(scfg, &l, RadiusRule::Fixed(0.3), None);
        let loose = run_session(
            &cfg,
            &l,
            &Strategy::AppAware(AppAwareConfig::paper(-1.0)),
            &path,
            Some((&tv, &ti)),
        );
        let tight = run_session(
            &cfg,
            &l,
            &Strategy::AppAware(AppAwareConfig::paper(4.0)),
            &path,
            Some((&tv, &ti)),
        );
        assert!(tight.prefetch_s < loose.prefetch_s);
    }

    #[test]
    #[should_panic]
    fn appaware_without_tables_panics() {
        let l = layout();
        run_session(
            &SessionConfig::paper(0.5, 4096),
            &l,
            &Strategy::AppAware(AppAwareConfig::paper(0.0)),
            &poses(10.0, 5),
            None,
        );
    }

    #[test]
    fn demand_trace_matches_session_accesses() {
        let l = layout();
        let path = poses(10.0, 20);
        let trace = demand_trace(&l, &path);
        let r = run_session(
            &SessionConfig::paper(0.5, 4096),
            &l,
            &Strategy::Baseline(PolicyKind::Lru),
            &path,
            None,
        );
        assert_eq!(trace.len() as u64, r.accesses);
    }

    #[test]
    fn smaller_steps_mean_fewer_misses() {
        // Fig. 12's monotonicity: smaller view-direction change per step ⇒
        // lower miss rate (for any policy).
        let l = layout();
        let cfg = SessionConfig::paper(0.5, 4096);
        let small =
            run_session(&cfg, &l, &Strategy::Baseline(PolicyKind::Lru), &poses(1.0, 100), None);
        let large =
            run_session(&cfg, &l, &Strategy::Baseline(PolicyKind::Lru), &poses(30.0, 100), None);
        assert!(small.miss_rate <= large.miss_rate, "1° path missed more than 30° path");
    }

    #[test]
    fn adaptive_sigma_session_runs_and_bounds_prefetch() {
        use crate::adaptive::AdaptiveSigma;
        let l = layout();
        let cfg = SessionConfig::paper(0.5, 4096);
        let path = poses(8.0, 80);
        let (tv, ti) = tables(&l);
        // Start from sigma 0 (prefetch everything): the controller should
        // rein prefetch in relative to the fixed-sigma-0 run.
        let fixed = run_session(
            &cfg,
            &l,
            &Strategy::AppAware(AppAwareConfig::paper(0.0)),
            &path,
            Some((&tv, &ti)),
        );
        let adaptive = run_session(
            &cfg,
            &l,
            &Strategy::AppAware(
                AppAwareConfig::paper(0.0).with_adaptive_sigma(AdaptiveSigma::default_for_bins(64)),
            ),
            &path,
            Some((&tv, &ti)),
        );
        assert!(adaptive.prefetch_s <= fixed.prefetch_s + 1e-9);
        assert!(adaptive.miss_rate <= 1.0);
        // Determinism holds with the controller in the loop.
        let again = run_session(
            &cfg,
            &l,
            &Strategy::AppAware(
                AppAwareConfig::paper(0.0).with_adaptive_sigma(AdaptiveSigma::default_for_bins(64)),
            ),
            &path,
            Some((&tv, &ti)),
        );
        assert_eq!(adaptive, again);
    }

    #[test]
    fn dead_reckoning_competes_on_smooth_paths() {
        // On a constant orbit, extrapolation is exact: it should perform at
        // least comparably to the table lookup.
        let l = layout();
        let cfg = SessionConfig::paper(0.5, 4096);
        let path = poses(6.0, 80);
        let (tv, ti) = tables(&l);
        let table = run_session(
            &cfg,
            &l,
            &Strategy::AppAware(AppAwareConfig::paper(0.0)),
            &path,
            Some((&tv, &ti)),
        );
        let dr = run_session(
            &cfg,
            &l,
            &Strategy::AppAware(AppAwareConfig::paper(0.0).with_dead_reckoning()),
            &path,
            Some((&tv, &ti)),
        );
        assert!(
            dr.miss_rate <= table.miss_rate * 1.5 + 0.02,
            "dead reckoning collapsed on a smooth orbit: {} vs {}",
            dr.miss_rate,
            table.miss_rate
        );
        // And both beat no prefetching at all.
        let none = run_session(
            &cfg,
            &l,
            &Strategy::AppAware(AppAwareConfig { prefetch: false, ..AppAwareConfig::paper(0.0) }),
            &path,
            Some((&tv, &ti)),
        );
        assert!(dr.miss_rate < none.miss_rate);
    }

    #[test]
    fn no_deadline_means_no_degraded_steps() {
        let l = layout();
        let r = run_session(
            &SessionConfig::paper(0.5, 4096),
            &l,
            &Strategy::Baseline(PolicyKind::Lru),
            &poses(10.0, 30),
            None,
        );
        assert_eq!(r.degraded_steps, 0);
        assert!(r.per_step.iter().all(|s| !s.degraded && s.skipped == 0));
    }

    #[test]
    fn zero_deadline_degrades_instead_of_stalling() {
        // With a zero I/O budget, no demand fetch is ever issued for a
        // non-resident block: every miss is skipped and the step renders
        // with resident blocks only.
        let l = layout();
        let cfg = SessionConfig::paper(0.5, 4096).with_frame_deadline(0.0);
        let r = run_session(&cfg, &l, &Strategy::Baseline(PolicyKind::Lru), &poses(10.0, 30), None);
        assert_eq!(r.io_s, 0.0);
        assert_eq!(r.misses, 0);
        assert!(r.degraded_steps > 0);
        for s in &r.per_step {
            assert_eq!(s.io_s, 0.0);
            assert_eq!(s.degraded, s.skipped > 0);
        }
        let degraded_count = r.per_step.iter().filter(|s| s.degraded).count();
        assert_eq!(degraded_count, r.degraded_steps);
    }

    #[test]
    fn deadline_bounds_per_step_io_and_total() {
        let l = layout();
        let base = SessionConfig::paper(0.5, 4096);
        let unlimited =
            run_session(&base, &l, &Strategy::Baseline(PolicyKind::Lru), &poses(20.0, 40), None);
        let worst_step = unlimited.per_step.iter().map(|s| s.io_s).fold(0.0f64, f64::max);
        // Budget half the worst step: some steps must degrade, and every
        // step's I/O stays within budget + one block fetch.
        let deadline = worst_step / 2.0;
        let capped = run_session(
            &base.clone().with_frame_deadline(deadline),
            &l,
            &Strategy::Baseline(PolicyKind::Lru),
            &poses(20.0, 40),
            None,
        );
        assert!(capped.degraded_steps > 0, "halved budget should degrade some steps");
        assert!(capped.io_s <= unlimited.io_s + 1e-12);
        let max_single = unlimited.per_step.iter().map(|s| s.io_s).fold(0.0f64, f64::max);
        for s in &capped.per_step {
            assert!(
                s.io_s <= deadline + max_single + 1e-12,
                "step I/O {} exceeds budget {} by more than one fetch",
                s.io_s,
                deadline
            );
        }
    }

    #[test]
    fn strategy_labels() {
        assert_eq!(Strategy::Baseline(PolicyKind::Fifo).label(), "FIFO");
        assert_eq!(Strategy::AppAware(AppAwareConfig::paper(0.5)).label(), "OPT");
    }

    #[test]
    fn render_model_is_affine() {
        let m = RenderModel { base_s: 1.0, per_block_s: 0.5 };
        assert_eq!(m.time(0), 1.0);
        assert_eq!(m.time(4), 3.0);
    }
}
