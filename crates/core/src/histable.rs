//! Per-block histogram table: O(bins) data-dependent importance updates.
//!
//! The paper's `T_important` is built from per-block Shannon entropy and is
//! computed once. But the *data-dependent* interactions of §III-A change
//! which values matter — a retuned transfer function can make yesterday's
//! ambient range the new region of interest. Rescanning every voxel per TF
//! tweak would defeat interactivity; storing each block's *histogram*
//! (bins × blocks, tiny compared to the data) lets any value-weighted
//! importance be recomputed in O(blocks × bins):
//!
//! - entropy (the paper's measure) falls out directly, and
//! - opacity-weighted importance = Σ_bins p(bin) · weight(bin_center)
//!   re-ranks blocks for *any* transfer function instantly.

use crate::importance::ImportanceTable;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use viz_volume::{BlockId, BrickLayout, Histogram, VolumeField};

/// Per-block histograms over a shared global value range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockHistogramTable {
    /// One histogram per block (shared `lo`/`hi`/bin count).
    histograms: Vec<Histogram>,
    /// Global value range the bins span.
    pub range: (f32, f32),
    /// Bins per histogram.
    pub bins: usize,
}

impl BlockHistogramTable {
    /// Build from a materialized field (parallel over blocks); bins span
    /// the field's global min/max.
    pub fn from_field(layout: &BrickLayout, field: &VolumeField, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert_eq!(layout.volume, field.dims, "layout does not match field");
        let (lo, hi) = field.min_max();
        let ids: Vec<BlockId> = layout.block_ids().collect();
        let histograms: Vec<Histogram> = ids
            .par_iter()
            .map(|&id| {
                let mut h = Histogram::new(lo, hi, bins);
                h.add_all(&field.extract_block(layout, id));
                h
            })
            .collect();
        BlockHistogramTable { histograms, range: (lo, hi), bins }
    }

    /// Reassemble a table from its parts (the decode path of
    /// [`crate::persist::decode_histogram_table`]). Every histogram must
    /// share `range` and `bins`; errors otherwise.
    pub fn from_parts(
        histograms: Vec<Histogram>,
        range: (f32, f32),
        bins: usize,
    ) -> Result<Self, String> {
        if bins == 0 {
            return Err("need at least one bin".into());
        }
        for (i, h) in histograms.iter().enumerate() {
            if h.counts.len() != bins {
                return Err(format!("block {i}: {} bins, expected {bins}", h.counts.len()));
            }
            if (h.lo, h.hi) != range {
                return Err(format!("block {i}: range mismatch"));
            }
        }
        Ok(BlockHistogramTable { histograms, range, bins })
    }

    /// Number of blocks covered.
    pub fn len(&self) -> usize {
        self.histograms.len()
    }

    /// `true` when no blocks are covered.
    pub fn is_empty(&self) -> bool {
        self.histograms.is_empty()
    }

    /// A block's histogram.
    pub fn histogram(&self, b: BlockId) -> &Histogram {
        &self.histograms[b.index()]
    }

    /// The paper's entropy importance, derived without touching voxel data.
    pub fn entropy_importance(&self) -> ImportanceTable {
        ImportanceTable::from_entropies(
            self.histograms.iter().map(|h| h.entropy()).collect(),
            self.bins,
        )
    }

    /// Importance under an arbitrary per-value weight (e.g. a transfer
    /// function's opacity): block score = Σ p(bin) · weight(bin center).
    /// O(blocks × bins) — this is the instant data-dependent re-rank.
    pub fn weighted_importance<W: Fn(f32) -> f32>(&self, weight: W) -> ImportanceTable {
        let (lo, hi) = self.range;
        let span = (hi - lo).max(f32::MIN_POSITIVE);
        let centers: Vec<f32> =
            (0..self.bins).map(|i| lo + span * (i as f32 + 0.5) / self.bins as f32).collect();
        let weights: Vec<f64> = centers.iter().map(|&c| weight(c) as f64).collect();
        let scores: Vec<f64> = self
            .histograms
            .iter()
            .map(|h| {
                let total = h.total.max(1) as f64;
                h.counts.iter().zip(&weights).map(|(&c, &w)| (c as f64 / total) * w).sum()
            })
            .collect();
        ImportanceTable::from_entropies(scores, self.bins)
    }

    /// Merge all block histograms into the global value distribution.
    pub fn global_histogram(&self) -> Histogram {
        let mut out = Histogram::new(self.range.0, self.range.1, self.bins);
        for h in &self.histograms {
            out.merge(h);
        }
        out
    }

    /// Approximate memory footprint (the pre-processing cost this table
    /// trades for instant re-ranking).
    pub fn approx_bytes(&self) -> usize {
        self.histograms.len() * (self.bins * 8 + 24)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viz_volume::{DatasetKind, DatasetSpec, Dims3};

    fn setup() -> (BrickLayout, VolumeField, BlockHistogramTable) {
        let spec = DatasetSpec::new(DatasetKind::Ball3d, 16, 5); // 64³
        let field = spec.materialize(0, 0.0);
        let layout = BrickLayout::new(field.dims, Dims3::cube(16));
        let table = BlockHistogramTable::from_field(&layout, &field, 64);
        (layout, field, table)
    }

    #[test]
    fn entropy_importance_matches_direct_computation() {
        let (layout, field, table) = setup();
        let direct = ImportanceTable::from_field(&layout, &field, 64);
        let derived = table.entropy_importance();
        for id in layout.block_ids() {
            assert!((direct.entropy(id) - derived.entropy(id)).abs() < 1e-9, "block {id}");
        }
    }

    #[test]
    fn uniform_weight_ranks_by_occupancy_only() {
        let (_, _, table) = setup();
        let t = table.weighted_importance(|_| 1.0);
        // Every block with data scores exactly 1.
        for e in t.ranked() {
            assert!((e.entropy - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn opacity_peak_promotes_blocks_containing_that_value() {
        let (layout, field, table) = setup();
        let (lo, hi) = field.min_max();
        // Weight concentrated on high values: blocks containing the ball
        // core should out-rank ambient (all-zero) blocks.
        let thresh = lo + 0.6 * (hi - lo);
        let t = table.weighted_importance(move |v| if v > thresh { 1.0 } else { 0.0 });
        let corner = layout.block_at(0, 0, 0); // ambient
        assert_eq!(t.entropy(corner), 0.0);
        assert!(t.ranked()[0].entropy > 0.0);
    }

    #[test]
    fn retuning_weight_changes_ranking() {
        let (_, field, table) = setup();
        let (lo, hi) = field.min_max();
        let mid = lo + 0.5 * (hi - lo);
        let low_tf = table.weighted_importance(move |v| if v <= mid { 1.0 } else { 0.0 });
        let high_tf = table.weighted_importance(move |v| if v > mid { 1.0 } else { 0.0 });
        // Complementary weights ⇒ complementary scores (sum to occupancy 1).
        for i in 0..table.len() {
            let b = BlockId(i as u32);
            let s = low_tf.entropy(b) + high_tf.entropy(b);
            assert!((s - 1.0).abs() < 1e-9, "block {b}: {s}");
        }
        // And the top-ranked block differs.
        assert_ne!(low_tf.ranked()[0].block, high_tf.ranked()[0].block);
    }

    #[test]
    fn global_histogram_sums_blocks() {
        let (_, field, table) = setup();
        let g = table.global_histogram();
        assert_eq!(g.total as usize, field.dims.count());
    }

    #[test]
    fn footprint_is_small_relative_to_data() {
        let (_, field, table) = setup();
        assert!(table.approx_bytes() < field.dims.bytes_f32() / 4);
    }

    #[test]
    fn binary_roundtrip() {
        let (_, _, table) = setup();
        let buf = crate::persist::encode_histogram_table(&table);
        let back = crate::persist::decode_histogram_table(&buf).unwrap();
        assert_eq!(back, table);
    }

    #[test]
    fn from_parts_rejects_mismatched_histograms() {
        let (_, _, table) = setup();
        let mut odd = vec![table.histogram(BlockId(0)).clone()];
        odd.push(viz_volume::Histogram::new(0.0, 1.0, 7)); // wrong bin count
        assert!(BlockHistogramTable::from_parts(odd, table.range, table.bins).is_err());
        assert!(BlockHistogramTable::from_parts(Vec::new(), (0.0, 1.0), 0).is_err());
    }

    /// JSON snapshot of the same table (skipped by the offline harness,
    /// which has no real serde_json).
    #[test]
    fn json_serde_roundtrip() {
        let (_, _, table) = setup();
        let json = serde_json::to_string(&table).unwrap();
        let back: BlockHistogramTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back, table);
    }
}
