//! Access-trace capture and analysis.
//!
//! The paper's argument rests on a claim about access *patterns*: nearby
//! views re-touch the same blocks (Observation 1). This module makes that
//! measurable — record the demand trace of any exploration, compute its
//! reuse-distance profile, and derive the LRU miss curve for *every* cache
//! size in one pass (the classic Mattson stack algorithm), which is how the
//! cache-ratio choices of §V-A/Fig. 13 can be made from a trace alone.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::hash::Hash;

/// Reuse-distance profile of a trace.
///
/// The reuse distance of an access is the number of *distinct* keys
/// touched since the previous access to the same key (∞ for first
/// accesses). An LRU cache of capacity `c` hits exactly the accesses with
/// distance < `c` — so this histogram IS the LRU miss curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReuseProfile {
    /// `counts[d]` = number of accesses with reuse distance exactly `d`.
    pub counts: Vec<u64>,
    /// First-time (compulsory, infinite-distance) accesses.
    pub cold: u64,
    /// Total accesses.
    pub total: u64,
}

impl ReuseProfile {
    /// Compute the profile of `trace` (O(n · distinct) via an ordered list;
    /// adequate for the block-count scales of this workspace).
    pub fn compute<K: Copy + Eq + Hash>(trace: &[K]) -> Self {
        // LRU stack: most recent at the end.
        let mut stack: Vec<K> = Vec::new();
        let mut seen: HashSet<K> = HashSet::new();
        let mut counts: Vec<u64> = Vec::new();
        let mut cold = 0u64;
        for &k in trace {
            if seen.insert(k) {
                cold += 1;
                stack.push(k);
            } else {
                // Distance = number of distinct keys above k in the stack.
                let idx = stack.iter().rposition(|&s| s == k).expect("stack desync");
                let dist = stack.len() - 1 - idx;
                if counts.len() <= dist {
                    counts.resize(dist + 1, 0);
                }
                counts[dist] += 1;
                stack.remove(idx);
                stack.push(k);
            }
        }
        ReuseProfile { counts, cold, total: trace.len() as u64 }
    }

    /// LRU miss count for a cache of `capacity` entries: cold misses plus
    /// every access whose reuse distance ≥ capacity.
    pub fn lru_misses(&self, capacity: usize) -> u64 {
        let far: u64 = self.counts.iter().skip(capacity).sum();
        self.cold + far
    }

    /// LRU miss *rate* for a capacity.
    pub fn lru_miss_rate(&self, capacity: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.lru_misses(capacity) as f64 / self.total as f64
        }
    }

    /// The whole LRU miss curve up to `max_capacity` (inclusive), one pass.
    pub fn miss_curve(&self, max_capacity: usize) -> Vec<f64> {
        (0..=max_capacity).map(|c| self.lru_miss_rate(c)).collect()
    }

    /// Smallest capacity achieving at most `target` miss rate, if any
    /// capacity in `0..=limit` does.
    pub fn capacity_for_miss_rate(&self, target: f64, limit: usize) -> Option<usize> {
        (0..=limit).find(|&c| self.lru_miss_rate(c) <= target)
    }

    /// Mean finite reuse distance (None when nothing was reused).
    pub fn mean_distance(&self) -> Option<f64> {
        let n: u64 = self.counts.iter().sum();
        if n == 0 {
            return None;
        }
        let sum: f64 = self.counts.iter().enumerate().map(|(d, &c)| d as f64 * c as f64).sum();
        Some(sum / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viz_cache::{CacheLevel, Lookup, PolicyKind};

    #[test]
    fn repeated_key_has_zero_distance() {
        let p = ReuseProfile::compute(&[1u32, 1, 1, 1]);
        assert_eq!(p.cold, 1);
        assert_eq!(p.counts, vec![3]);
    }

    #[test]
    fn alternating_keys_have_distance_one() {
        let p = ReuseProfile::compute(&[1u32, 2, 1, 2, 1]);
        assert_eq!(p.cold, 2);
        assert_eq!(p.counts.len(), 2);
        assert_eq!(p.counts[1], 3);
    }

    #[test]
    fn all_distinct_is_all_cold() {
        let p = ReuseProfile::compute(&[1u32, 2, 3, 4, 5]);
        assert_eq!(p.cold, 5);
        assert!(p.counts.iter().all(|&c| c == 0));
        assert_eq!(p.lru_miss_rate(100), 1.0);
    }

    #[test]
    fn miss_curve_is_monotone_nonincreasing() {
        let trace: Vec<u32> = (0..200).map(|i| (i * i + i / 3) as u32 % 17).collect();
        let p = ReuseProfile::compute(&trace);
        let curve = p.miss_curve(20);
        for w in curve.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        // With capacity ≥ distinct keys, only cold misses remain.
        assert!((curve[17] - p.cold as f64 / p.total as f64).abs() < 1e-12);
    }

    #[test]
    fn profile_predicts_actual_lru_exactly() {
        // The Mattson property: profile-derived misses == simulated LRU.
        let mut state = 77u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 25) as u32
        };
        let trace: Vec<u32> = (0..600).map(|_| next()).collect();
        let p = ReuseProfile::compute(&trace);
        for cap in [1usize, 3, 7, 12, 25] {
            let mut c: CacheLevel<u32> = CacheLevel::new(PolicyKind::Lru, cap);
            let mut misses = 0u64;
            for &k in &trace {
                if c.access(k) == Lookup::Miss {
                    misses += 1;
                    c.insert(k);
                }
            }
            assert_eq!(p.lru_misses(cap), misses, "capacity {cap}");
        }
    }

    #[test]
    fn capacity_for_miss_rate_finds_knee() {
        let trace: Vec<u32> = (0..10u32).cycle().take(500).collect();
        let p = ReuseProfile::compute(&trace);
        // Cyclic over 10 keys: any capacity >= 10 hits everything after
        // warmup; capacity 9 thrashes.
        assert!(p.lru_miss_rate(9) > 0.9);
        assert_eq!(p.capacity_for_miss_rate(0.05, 64), Some(10));
        assert_eq!(p.capacity_for_miss_rate(0.0, 5), None);
    }

    #[test]
    fn mean_distance_of_cyclic_trace() {
        let trace: Vec<u32> = (0..5u32).cycle().take(50).collect();
        let p = ReuseProfile::compute(&trace);
        // Every reuse skips the 4 other keys.
        assert_eq!(p.mean_distance(), Some(4.0));
        let empty = ReuseProfile::compute::<u32>(&[]);
        assert_eq!(empty.mean_distance(), None);
    }

    #[test]
    fn camera_path_traces_have_short_reuse_distances() {
        // Observation 1, measured: consecutive-view traces reuse blocks at
        // distances far below the block count.
        use crate::session::demand_trace;
        use viz_geom::angle::deg_to_rad;
        use viz_geom::{CameraPath, ExplorationDomain, SphericalPath, Vec3};
        use viz_volume::{BrickLayout, Dims3};
        let layout = BrickLayout::new(Dims3::cube(48), Dims3::cube(8)); // 216 blocks
        let dom = ExplorationDomain::new(Vec3::ZERO, 2.0, 3.2);
        let poses = SphericalPath::new(dom, 2.5, 3.0, deg_to_rad(15.0)).generate(60);
        let trace = demand_trace(&layout, &poses);
        let p = ReuseProfile::compute(&trace);
        let mean = p.mean_distance().unwrap();
        assert!(
            mean < layout.num_blocks() as f64 / 2.0,
            "mean reuse distance {mean} not short vs {} blocks",
            layout.num_blocks()
        );
        // An LRU cache of half the blocks hits the bulk of the reuses
        // (the 8-voxel blocks of this miniature layout inflate the cone
        // test, so the per-frame working set is proportionally larger than
        // at experiment scale).
        assert!(
            p.lru_miss_rate(layout.num_blocks() / 2) < 0.35,
            "miss rate at half capacity: {}",
            p.lru_miss_rate(layout.num_blocks() / 2)
        );
    }
}
