//! Multi-variable, time-varying sessions: the paper's *data-dependent*
//! operations (§III-A).
//!
//! Beyond moving the camera, a scientist switches variables, advances
//! timesteps, and computes cross-variable statistics (the Fig. 3
//! correlation matrix needs *every* active variable's visible blocks at
//! full resolution). The cached unit therefore becomes a
//! [`BlockKey`] — `(variable, timestep, block)` — and a step's demand set
//! is the cross product of the visible blocks with the active variables.
//!
//! The app-aware tables still apply: `T_visible` is geometry-only (the
//! paper notes it "is independent to specific datasets"), and each variable
//! carries its own `T_important`.

use crate::importance::ImportanceTable;
use crate::sampling::{visible_blocks, VisibleTable};
use crate::session::{SessionConfig, StepMetrics};
use serde::{Deserialize, Serialize};
use viz_cache::{AccessClass, Hierarchy, PolicyKind};
use viz_geom::CameraPose;
use viz_volume::{BlockKey, BrickLayout};

/// One step of an exploration script: where the camera is, which variables
/// the active analysis touches, and the current timestep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScriptStep {
    /// Camera pose for this step.
    pub pose: CameraPose,
    /// Variables the view's analysis reads (e.g. the correlation matrix's
    /// variable set). Must be non-empty.
    pub vars: Vec<u16>,
    /// Timestep index.
    pub time: u16,
}

/// A scripted exploration: camera path + variable/timestep schedule.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ExplorationScript {
    /// Ordered steps.
    pub steps: Vec<ScriptStep>,
}

impl ExplorationScript {
    /// A script that follows `poses` with a fixed variable set at time 0.
    pub fn single_phase(poses: &[CameraPose], vars: Vec<u16>) -> Self {
        assert!(!vars.is_empty(), "need at least one active variable");
        ExplorationScript {
            steps: poses
                .iter()
                .map(|&pose| ScriptStep { pose, vars: vars.clone(), time: 0 })
                .collect(),
        }
    }

    /// A script that follows `poses` while cycling through variable groups
    /// every `switch_every` steps (the "tuning transfer functions /
    /// switching variables" interaction).
    pub fn with_variable_switches(
        poses: &[CameraPose],
        groups: &[Vec<u16>],
        switch_every: usize,
    ) -> Self {
        assert!(!groups.is_empty() && groups.iter().all(|g| !g.is_empty()));
        assert!(switch_every > 0);
        ExplorationScript {
            steps: poses
                .iter()
                .enumerate()
                .map(|(i, &pose)| ScriptStep {
                    pose,
                    vars: groups[(i / switch_every) % groups.len()].clone(),
                    time: 0,
                })
                .collect(),
        }
    }

    /// Advance the timestep every `advance_every` steps (time-varying
    /// playback, wrapping at `num_timesteps`).
    pub fn with_time_advance(mut self, advance_every: usize, num_timesteps: u16) -> Self {
        assert!(advance_every > 0 && num_timesteps > 0);
        for (i, step) in self.steps.iter_mut().enumerate() {
            step.time = ((i / advance_every) as u16) % num_timesteps;
        }
        self
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` when the script has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Highest variable index referenced (None for an empty script).
    pub fn max_var(&self) -> Option<u16> {
        self.steps.iter().flat_map(|s| s.vars.iter().copied()).max()
    }
}

/// Strategy for multi-variable runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MultiVarStrategy {
    /// Conventional replacement over `(var, time, block)` keys.
    Baseline(PolicyKind),
    /// App-aware: per-variable pre-load + predicted prefetch with entropy
    /// filtering; LRU-among-stale eviction with working-set pinning.
    AppAware {
        /// Entropy threshold σ (shared across variables).
        sigma: f64,
    },
}

/// Aggregate report of a multi-variable session (same metric semantics as
/// [`crate::session::SessionReport`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiVarReport {
    /// Strategy label.
    pub strategy: String,
    /// Steps executed.
    pub steps: usize,
    /// Total demand accesses (visible blocks × active variables).
    pub accesses: u64,
    /// Demand accesses missing fast memory.
    pub misses: u64,
    /// `misses / accesses`.
    pub miss_rate: f64,
    /// Σ demand I/O seconds.
    pub io_s: f64,
    /// Σ render/analysis seconds.
    pub render_s: f64,
    /// Σ prefetch seconds.
    pub prefetch_s: f64,
    /// Σ wall seconds under the overlap rule.
    pub total_s: f64,
    /// Per-step metrics.
    pub per_step: Vec<StepMetrics>,
}

/// Run a scripted multi-variable exploration.
///
/// `importance[v]` is variable `v`'s `T_important`; `num_timesteps` sizes
/// the key space (the hierarchy capacities scale with
/// `blocks × variables` of one timestep, matching the paper's single-
/// snapshot Table I sizing).
pub fn run_multivar_session(
    config: &SessionConfig,
    layout: &BrickLayout,
    strategy: &MultiVarStrategy,
    script: &ExplorationScript,
    t_visible: Option<&VisibleTable>,
    importance: &[ImportanceTable],
) -> MultiVarReport {
    assert!(!importance.is_empty(), "need at least one importance table");
    if let Some(v) = script.max_var() {
        assert!(
            (v as usize) < importance.len(),
            "script references variable {v} but only {} importance tables given",
            importance.len()
        );
    }

    let policy = match strategy {
        MultiVarStrategy::Baseline(k) => *k,
        MultiVarStrategy::AppAware { .. } => PolicyKind::Lru,
    };
    // Capacity basis: all variables of one timestep (Table I semantics).
    let universe = layout.num_blocks() * importance.len();
    let mut hier: Hierarchy<BlockKey> =
        Hierarchy::paper_default(universe, config.cache_ratio, policy, config.block_bytes);

    let app_sigma = match strategy {
        MultiVarStrategy::AppAware { sigma } => {
            assert!(t_visible.is_some(), "AppAware needs T_visible");
            Some(*sigma)
        }
        MultiVarStrategy::Baseline(_) => None,
    };

    // Pre-load: the most important blocks of every scripted variable at the
    // script's first timestep, sharing the fast tier evenly.
    if let Some(sigma) = app_sigma {
        if let Some(first) = script.steps.first() {
            let share = (hier.tier_capacity(0) / first.vars.len().max(1)).max(1);
            for &v in &first.vars {
                for b in importance[v as usize].above_threshold(sigma).take(share) {
                    hier.preload(BlockKey::new(v, first.time, b));
                }
            }
        }
    }

    let mut per_step = Vec::with_capacity(script.len());
    let (mut io_total, mut render_total, mut prefetch_total, mut wall_total) =
        (0.0f64, 0.0f64, 0.0f64, 0.0f64);

    for step in &script.steps {
        let visible = visible_blocks(&step.pose, layout);
        let keys: Vec<BlockKey> = step
            .vars
            .iter()
            .flat_map(|&v| visible.iter().map(move |&b| BlockKey::new(v, step.time, b)))
            .collect();

        if app_sigma.is_some() {
            for &k in &keys {
                hier.pin_fastest(k);
            }
        }
        let mut step_io = 0.0;
        let mut step_misses = 0usize;
        for &k in &keys {
            let o = hier.fetch(k, AccessClass::Demand);
            if !o.fast_hit {
                step_misses += 1;
                step_io += o.time_s;
            }
        }

        // Analysis cost scales with blocks × variables (each variable's
        // data is scanned by the histogram/correlation pass).
        let render_s = config.render.time(keys.len());

        let mut step_prefetch = 0.0;
        if let (Some(sigma), Some(tv)) = (app_sigma, t_visible) {
            for &b in tv.predict(&step.pose) {
                for &v in &step.vars {
                    if importance[v as usize].entropy(b) > sigma {
                        let k = BlockKey::new(v, step.time, b);
                        if !hier.in_fastest(&k) {
                            let o = hier.fetch(k, AccessClass::Prefetch);
                            step_prefetch += o.time_s;
                        }
                    }
                }
            }
        }
        if app_sigma.is_some() {
            hier.unpin_fastest();
        }

        let total_s = if app_sigma.is_some() {
            step_io + render_s.max(step_prefetch)
        } else {
            step_io + render_s
        };
        io_total += step_io;
        render_total += render_s;
        prefetch_total += step_prefetch;
        wall_total += total_s;
        per_step.push(StepMetrics {
            visible: keys.len(),
            misses: step_misses,
            io_s: step_io,
            render_s,
            prefetch_s: step_prefetch,
            lookup_s: 0.0,
            total_s,
            skipped: 0,
            degraded: false,
        });
    }

    let stats = hier.stats();
    MultiVarReport {
        strategy: match strategy {
            MultiVarStrategy::Baseline(k) => k.label().to_string(),
            MultiVarStrategy::AppAware { .. } => "OPT".to_string(),
        },
        steps: script.len(),
        accesses: stats.demand_accesses,
        misses: stats.demand_fast_misses,
        miss_rate: stats.miss_rate(),
        io_s: io_total,
        render_s: render_total,
        prefetch_s: prefetch_total,
        total_s: wall_total,
        per_step,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radius::RadiusModel;
    use crate::sampling::{RadiusRule, SamplingConfig};
    use viz_geom::angle::deg_to_rad;
    use viz_geom::{CameraPath, ExplorationDomain, SphericalPath, Vec3};
    use viz_volume::Dims3;

    fn layout() -> BrickLayout {
        BrickLayout::new(Dims3::cube(32), Dims3::cube(8)) // 64 blocks
    }

    fn poses(n: usize) -> Vec<CameraPose> {
        let dom = ExplorationDomain::new(Vec3::ZERO, 2.0, 3.2);
        SphericalPath::new(dom, 2.5, 6.0, deg_to_rad(15.0)).generate(n)
    }

    fn tables(l: &BrickLayout, nvars: usize) -> (VisibleTable, Vec<ImportanceTable>) {
        let cfg = SamplingConfig {
            n_theta: 6,
            n_phi: 12,
            n_dist: 2,
            d_min: 2.0,
            d_max: 3.2,
            vicinal_points: 4,
            view_angle: deg_to_rad(15.0),
            seed: 3,
        };
        let tv = VisibleTable::build(
            cfg,
            l,
            RadiusRule::Optimal(RadiusModel::new(0.25, deg_to_rad(15.0))),
            None,
        );
        let imps = (0..nvars)
            .map(|v| {
                ImportanceTable::from_entropies(
                    (0..l.num_blocks()).map(|i| ((i + v) % 5) as f64).collect(),
                    32,
                )
            })
            .collect();
        (tv, imps)
    }

    #[test]
    fn script_builders() {
        let p = poses(12);
        let s = ExplorationScript::single_phase(&p, vec![0, 1]);
        assert_eq!(s.len(), 12);
        assert!(s.steps.iter().all(|st| st.vars == vec![0, 1] && st.time == 0));

        let s = ExplorationScript::with_variable_switches(&p, &[vec![0], vec![1, 2]], 4);
        assert_eq!(s.steps[0].vars, vec![0]);
        assert_eq!(s.steps[4].vars, vec![1, 2]);
        assert_eq!(s.steps[8].vars, vec![0]);
        assert_eq!(s.max_var(), Some(2));

        let s = ExplorationScript::single_phase(&p, vec![0]).with_time_advance(3, 2);
        assert_eq!(s.steps[0].time, 0);
        assert_eq!(s.steps[3].time, 1);
        assert_eq!(s.steps[6].time, 0); // wraps
    }

    #[test]
    fn accesses_scale_with_variable_count() {
        let l = layout();
        let p = poses(10);
        let cfg = SessionConfig::paper(0.5, l.nominal_block_bytes());
        let (_, imps) = tables(&l, 3);
        let one = run_multivar_session(
            &cfg,
            &l,
            &MultiVarStrategy::Baseline(PolicyKind::Lru),
            &ExplorationScript::single_phase(&p, vec![0]),
            None,
            &imps,
        );
        let three = run_multivar_session(
            &cfg,
            &l,
            &MultiVarStrategy::Baseline(PolicyKind::Lru),
            &ExplorationScript::single_phase(&p, vec![0, 1, 2]),
            None,
            &imps,
        );
        assert_eq!(three.accesses, 3 * one.accesses);
    }

    #[test]
    fn appaware_beats_lru_with_variable_switching() {
        let l = layout();
        let p = poses(80);
        let cfg = SessionConfig::paper(0.5, l.nominal_block_bytes());
        let (tv, imps) = tables(&l, 4);
        let script = ExplorationScript::with_variable_switches(&p, &[vec![0, 1], vec![2, 3]], 10);
        let lru = run_multivar_session(
            &cfg,
            &l,
            &MultiVarStrategy::Baseline(PolicyKind::Lru),
            &script,
            None,
            &imps,
        );
        let opt = run_multivar_session(
            &cfg,
            &l,
            &MultiVarStrategy::AppAware { sigma: 0.5 },
            &script,
            Some(&tv),
            &imps,
        );
        assert!(
            opt.miss_rate < lru.miss_rate,
            "OPT {:.4} vs LRU {:.4}",
            opt.miss_rate,
            lru.miss_rate
        );
    }

    #[test]
    fn timestep_advance_causes_compulsory_misses() {
        let l = layout();
        let p = poses(40);
        let cfg = SessionConfig::paper(0.5, l.nominal_block_bytes());
        let (_, imps) = tables(&l, 1);
        let static_script = ExplorationScript::single_phase(&p, vec![0]);
        let moving_script = ExplorationScript::single_phase(&p, vec![0]).with_time_advance(10, 4);
        let stat = run_multivar_session(
            &cfg,
            &l,
            &MultiVarStrategy::Baseline(PolicyKind::Lru),
            &static_script,
            None,
            &imps,
        );
        let moving = run_multivar_session(
            &cfg,
            &l,
            &MultiVarStrategy::Baseline(PolicyKind::Lru),
            &moving_script,
            None,
            &imps,
        );
        assert!(
            moving.miss_rate > stat.miss_rate,
            "time-varying playback should miss more: {:.4} vs {:.4}",
            moving.miss_rate,
            stat.miss_rate
        );
    }

    #[test]
    fn report_aggregates_are_consistent() {
        let l = layout();
        let p = poses(20);
        let cfg = SessionConfig::paper(0.5, l.nominal_block_bytes());
        let (tv, imps) = tables(&l, 2);
        let r = run_multivar_session(
            &cfg,
            &l,
            &MultiVarStrategy::AppAware { sigma: 0.0 },
            &ExplorationScript::single_phase(&p, vec![0, 1]),
            Some(&tv),
            &imps,
        );
        assert_eq!(r.per_step.len(), 20);
        let miss_sum: usize = r.per_step.iter().map(|s| s.misses).sum();
        assert_eq!(miss_sum as u64, r.misses);
        let io_sum: f64 = r.per_step.iter().map(|s| s.io_s).sum();
        assert!((io_sum - r.io_s).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn missing_importance_table_panics() {
        let l = layout();
        let p = poses(3);
        let cfg = SessionConfig::paper(0.5, l.nominal_block_bytes());
        let (_, imps) = tables(&l, 1);
        // Script uses variable 5 but only 1 table provided.
        run_multivar_session(
            &cfg,
            &l,
            &MultiVarStrategy::Baseline(PolicyKind::Lru),
            &ExplorationScript::single_phase(&p, vec![5]),
            None,
            &imps,
        );
    }

    #[test]
    #[should_panic]
    fn appaware_without_tvisible_panics() {
        let l = layout();
        let p = poses(3);
        let cfg = SessionConfig::paper(0.5, l.nominal_block_bytes());
        let (_, imps) = tables(&l, 1);
        run_multivar_session(
            &cfg,
            &l,
            &MultiVarStrategy::AppAware { sigma: 0.0 },
            &ExplorationScript::single_phase(&p, vec![0]),
            None,
            &imps,
        );
    }
}
