//! Property-based tests for the application-aware policy core.

use proptest::prelude::*;
use viz_core::persist::{decode_visible_table, encode_visible_table};
use viz_core::{
    visible_blocks, visible_blocks_brute_force, ImportanceTable, RadiusModel, RadiusRule,
    SamplingConfig, VisibleTable,
};
use viz_geom::angle::deg_to_rad;
use viz_geom::CameraPose;
use viz_volume::{BlockId, BrickLayout, Dims3};

proptest! {
    /// Eq. 6 solves the cache-fill condition whenever it is interior.
    #[test]
    fn radius_model_fill_condition(
        ratio in 0.05f64..0.9,
        angle_deg in 5.0f64..60.0,
        d in 1.5f64..5.0,
    ) {
        let m = RadiusModel::new(ratio, deg_to_rad(angle_deg));
        let r = m.optimal_radius(d);
        prop_assert!(r >= m.min_radius);
        if r > m.min_radius {
            let frac = m.predicted_fraction(d, r);
            prop_assert!((frac - ratio).abs() < 1e-6,
                "fill {frac} vs ratio {ratio} (r = {r}, d = {d})");
        }
    }

    /// The optimal radius is monotone: farther cameras need smaller vicinal
    /// spheres; larger caches allow bigger ones.
    #[test]
    fn radius_monotonicity(
        ratio in 0.1f64..0.6,
        angle_deg in 10.0f64..40.0,
        d in 1.5f64..4.0,
        dd in 0.01f64..1.0,
        dr in 0.01f64..0.3,
    ) {
        let m = RadiusModel::new(ratio, deg_to_rad(angle_deg));
        prop_assert!(m.optimal_radius(d + dd) <= m.optimal_radius(d) + 1e-12);
        let m2 = RadiusModel::new((ratio + dr).min(1.0), deg_to_rad(angle_deg));
        prop_assert!(m2.optimal_radius(d) >= m.optimal_radius(d) - 1e-12);
    }

    /// Importance table ordering is a permutation sorted by entropy.
    #[test]
    fn importance_ranking_is_sorted_permutation(
        entropies in prop::collection::vec(0.0f64..8.0, 1..200),
    ) {
        let t = ImportanceTable::from_entropies(entropies.clone(), 64);
        let ranked = t.ranked();
        prop_assert_eq!(ranked.len(), entropies.len());
        for w in ranked.windows(2) {
            prop_assert!(w[0].entropy >= w[1].entropy);
        }
        // Permutation check: every block appears exactly once.
        let mut seen = vec![false; entropies.len()];
        for e in ranked {
            prop_assert!(!seen[e.block.index()]);
            seen[e.block.index()] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// `above_threshold` and `sigma_for_fraction` are consistent.
    #[test]
    fn sigma_threshold_consistency(
        entropies in prop::collection::vec(0.0f64..8.0, 2..100),
        frac_pct in 0u32..100,
    ) {
        let t = ImportanceTable::from_entropies(entropies, 64);
        let frac = frac_pct as f64 / 100.0;
        let sigma = t.sigma_for_fraction(frac);
        let above = t.above_threshold(sigma).count();
        // Never more than requested (strict inequality may select fewer
        // under ties).
        let want = ((t.len() as f64) * frac).floor() as usize;
        prop_assert!(above <= want.max(1) + 1, "above {above} want {want}");
    }

    /// filter_top returns a subset of the input, of bounded size, in
    /// non-increasing entropy order.
    #[test]
    fn filter_top_properties(
        entropies in prop::collection::vec(0.0f64..8.0, 4..64),
        max in 1usize..16,
    ) {
        let n = entropies.len();
        let t = ImportanceTable::from_entropies(entropies, 64);
        let set: Vec<viz_volume::BlockId> =
            (0..n as u32).step_by(2).map(viz_volume::BlockId).collect();
        let kept = t.filter_top(&set, max);
        prop_assert!(kept.len() <= max.min(set.len()));
        for k in &kept {
            prop_assert!(set.contains(k));
        }
        for w in kept.windows(2) {
            prop_assert!(t.entropy(w[0]) >= t.entropy(w[1]));
        }
    }

    /// Nearest-sample prediction always returns a valid table entry, for
    /// any camera pose (even outside the sampled shell).
    #[test]
    fn prediction_total_over_pose_space(
        theta in 0.0f64..180.0,
        phi in 0.0f64..360.0,
        d in 0.1f64..10.0,
    ) {
        let layout = BrickLayout::new(Dims3::cube(16), Dims3::cube(8));
        let cfg = SamplingConfig {
            n_theta: 4, n_phi: 8, n_dist: 2,
            d_min: 2.0, d_max: 3.0,
            vicinal_points: 2,
            view_angle: deg_to_rad(20.0),
            seed: 5,
        };
        let tv = VisibleTable::build(cfg, &layout, RadiusRule::Fixed(0.1), None);
        let pose = CameraPose::orbit(theta, phi, d, 20.0);
        let predicted = tv.predict(&pose);
        for b in predicted {
            prop_assert!(b.index() < layout.num_blocks());
        }
    }

    /// BVH-accelerated ground truth is identical to the brute-force linear
    /// Eq. 1 scan for randomized layouts, poses and view angles.
    #[test]
    fn bvh_visibility_matches_brute_force(
        vol_exp in 4u32..7,       // 16³..64³ volumes
        blk_exp in 2u32..5,       // 4³..16³ blocks
        theta in 0.0f64..180.0,
        phi in 0.0f64..360.0,
        d in 1.2f64..6.0,
        angle_deg in 2.0f64..100.0,
    ) {
        let layout = BrickLayout::new(
            Dims3::cube(1 << vol_exp),
            Dims3::cube(1 << blk_exp.min(vol_exp)),
        );
        let pose = CameraPose::orbit(theta, phi, d, angle_deg);
        prop_assert_eq!(
            visible_blocks(&pose, &layout),
            visible_blocks_brute_force(&pose, &layout)
        );
    }

    /// The accelerated table build equals the brute-force build entry for
    /// entry (same CSR arrays), for randomized small lattices.
    #[test]
    fn table_build_matches_brute_force(
        n_theta in 2usize..5,
        n_phi in 2usize..6,
        vicinal in 1usize..4,
        seed in 0u64..1000,
        radius in 0.01f64..0.4,
    ) {
        let layout = BrickLayout::new(Dims3::cube(32), Dims3::cube(8));
        let cfg = SamplingConfig {
            n_theta, n_phi, n_dist: 2,
            d_min: 1.8, d_max: 3.0,
            vicinal_points: vicinal,
            view_angle: deg_to_rad(25.0),
            seed,
        };
        let fast = VisibleTable::build(cfg, &layout, RadiusRule::Fixed(radius), None);
        let slow = VisibleTable::build_brute_force(cfg, &layout, RadiusRule::Fixed(radius), None);
        prop_assert_eq!(fast.csr_offsets(), slow.csr_offsets());
        prop_assert_eq!(fast.csr_ids(), slow.csr_ids());
    }

    /// A table assembled from arbitrary per-entry id sets survives the CSR
    /// flatten and the version-2 binary encode/decode unchanged.
    #[test]
    fn csr_table_roundtrips_persist(
        raw_sets in prop::collection::vec(
            prop::collection::vec(0u32..10_000, 0..20),
            16..=16, // must match the 2×4×2 lattice below
        ),
    ) {
        let cfg = SamplingConfig {
            n_theta: 2, n_phi: 4, n_dist: 2,
            d_min: 2.0, d_max: 3.0,
            vicinal_points: 1,
            view_angle: deg_to_rad(20.0),
            seed: 1,
        };
        let sets: Vec<Vec<BlockId>> = raw_sets
            .into_iter()
            .map(|s| s.into_iter().map(BlockId).collect())
            .collect();
        let t = VisibleTable::from_parts(cfg, RadiusRule::Fixed(0.1), sets.clone()).unwrap();
        for (i, s) in sets.iter().enumerate() {
            prop_assert_eq!(t.entry(i), s.as_slice());
        }
        let back = decode_visible_table(&encode_visible_table(&t).unwrap()).unwrap();
        prop_assert_eq!(back.csr_offsets(), t.csr_offsets());
        prop_assert_eq!(back.csr_ids(), t.csr_ids());
    }
}
