//! Property-based tests for the application-aware policy core.

use proptest::prelude::*;
use viz_core::{ImportanceTable, RadiusModel, RadiusRule, SamplingConfig, VisibleTable};
use viz_geom::angle::deg_to_rad;
use viz_geom::CameraPose;
use viz_volume::{BrickLayout, Dims3};

proptest! {
    /// Eq. 6 solves the cache-fill condition whenever it is interior.
    #[test]
    fn radius_model_fill_condition(
        ratio in 0.05f64..0.9,
        angle_deg in 5.0f64..60.0,
        d in 1.5f64..5.0,
    ) {
        let m = RadiusModel::new(ratio, deg_to_rad(angle_deg));
        let r = m.optimal_radius(d);
        prop_assert!(r >= m.min_radius);
        if r > m.min_radius {
            let frac = m.predicted_fraction(d, r);
            prop_assert!((frac - ratio).abs() < 1e-6,
                "fill {frac} vs ratio {ratio} (r = {r}, d = {d})");
        }
    }

    /// The optimal radius is monotone: farther cameras need smaller vicinal
    /// spheres; larger caches allow bigger ones.
    #[test]
    fn radius_monotonicity(
        ratio in 0.1f64..0.6,
        angle_deg in 10.0f64..40.0,
        d in 1.5f64..4.0,
        dd in 0.01f64..1.0,
        dr in 0.01f64..0.3,
    ) {
        let m = RadiusModel::new(ratio, deg_to_rad(angle_deg));
        prop_assert!(m.optimal_radius(d + dd) <= m.optimal_radius(d) + 1e-12);
        let m2 = RadiusModel::new((ratio + dr).min(1.0), deg_to_rad(angle_deg));
        prop_assert!(m2.optimal_radius(d) >= m.optimal_radius(d) - 1e-12);
    }

    /// Importance table ordering is a permutation sorted by entropy.
    #[test]
    fn importance_ranking_is_sorted_permutation(
        entropies in prop::collection::vec(0.0f64..8.0, 1..200),
    ) {
        let t = ImportanceTable::from_entropies(entropies.clone(), 64);
        let ranked = t.ranked();
        prop_assert_eq!(ranked.len(), entropies.len());
        for w in ranked.windows(2) {
            prop_assert!(w[0].entropy >= w[1].entropy);
        }
        // Permutation check: every block appears exactly once.
        let mut seen = vec![false; entropies.len()];
        for e in ranked {
            prop_assert!(!seen[e.block.index()]);
            seen[e.block.index()] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// `above_threshold` and `sigma_for_fraction` are consistent.
    #[test]
    fn sigma_threshold_consistency(
        entropies in prop::collection::vec(0.0f64..8.0, 2..100),
        frac_pct in 0u32..100,
    ) {
        let t = ImportanceTable::from_entropies(entropies, 64);
        let frac = frac_pct as f64 / 100.0;
        let sigma = t.sigma_for_fraction(frac);
        let above = t.above_threshold(sigma).count();
        // Never more than requested (strict inequality may select fewer
        // under ties).
        let want = ((t.len() as f64) * frac).floor() as usize;
        prop_assert!(above <= want.max(1) + 1, "above {above} want {want}");
    }

    /// filter_top returns a subset of the input, of bounded size, in
    /// non-increasing entropy order.
    #[test]
    fn filter_top_properties(
        entropies in prop::collection::vec(0.0f64..8.0, 4..64),
        max in 1usize..16,
    ) {
        let n = entropies.len();
        let t = ImportanceTable::from_entropies(entropies, 64);
        let set: Vec<viz_volume::BlockId> =
            (0..n as u32).step_by(2).map(viz_volume::BlockId).collect();
        let kept = t.filter_top(&set, max);
        prop_assert!(kept.len() <= max.min(set.len()));
        for k in &kept {
            prop_assert!(set.contains(k));
        }
        for w in kept.windows(2) {
            prop_assert!(t.entropy(w[0]) >= t.entropy(w[1]));
        }
    }

    /// Nearest-sample prediction always returns a valid table entry, for
    /// any camera pose (even outside the sampled shell).
    #[test]
    fn prediction_total_over_pose_space(
        theta in 0.0f64..180.0,
        phi in 0.0f64..360.0,
        d in 0.1f64..10.0,
    ) {
        let layout = BrickLayout::new(Dims3::cube(16), Dims3::cube(8));
        let cfg = SamplingConfig {
            n_theta: 4, n_phi: 8, n_dist: 2,
            d_min: 2.0, d_max: 3.0,
            vicinal_points: 2,
            view_angle: deg_to_rad(20.0),
            seed: 5,
        };
        let tv = VisibleTable::build(cfg, &layout, RadiusRule::Fixed(0.1), None);
        let pose = CameraPose::orbit(theta, phi, d, 20.0);
        let predicted = tv.predict(&pose);
        for b in predicted {
            prop_assert!(b.index() < layout.num_blocks());
        }
    }
}
