//! A single cache level: bounded set of resident keys governed by a
//! replacement policy, with pin support for the paper's "only evict blocks
//! whose last use is older than the current step" rule.

use crate::policy::{PolicyKind, ReplacementPolicy};
use std::collections::HashSet;
use std::hash::Hash;

/// Outcome of requesting a key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Key was resident.
    Hit,
    /// Key was absent.
    Miss,
}

/// A bounded cache level. Capacity is counted in entries because the paper
/// partitions data into uniform-size blocks (§IV: "divided into a set of
/// uniform-size blocks"), making entry count ∝ bytes.
pub struct CacheLevel<K: Copy + Eq + Hash> {
    policy: Box<dyn ReplacementPolicy<K>>,
    capacity: usize,
    pinned: HashSet<K>,
}

impl<K: Copy + Eq + Hash + Ord + Send + 'static> CacheLevel<K> {
    /// Create with a built-in policy.
    pub fn new(kind: PolicyKind, capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        CacheLevel { policy: kind.build(capacity), capacity, pinned: HashSet::new() }
    }

    /// Swap the replacement policy in place, keeping every resident key.
    ///
    /// The adaptive control plane's actuator: when shadow scoring says a
    /// different policy would serve the live trace better, the switch must
    /// not flush a cache that took thousands of misses to warm. The old
    /// policy is drained in *eviction order* and replayed into the new one
    /// in that order, so what the old policy valued most is what the new
    /// policy sees as most recently inserted — the closest portable
    /// approximation of "carry the residency state across".
    pub fn set_policy(&mut self, kind: PolicyKind) {
        let mut order = Vec::with_capacity(self.policy.len());
        while let Some(victim) = self.policy.choose_victim(&mut |_| true) {
            order.push(victim);
        }
        let mut fresh = kind.build(self.capacity);
        for key in order {
            fresh.on_insert(key);
        }
        self.policy = fresh;
    }
}

impl<K: Copy + Eq + Hash> CacheLevel<K> {
    /// Create with a custom policy instance.
    pub fn with_policy(policy: Box<dyn ReplacementPolicy<K>>, capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        CacheLevel { policy, capacity, pinned: HashSet::new() }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.policy.len()
    }

    /// `true` when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.policy.is_empty()
    }

    /// Entry capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Residency check without touching recency state.
    pub fn contains(&self, key: &K) -> bool {
        self.policy.contains(key)
    }

    /// Record an access: returns [`Lookup::Hit`] and updates recency when
    /// resident, [`Lookup::Miss`] otherwise (no insertion).
    pub fn access(&mut self, key: K) -> Lookup {
        if self.policy.contains(&key) {
            self.policy.on_hit(key);
            Lookup::Hit
        } else {
            Lookup::Miss
        }
    }

    /// Insert a key (after a miss was serviced), evicting as needed.
    /// Returns the evicted keys (0 or 1 under normal operation).
    ///
    /// When every resident entry is pinned the insertion is still honoured —
    /// the cache temporarily exceeds capacity rather than dropping data the
    /// caller is about to use (Algorithm 1 pins at most the current
    /// frame's working set, which the experiments keep below capacity).
    pub fn insert(&mut self, key: K) -> Vec<K> {
        if self.policy.contains(&key) {
            self.policy.on_hit(key);
            return Vec::new();
        }
        let mut evicted = Vec::new();
        while self.policy.len() >= self.capacity {
            let pinned = &self.pinned;
            match self.policy.choose_victim(&mut |k| !pinned.contains(k)) {
                Some(v) => evicted.push(v),
                None => break, // everything pinned: allow overflow
            }
        }
        self.policy.on_insert(key);
        evicted
    }

    /// Remove a key outright (invalidation).
    pub fn remove(&mut self, key: &K) {
        self.policy.on_remove(key);
        self.pinned.remove(key);
    }

    /// Protect a key from eviction until [`Self::unpin_all`] (or removal).
    pub fn pin(&mut self, key: K) {
        self.pinned.insert(key);
    }

    /// Release every pin.
    pub fn unpin_all(&mut self) {
        self.pinned.clear();
    }

    /// Number of currently pinned keys.
    pub fn pinned_len(&self) -> usize {
        self.pinned.len()
    }

    /// Policy name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lru(cap: usize) -> CacheLevel<u32> {
        CacheLevel::new(PolicyKind::Lru, cap)
    }

    #[test]
    fn miss_then_insert_then_hit() {
        let mut c = lru(2);
        assert_eq!(c.access(1), Lookup::Miss);
        assert!(c.insert(1).is_empty());
        assert_eq!(c.access(1), Lookup::Hit);
    }

    #[test]
    fn eviction_at_capacity() {
        let mut c = lru(2);
        c.insert(1);
        c.insert(2);
        let ev = c.insert(3);
        assert_eq!(ev, vec![1]);
        assert_eq!(c.len(), 2);
        assert!(!c.contains(&1));
    }

    #[test]
    fn access_updates_recency() {
        let mut c = lru(2);
        c.insert(1);
        c.insert(2);
        c.access(1); // 2 becomes LRU
        assert_eq!(c.insert(3), vec![2]);
        assert!(c.contains(&1));
    }

    #[test]
    fn duplicate_insert_is_treated_as_hit() {
        let mut c = lru(2);
        c.insert(1);
        c.insert(2);
        assert!(c.insert(1).is_empty()); // refreshes 1
        assert_eq!(c.insert(3), vec![2]);
    }

    #[test]
    fn pinned_keys_survive_eviction() {
        let mut c = lru(2);
        c.insert(1);
        c.insert(2);
        c.pin(1);
        c.pin(2);
        // Everything pinned: overflow rather than evict.
        assert!(c.insert(3).is_empty());
        assert_eq!(c.len(), 3);
        c.unpin_all();
        // Next insert sheds entries back to capacity.
        let ev = c.insert(4);
        assert_eq!(ev.len(), 2);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn pin_protects_lru_victim() {
        let mut c = lru(2);
        c.insert(1);
        c.insert(2);
        c.pin(1); // 1 is LRU but pinned
        assert_eq!(c.insert(3), vec![2]);
        assert!(c.contains(&1));
        assert_eq!(c.pinned_len(), 1);
    }

    #[test]
    fn remove_clears_pin() {
        let mut c = lru(2);
        c.insert(1);
        c.pin(1);
        c.remove(&1);
        assert_eq!(c.pinned_len(), 0);
        assert!(!c.contains(&1));
    }

    #[test]
    fn works_with_every_builtin_policy() {
        for kind in [
            PolicyKind::Fifo,
            PolicyKind::Lru,
            PolicyKind::Clock,
            PolicyKind::Lfu,
            PolicyKind::Arc,
            PolicyKind::TwoQ,
            PolicyKind::Mru,
            PolicyKind::Lirs,
        ] {
            let mut c: CacheLevel<u32> = CacheLevel::new(kind, 4);
            for k in 0..16 {
                c.access(k);
                c.insert(k);
            }
            assert!(c.len() <= 4, "{} overflowed", kind.label());
            // A re-access of the most recent key must hit.
            assert_eq!(c.access(15), Lookup::Hit, "{}", kind.label());
        }
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        lru(0);
    }

    #[test]
    fn set_policy_preserves_residency_and_value_order() {
        let mut c = lru(3);
        c.insert(1);
        c.insert(2);
        c.insert(3);
        c.access(1); // LRU value order, least first: 2, 3, 1
        c.set_policy(PolicyKind::Fifo);
        assert_eq!(c.policy_name(), "fifo");
        assert_eq!(c.len(), 3);
        for k in [1, 2, 3] {
            assert!(c.contains(&k), "resident key {k} lost across policy swap");
        }
        // The replay preserved relative value: FIFO now evicts 2 first.
        assert_eq!(c.insert(4), vec![2]);
    }

    #[test]
    fn set_policy_roundtrips_across_the_zoo() {
        let kinds = [
            PolicyKind::Fifo,
            PolicyKind::Lru,
            PolicyKind::Clock,
            PolicyKind::Lfu,
            PolicyKind::Arc,
            PolicyKind::TwoQ,
            PolicyKind::Mru,
            PolicyKind::Lirs,
            PolicyKind::Slru,
        ];
        let mut c: CacheLevel<u32> = CacheLevel::new(PolicyKind::Lru, 4);
        for k in 0..4 {
            c.insert(k);
        }
        for kind in kinds {
            c.set_policy(kind);
            assert_eq!(c.len(), 4, "{} dropped entries", kind.label());
            for k in 0..4 {
                assert!(c.contains(&k), "{} lost key {k}", kind.label());
            }
        }
    }
}
