//! 2Q replacement (Johnson & Shasha, VLDB '94): a scan-resistant LRU
//! variant predating ARC. New keys enter a small FIFO probation queue
//! (`A1in`); keys re-referenced after leaving probation are promoted to the
//! protected LRU main queue (`Am`). A ghost queue (`A1out`) remembers
//! recently demoted keys to detect the re-reference.
//!
//! Not evaluated in the paper; another adaptive baseline for the ablation
//! benches alongside ARC.

use crate::policy::ReplacementPolicy;
use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::Hash;

/// Which resident queue a key lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Residence {
    A1in,
    Am,
}

/// 2Q policy sized for a cache of `capacity` entries.
#[derive(Debug)]
pub struct TwoQPolicy<K> {
    /// Probationary FIFO (most recent at the back).
    a1in: VecDeque<K>,
    /// Protected LRU (most recent at the back).
    am: VecDeque<K>,
    /// Ghosts of keys demoted from A1in (bounded FIFO).
    a1out: VecDeque<K>,
    a1out_set: HashSet<K>,
    /// Residence of every live key.
    index: HashMap<K, Residence>,
    /// Target size of A1in (`Kin`, classically capacity/4).
    kin: usize,
    /// Bound on the ghost queue (`Kout`, classically capacity/2).
    kout: usize,
}

impl<K: Copy + Eq + Hash> TwoQPolicy<K> {
    /// Create with the classic parameterization: `Kin = capacity/4`,
    /// `Kout = capacity/2`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "2Q needs a positive capacity");
        TwoQPolicy {
            a1in: VecDeque::new(),
            am: VecDeque::new(),
            a1out: VecDeque::new(),
            a1out_set: HashSet::new(),
            index: HashMap::new(),
            kin: (capacity / 4).max(1),
            kout: (capacity / 2).max(1),
        }
    }

    fn ghost_push(&mut self, key: K) {
        self.a1out.push_back(key);
        self.a1out_set.insert(key);
        while self.a1out.len() > self.kout {
            if let Some(old) = self.a1out.pop_front() {
                self.a1out_set.remove(&old);
            }
        }
    }

    fn remove_from_queue(queue: &mut VecDeque<K>, key: &K) {
        if let Some(pos) = queue.iter().position(|k| k == key) {
            queue.remove(pos);
        }
    }

    /// Number of probationary entries (diagnostics).
    pub fn a1in_len(&self) -> usize {
        self.a1in.len()
    }

    /// Number of protected entries (diagnostics).
    pub fn am_len(&self) -> usize {
        self.am.len()
    }
}

impl<K: Copy + Eq + Hash + Send> ReplacementPolicy<K> for TwoQPolicy<K> {
    fn on_insert(&mut self, key: K) {
        debug_assert!(!self.index.contains_key(&key), "duplicate insert");
        if self.a1out_set.contains(&key) {
            // Re-reference of a recently demoted key: hot, goes protected.
            self.a1out_set.remove(&key);
            Self::remove_from_queue(&mut self.a1out, &key);
            self.am.push_back(key);
            self.index.insert(key, Residence::Am);
        } else {
            self.a1in.push_back(key);
            self.index.insert(key, Residence::A1in);
        }
    }

    fn on_hit(&mut self, key: K) {
        match self.index.get(&key) {
            Some(Residence::Am) => {
                // LRU refresh within the protected queue.
                Self::remove_from_queue(&mut self.am, &key);
                self.am.push_back(key);
            }
            // 2Q deliberately does NOT promote on A1in hits (correlated
            // references stay probationary).
            Some(Residence::A1in) | None => {}
        }
    }

    fn choose_victim(&mut self, is_evictable: &mut dyn FnMut(&K) -> bool) -> Option<K> {
        // Prefer demoting from A1in when it exceeds its target; otherwise
        // evict the protected LRU.
        let prefer_a1 = self.a1in.len() > self.kin || self.am.is_empty();
        let take = |queue: &mut VecDeque<K>,
                    index: &mut HashMap<K, Residence>,
                    f: &mut dyn FnMut(&K) -> bool|
         -> Option<K> {
            let pos = queue.iter().position(&mut *f)?;
            let key = queue.remove(pos).unwrap();
            index.remove(&key);
            Some(key)
        };
        if prefer_a1 {
            take(&mut self.a1in, &mut self.index, is_evictable)
                .inspect(|&v| self.ghost_push(v))
                .or_else(|| take(&mut self.am, &mut self.index, is_evictable))
        } else {
            take(&mut self.am, &mut self.index, is_evictable).or_else(|| {
                take(&mut self.a1in, &mut self.index, is_evictable).inspect(|&v| self.ghost_push(v))
            })
        }
    }

    fn on_remove(&mut self, key: &K) {
        match self.index.remove(key) {
            Some(Residence::A1in) => Self::remove_from_queue(&mut self.a1in, key),
            Some(Residence::Am) => Self::remove_from_queue(&mut self.am, key),
            None => {}
        }
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn contains(&self, key: &K) -> bool {
        self.index.contains_key(key)
    }

    fn name(&self) -> &'static str {
        "2q"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::conformance;

    #[test]
    fn conformance_lifecycle() {
        conformance::basic_lifecycle(Box::new(TwoQPolicy::new(16)));
    }

    #[test]
    fn conformance_pinning() {
        conformance::respects_pinning(Box::new(TwoQPolicy::new(16)));
    }

    #[test]
    fn conformance_removal() {
        conformance::external_removal(Box::new(TwoQPolicy::new(16)));
    }

    #[test]
    fn new_keys_start_probationary() {
        let mut p = TwoQPolicy::new(8);
        p.on_insert(1u32);
        assert_eq!(p.a1in_len(), 1);
        assert_eq!(p.am_len(), 0);
    }

    #[test]
    fn ghost_reinsert_promotes_to_protected() {
        let mut p = TwoQPolicy::new(8);
        p.on_insert(1u32);
        // Demote 1 into the ghost queue.
        let v = p.choose_victim(&mut |_| true).unwrap();
        assert_eq!(v, 1);
        // Re-insert: should land protected.
        p.on_insert(1);
        assert_eq!(p.am_len(), 1);
        assert_eq!(p.a1in_len(), 0);
    }

    #[test]
    fn a1in_hits_do_not_promote() {
        let mut p = TwoQPolicy::new(8);
        p.on_insert(1u32);
        p.on_hit(1);
        p.on_hit(1);
        assert_eq!(p.a1in_len(), 1, "correlated refs stay probationary");
    }

    /// Promote `k` into the protected queue: insert, demote it (pinning
    /// everything else), then re-insert so the ghost hit lands in Am.
    fn promote(p: &mut TwoQPolicy<u32>, k: u32) {
        p.on_insert(k);
        let v = p.choose_victim(&mut |x| *x == k).unwrap();
        assert_eq!(v, k);
        p.on_insert(k);
    }

    #[test]
    fn scan_does_not_flush_protected_queue() {
        let mut p = TwoQPolicy::new(8);
        // Build a protected working set {1, 2}.
        for k in [1u32, 2] {
            promote(&mut p, k);
        }
        assert_eq!(p.am_len(), 2);
        // One-shot scan through many cold keys.
        for k in 100..200u32 {
            p.on_insert(k);
            if p.len() > 8 {
                p.choose_victim(&mut |_| true);
            }
        }
        assert!(p.contains(&1) && p.contains(&2), "scan evicted the hot set");
    }

    #[test]
    fn ghost_queue_is_bounded() {
        let mut p = TwoQPolicy::new(8); // kout = 4
        for k in 0..100u32 {
            p.on_insert(k);
            p.choose_victim(&mut |_| true);
        }
        assert!(p.a1out.len() <= 4);
        assert_eq!(p.a1out.len(), p.a1out_set.len());
    }

    #[test]
    fn protected_eviction_is_lru() {
        let mut p = TwoQPolicy::new(4); // kin = 1
                                        // Promote 1 and 2 into Am.
        for k in [1u32, 2] {
            promote(&mut p, k);
        }
        p.on_hit(1); // 2 becomes protected-LRU
                     // Fill A1in to its target so eviction turns to Am.
        p.on_insert(50);
        let v = p.choose_victim(&mut |_| true).unwrap();
        assert_eq!(v, 2, "protected LRU should go first, got {v}");
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        TwoQPolicy::<u32>::new(0);
    }
}
