//! LIRS replacement (Jiang & Zhang, SIGMETRICS '02): Low Inter-reference
//! Recency Set. Distinguishes blocks by their *inter-reference recency*
//! (IRR — distinct blocks seen between consecutive accesses): low-IRR
//! blocks ("LIR") keep the bulk of the cache, high-IRR blocks ("HIR") pass
//! through a small probationary partition. Outperforms LRU on loops and
//! scans while matching it on recency-friendly workloads.
//!
//! Implementation follows the paper's two-structure design:
//!
//! - stack **S**: recency stack of LIR blocks + recently seen HIR blocks
//!   (resident or ghost), pruned so its bottom is always LIR;
//! - queue **Q**: FIFO of resident HIR blocks (the eviction source).

use crate::policy::ReplacementPolicy;
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Low inter-reference recency: protected resident block.
    Lir,
    /// High IRR, resident (in Q).
    HirResident,
    /// High IRR, non-resident ghost (metadata only, in S).
    HirGhost,
}

/// LIRS policy sized for `capacity` resident entries.
#[derive(Debug)]
pub struct LirsPolicy<K> {
    /// Recency stack, most recent at the back. May contain ghosts.
    stack: VecDeque<K>,
    /// Resident HIR queue, eviction candidates at the front.
    queue: VecDeque<K>,
    /// State of every known key (resident or ghost).
    state: HashMap<K, State>,
    /// Target number of LIR blocks (`capacity - hir_target`).
    lir_target: usize,
    /// Cap on ghost metadata.
    ghost_cap: usize,
    /// Current LIR count.
    lir_count: usize,
}

impl<K: Copy + Eq + Hash> LirsPolicy<K> {
    /// Create with the classic split: 99% LIR / 1% HIR, at least one HIR
    /// slot; ghost metadata capped at `capacity`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LIRS needs a positive capacity");
        let hir_target = (capacity / 100).max(1).min(capacity);
        LirsPolicy {
            stack: VecDeque::new(),
            queue: VecDeque::new(),
            state: HashMap::new(),
            lir_target: capacity - hir_target,
            ghost_cap: capacity,
            lir_count: 0,
        }
    }

    fn stack_remove(&mut self, key: &K) {
        if let Some(pos) = self.stack.iter().rposition(|k| k == key) {
            self.stack.remove(pos);
        }
    }

    fn queue_remove(&mut self, key: &K) {
        if let Some(pos) = self.queue.iter().position(|k| k == key) {
            self.queue.remove(pos);
        }
    }

    /// Prune stack bottom until it is a LIR block (paper's stack pruning).
    fn prune(&mut self) {
        while let Some(bottom) = self.stack.front() {
            match self.state.get(bottom) {
                Some(State::Lir) => break,
                Some(State::HirResident) => {
                    let k = *bottom;
                    self.stack.pop_front();
                    // Stays resident in Q; loses stack presence.
                    let _ = k;
                }
                Some(State::HirGhost) => {
                    let k = *bottom;
                    self.stack.pop_front();
                    self.state.remove(&k);
                }
                None => {
                    self.stack.pop_front();
                }
            }
        }
    }

    /// Demote the LIR block at the stack bottom to resident-HIR.
    fn demote_bottom_lir(&mut self) {
        self.prune();
        if let Some(&bottom) = self.stack.front() {
            if self.state.get(&bottom) == Some(&State::Lir) {
                self.stack.pop_front();
                self.state.insert(bottom, State::HirResident);
                self.queue.push_back(bottom);
                self.lir_count -= 1;
                self.prune();
            }
        }
    }

    /// Bound ghost metadata by dropping the oldest ghosts from the stack.
    fn trim_ghosts(&mut self) {
        let mut ghosts = self.state.values().filter(|s| **s == State::HirGhost).count();
        if ghosts <= self.ghost_cap {
            return;
        }
        let mut i = 0;
        while ghosts > self.ghost_cap && i < self.stack.len() {
            let k = self.stack[i];
            if self.state.get(&k) == Some(&State::HirGhost) {
                self.stack.remove(i);
                self.state.remove(&k);
                ghosts -= 1;
            } else {
                i += 1;
            }
        }
        self.prune();
    }

    /// Resident count (diagnostic).
    pub fn lir_len(&self) -> usize {
        self.lir_count
    }

    /// Resident HIR count (diagnostic).
    pub fn hir_len(&self) -> usize {
        self.queue.len()
    }
}

impl<K: Copy + Eq + Hash + Send> ReplacementPolicy<K> for LirsPolicy<K> {
    fn on_insert(&mut self, key: K) {
        debug_assert!(
            !matches!(self.state.get(&key), Some(State::Lir | State::HirResident)),
            "duplicate insert"
        );
        let was_ghost = self.state.get(&key) == Some(&State::HirGhost);
        if was_ghost {
            // Ghost hit: IRR is low — promote to LIR, demote a bottom LIR.
            self.stack_remove(&key);
            self.state.insert(key, State::Lir);
            self.stack.push_back(key);
            self.lir_count += 1;
            if self.lir_count > self.lir_target {
                self.demote_bottom_lir();
            }
        } else if self.lir_count < self.lir_target {
            // Warm-up: fill the LIR partition first.
            self.state.insert(key, State::Lir);
            self.stack.push_back(key);
            self.lir_count += 1;
        } else {
            self.state.insert(key, State::HirResident);
            self.stack.push_back(key);
            self.queue.push_back(key);
        }
        self.trim_ghosts();
    }

    fn on_hit(&mut self, key: K) {
        match self.state.get(&key).copied() {
            Some(State::Lir) => {
                let was_bottom = self.stack.front() == Some(&key);
                self.stack_remove(&key);
                self.stack.push_back(key);
                if was_bottom {
                    self.prune();
                }
            }
            Some(State::HirResident) => {
                let in_stack = self.stack.iter().any(|k| *k == key);
                self.stack_remove(&key);
                self.stack.push_back(key);
                if in_stack {
                    // IRR low: promote to LIR.
                    self.queue_remove(&key);
                    self.state.insert(key, State::Lir);
                    self.lir_count += 1;
                    if self.lir_count > self.lir_target {
                        self.demote_bottom_lir();
                    }
                } else {
                    // Not in stack: stays HIR, refresh queue position.
                    self.queue_remove(&key);
                    self.queue.push_back(key);
                }
            }
            _ => {}
        }
    }

    fn choose_victim(&mut self, is_evictable: &mut dyn FnMut(&K) -> bool) -> Option<K> {
        // Evict from the HIR queue front; leave a ghost in the stack if the
        // block is still on it.
        if let Some(pos) = self.queue.iter().position(&mut *is_evictable) {
            let key = self.queue.remove(pos).unwrap();
            if self.stack.iter().any(|k| *k == key) {
                self.state.insert(key, State::HirGhost);
            } else {
                self.state.remove(&key);
            }
            self.trim_ghosts();
            return Some(key);
        }
        // Queue exhausted (or all pinned): demote+evict from LIR bottom up.
        let candidates: Vec<K> =
            self.stack.iter().filter(|k| self.state.get(k) == Some(&State::Lir)).copied().collect();
        for key in candidates {
            if is_evictable(&key) {
                self.stack_remove(&key);
                self.state.remove(&key);
                self.lir_count -= 1;
                self.prune();
                return Some(key);
            }
        }
        None
    }

    fn on_remove(&mut self, key: &K) {
        match self.state.get(key).copied() {
            Some(State::Lir) => {
                self.stack_remove(key);
                self.state.remove(key);
                self.lir_count -= 1;
                self.prune();
            }
            Some(State::HirResident) => {
                self.stack_remove(key);
                self.queue_remove(key);
                self.state.remove(key);
            }
            _ => {}
        }
    }

    fn len(&self) -> usize {
        self.lir_count + self.queue.len()
    }

    fn contains(&self, key: &K) -> bool {
        matches!(self.state.get(key), Some(State::Lir | State::HirResident))
    }

    fn name(&self) -> &'static str {
        "lirs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{CacheLevel, Lookup};
    use crate::policy::conformance;

    #[test]
    fn conformance_lifecycle() {
        conformance::basic_lifecycle(Box::new(LirsPolicy::new(16)));
    }

    #[test]
    fn conformance_pinning() {
        conformance::respects_pinning(Box::new(LirsPolicy::new(16)));
    }

    #[test]
    fn conformance_removal() {
        conformance::external_removal(Box::new(LirsPolicy::new(16)));
    }

    #[test]
    fn warmup_fills_lir_partition_first() {
        let mut p = LirsPolicy::new(100); // lir_target = 99
        for k in 0..50u32 {
            p.on_insert(k);
        }
        assert_eq!(p.lir_len(), 50);
        assert_eq!(p.hir_len(), 0);
    }

    #[test]
    fn overflow_goes_to_hir_queue() {
        let mut p = LirsPolicy::new(100);
        for k in 0..100u32 {
            p.on_insert(k);
        }
        assert_eq!(p.lir_len(), 99);
        assert_eq!(p.hir_len(), 1);
    }

    #[test]
    fn victims_come_from_hir_first() {
        let mut p = LirsPolicy::new(100);
        for k in 0..100u32 {
            p.on_insert(k);
        }
        let v = p.choose_victim(&mut |_| true).unwrap();
        assert_eq!(v, 99, "the HIR newcomer goes first, not the LIR set");
        assert!(p.contains(&0), "old LIR block survives");
    }

    #[test]
    fn ghost_reinsert_promotes_to_lir() {
        let mut p = LirsPolicy::new(100);
        for k in 0..100u32 {
            p.on_insert(k);
        }
        let v = p.choose_victim(&mut |_| true).unwrap(); // 99 → ghost
        assert!(!p.contains(&v));
        let lir_before = p.lir_len();
        p.on_insert(v); // ghost hit
        assert!(p.contains(&v));
        // v is LIR now; a bottom LIR was demoted to keep the target.
        assert_eq!(p.lir_len(), lir_before.min(99));
    }

    #[test]
    fn loop_workload_beats_lru() {
        // Cyclic scan over capacity+1 distinct keys: LRU thrashes to 100%
        // miss; LIRS keeps its LIR set resident and hits on it.
        let cap = 64;
        let keys: Vec<u32> = (0..(cap as u32 + 8)).collect();
        let run = |policy: Box<dyn ReplacementPolicy<u32>>| -> usize {
            let mut c = CacheLevel::with_policy(policy, cap);
            let mut misses = 0;
            for _ in 0..15 {
                for &k in &keys {
                    if c.access(k) == Lookup::Miss {
                        misses += 1;
                        c.insert(k);
                    }
                }
            }
            misses
        };
        let lru = run(Box::new(crate::lru::LruPolicy::new()));
        let lirs = run(Box::new(LirsPolicy::new(cap)));
        assert_eq!(lru, 15 * keys.len(), "LRU must thrash on the loop");
        assert!(lirs < lru / 2, "LIRS should retain its LIR set: {lirs} vs {lru}");
    }

    #[test]
    fn ghost_metadata_is_bounded() {
        let mut p = LirsPolicy::new(32);
        for k in 0..10_000u32 {
            p.on_insert(k);
            if p.len() > 32 {
                p.choose_victim(&mut |_| true);
            }
        }
        let ghosts = p.state.values().filter(|s| **s == State::HirGhost).count();
        assert!(ghosts <= 32, "ghosts unbounded: {ghosts}");
        assert!(p.stack.len() <= 3 * 32, "stack unbounded: {}", p.stack.len());
    }

    #[test]
    fn len_matches_resident_states() {
        let mut p = LirsPolicy::new(16);
        for k in 0..40u32 {
            p.on_insert(k);
            while p.len() > 16 {
                p.choose_victim(&mut |_| true);
            }
            p.on_hit(k / 2);
        }
        let resident =
            p.state.values().filter(|s| matches!(s, State::Lir | State::HirResident)).count();
        assert_eq!(p.len(), resident);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        LirsPolicy::<u32>::new(0);
    }
}
