//! Adaptive Replacement Cache (Megiddo & Modha, FAST '03), which the paper
//! cites in its related work (§II). Provided as an additional baseline:
//! ARC adapts between recency (T1) and frequency (T2) using ghost lists
//! (B1/B2) of recently evicted keys.
//!
//! This follows the published algorithm with one simplification: the
//! REPLACE step decides between T1 and T2 purely from `|T1| > p` (the
//! original also special-cases `x ∈ B2 ∧ |T1| = p`, which requires knowing
//! the key being inserted at eviction time — unavailable through the
//! generic policy interface; the effect on hit rate is marginal).

use crate::policy::ReplacementPolicy;
use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// Simple ordered list (LRU at the front) with O(log n) operations.
#[derive(Debug)]
struct OrderedList<K> {
    by_seq: BTreeMap<u64, K>,
    seq_of: HashMap<K, u64>,
    next: u64,
}

impl<K: Copy + Eq + Hash> OrderedList<K> {
    fn new() -> Self {
        OrderedList { by_seq: BTreeMap::new(), seq_of: HashMap::new(), next: 0 }
    }

    fn len(&self) -> usize {
        self.seq_of.len()
    }

    fn contains(&self, k: &K) -> bool {
        self.seq_of.contains_key(k)
    }

    fn push_mru(&mut self, k: K) {
        let s = self.next;
        self.next += 1;
        if let Some(old) = self.seq_of.insert(k, s) {
            self.by_seq.remove(&old);
        }
        self.by_seq.insert(s, k);
    }

    fn remove(&mut self, k: &K) -> bool {
        if let Some(s) = self.seq_of.remove(k) {
            self.by_seq.remove(&s);
            true
        } else {
            false
        }
    }

    fn pop_lru(&mut self) -> Option<K> {
        let (&s, &k) = self.by_seq.iter().next()?;
        self.by_seq.remove(&s);
        self.seq_of.remove(&k);
        Some(k)
    }

    /// First key from the LRU end for which `f` is true; removes it.
    fn pop_lru_where(&mut self, f: &mut dyn FnMut(&K) -> bool) -> Option<K> {
        let found = self.by_seq.iter().find(|(_, k)| f(k)).map(|(&s, &k)| (s, k))?;
        self.by_seq.remove(&found.0);
        self.seq_of.remove(&found.1);
        Some(found.1)
    }
}

/// ARC policy over a cache of `capacity` entries.
#[derive(Debug)]
pub struct ArcPolicy<K> {
    t1: OrderedList<K>,
    t2: OrderedList<K>,
    b1: OrderedList<K>,
    b2: OrderedList<K>,
    /// Adaptive target size of T1, `0 <= p <= capacity`.
    p: usize,
    capacity: usize,
}

impl<K: Copy + Eq + Hash> ArcPolicy<K> {
    /// Create an ARC policy sized for a cache of `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ARC needs a positive capacity");
        ArcPolicy {
            t1: OrderedList::new(),
            t2: OrderedList::new(),
            b1: OrderedList::new(),
            b2: OrderedList::new(),
            p: 0,
            capacity,
        }
    }

    /// Current adaptation target (diagnostic).
    pub fn target_p(&self) -> usize {
        self.p
    }

    fn trim_ghosts(&mut self) {
        // Invariants: |T1| + |B1| <= c, |T1|+|T2|+|B1|+|B2| <= 2c.
        while self.t1.len() + self.b1.len() > self.capacity {
            if self.b1.pop_lru().is_none() {
                break;
            }
        }
        while self.t1.len() + self.t2.len() + self.b1.len() + self.b2.len() > 2 * self.capacity {
            if self.b2.pop_lru().is_none() && self.b1.pop_lru().is_none() {
                break;
            }
        }
    }
}

impl<K: Copy + Eq + Hash + Send> ReplacementPolicy<K> for ArcPolicy<K> {
    fn on_insert(&mut self, key: K) {
        debug_assert!(!self.t1.contains(&key) && !self.t2.contains(&key), "duplicate insert");
        if self.b1.contains(&key) {
            // Ghost hit in B1: favour recency.
            let delta = (self.b2.len() / self.b1.len().max(1)).max(1);
            self.p = (self.p + delta).min(self.capacity);
            self.b1.remove(&key);
            self.t2.push_mru(key);
        } else if self.b2.contains(&key) {
            // Ghost hit in B2: favour frequency.
            let delta = (self.b1.len() / self.b2.len().max(1)).max(1);
            self.p = self.p.saturating_sub(delta);
            self.b2.remove(&key);
            self.t2.push_mru(key);
        } else {
            self.t1.push_mru(key);
        }
        self.trim_ghosts();
    }

    fn on_hit(&mut self, key: K) {
        // T1 or T2 hit promotes to T2 MRU.
        if self.t1.remove(&key) || self.t2.remove(&key) {
            self.t2.push_mru(key);
        }
    }

    fn choose_victim(&mut self, is_evictable: &mut dyn FnMut(&K) -> bool) -> Option<K> {
        let prefer_t1 = self.t1.len() > 0 && self.t1.len() > self.p;
        let from_t1 = |this: &mut Self, f: &mut dyn FnMut(&K) -> bool| {
            let v = this.t1.pop_lru_where(f)?;
            this.b1.push_mru(v);
            Some(v)
        };
        let from_t2 = |this: &mut Self, f: &mut dyn FnMut(&K) -> bool| {
            let v = this.t2.pop_lru_where(f)?;
            this.b2.push_mru(v);
            Some(v)
        };
        let v = if prefer_t1 {
            from_t1(self, is_evictable).or_else(|| from_t2(self, is_evictable))
        } else {
            from_t2(self, is_evictable).or_else(|| from_t1(self, is_evictable))
        };
        self.trim_ghosts();
        v
    }

    fn on_remove(&mut self, key: &K) {
        let _ = self.t1.remove(key) || self.t2.remove(key);
    }

    fn len(&self) -> usize {
        self.t1.len() + self.t2.len()
    }

    fn contains(&self, key: &K) -> bool {
        self.t1.contains(key) || self.t2.contains(key)
    }

    fn name(&self) -> &'static str {
        "arc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::conformance;

    #[test]
    fn conformance_lifecycle() {
        conformance::basic_lifecycle(Box::new(ArcPolicy::new(16)));
    }

    #[test]
    fn conformance_pinning() {
        conformance::respects_pinning(Box::new(ArcPolicy::new(16)));
    }

    #[test]
    fn conformance_removal() {
        conformance::external_removal(Box::new(ArcPolicy::new(16)));
    }

    #[test]
    fn hit_promotes_to_frequent_list() {
        let mut p = ArcPolicy::new(4);
        p.on_insert(1u32);
        p.on_insert(2);
        assert_eq!(p.t1.len(), 2);
        p.on_hit(1);
        assert_eq!(p.t1.len(), 1);
        assert_eq!(p.t2.len(), 1);
        assert!(p.t2.contains(&1));
    }

    #[test]
    fn ghost_hit_in_b1_grows_p() {
        let mut p = ArcPolicy::new(2);
        p.on_insert(1u32);
        p.on_insert(2);
        // Evict 1 (T1 LRU) → goes to B1.
        let v = p.choose_victim(&mut |_| true).unwrap();
        assert!(p.b1.contains(&v));
        let p_before = p.target_p();
        // Re-insert the ghost: adaptation towards recency.
        p.on_insert(v);
        assert!(p.target_p() > p_before);
        assert!(p.t2.contains(&v), "ghost reinsert lands in T2");
    }

    #[test]
    fn ghost_hit_in_b2_shrinks_p() {
        let mut p = ArcPolicy::new(2);
        p.on_insert(1u32);
        p.on_hit(1); // into T2
        p.on_insert(2);
        p.on_insert(3);
        // Force eviction from T2 (p = 0 means prefer T2 unless |T1| > 0... )
        // Fill more to push 1 out of T2.
        let mut evicted = Vec::new();
        while let Some(v) = p.choose_victim(&mut |_| true) {
            evicted.push(v);
        }
        if p.b2.contains(&1) {
            p.p = 2;
            let before = p.target_p();
            p.on_insert(1);
            assert!(p.target_p() < before);
        }
    }

    #[test]
    fn ghost_lists_stay_bounded() {
        let mut p = ArcPolicy::new(8);
        // Scan workload: touch many distinct keys once.
        for k in 0..1000u32 {
            p.on_insert(k);
            if p.len() > 8 {
                p.choose_victim(&mut |_| true);
            }
        }
        assert!(p.b1.len() + p.b2.len() <= 16, "ghosts unbounded");
        assert!(p.len() <= 9);
    }

    #[test]
    fn arc_resists_scan_pollution_better_than_pure_recency() {
        // A hot working set accessed repeatedly survives a one-shot scan.
        let cap = 8;
        let mut p = ArcPolicy::new(cap);
        for k in 0..4u32 {
            p.on_insert(k);
        }
        // Heat them up.
        for _ in 0..3 {
            for k in 0..4u32 {
                p.on_hit(k);
            }
        }
        // Scan 100 cold keys through the remaining space.
        for k in 100..200u32 {
            if p.len() >= cap {
                p.choose_victim(&mut |_| true);
            }
            p.on_insert(k);
        }
        let hot_survivors = (0..4u32).filter(|k| p.contains(k)).count();
        assert!(hot_survivors >= 2, "scan evicted the hot set ({hot_survivors}/4 left)");
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        ArcPolicy::<u32>::new(0);
    }
}
