//! The multi-level memory-hierarchy simulator.
//!
//! Mirrors the paper's experimental setup (§V-A): a dataset resident on the
//! slowest store (HDD) is cached through successively faster, smaller tiers
//! (SSD, then DRAM), with "the ratio of cache size ... 0.5 between two
//! successive memory levels". The hierarchy is *inclusive*: fetching a block
//! into DRAM also installs it in every intermediate tier, and an eviction
//! from a fast tier simply drops the copy (slower tiers still hold it until
//! they evict independently).

use crate::cache::{CacheLevel, Lookup};
use crate::cost::TierCost;
use crate::policy::PolicyKind;
use crate::stats::{AccessClass, HierarchyStats};
use serde::{Deserialize, Serialize};
use std::hash::{Hash, Hasher};
use viz_telemetry::EventKind as Ev;

/// Telemetry subject key for an arbitrary cache key (hashed — telemetry
/// events carry `u64`s, not generic keys).
fn tel_key<K: Hash>(k: &K) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    k.hash(&mut h);
    h.finish()
}

/// Configuration of one cache tier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TierSpec {
    /// Display name ("DRAM", "SSD", ...).
    pub name: String,
    /// Capacity in blocks.
    pub capacity: usize,
    /// Read cost of this tier.
    pub cost: TierCost,
    /// Replacement policy governing this tier.
    pub policy: PolicyKind,
}

impl TierSpec {
    /// Create a tier spec.
    pub fn new(name: &str, capacity: usize, cost: TierCost, policy: PolicyKind) -> Self {
        TierSpec { name: name.to_string(), capacity, cost, policy }
    }
}

/// Where a fetch was satisfied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FetchOutcome {
    /// 0-based tier index; `num_tiers()` means the backing store.
    pub level: usize,
    /// Simulated seconds the fetch took.
    pub time_s: f64,
    /// Whether the fastest tier already held the block.
    pub fast_hit: bool,
}

struct Tier<K: Copy + Eq + Hash> {
    spec: TierSpec,
    cache: CacheLevel<K>,
}

/// The paper's three-level setup: tiers fastest-first, plus an infinite
/// backing store that holds the whole dataset.
pub struct Hierarchy<K: Copy + Eq + Hash> {
    tiers: Vec<Tier<K>>,
    backing: TierCost,
    backing_name: String,
    block_bytes: usize,
    stats: HierarchyStats,
}

impl<K: Copy + Eq + Hash + Ord + Send + 'static> Hierarchy<K> {
    /// Build from tier specs (fastest first) over a backing store.
    /// `block_bytes` is the uniform block payload size used by the cost
    /// model.
    pub fn new(tiers: Vec<TierSpec>, backing: TierCost, block_bytes: usize) -> Self {
        assert!(!tiers.is_empty(), "need at least one cache tier");
        assert!(block_bytes > 0, "block size must be positive");
        for w in tiers.windows(2) {
            assert!(
                w[0].capacity <= w[1].capacity,
                "inclusive hierarchy needs non-decreasing capacities ({} > {})",
                w[0].name,
                w[1].name
            );
        }
        let n = tiers.len();
        Hierarchy {
            tiers: tiers
                .into_iter()
                .map(|spec| Tier { cache: CacheLevel::new(spec.policy, spec.capacity), spec })
                .collect(),
            backing,
            backing_name: "backing".to_string(),
            block_bytes,
            stats: HierarchyStats::new(n),
        }
    }

    /// The paper's standard configuration: DRAM and SSD tiers over an HDD,
    /// with DRAM = `ratio²`·blocks and SSD = `ratio`·blocks (ratio 0.5 ⇒
    /// 25% / 50% of the dataset, exactly §V-A).
    pub fn paper_default(
        num_blocks: usize,
        ratio: f64,
        policy: PolicyKind,
        block_bytes: usize,
    ) -> Self {
        assert!((0.0..=1.0).contains(&ratio), "cache ratio must be in (0, 1]");
        let ssd_cap = ((num_blocks as f64 * ratio).round() as usize).max(1);
        let dram_cap = ((num_blocks as f64 * ratio * ratio).round() as usize).max(1);
        Hierarchy::new(
            vec![
                TierSpec::new("DRAM", dram_cap, TierCost::dram(), policy),
                TierSpec::new("SSD", ssd_cap, TierCost::ssd(), policy),
            ],
            TierCost::hdd(),
            block_bytes,
        )
    }

    /// The paper's two-cache-tier shape with custom device costs
    /// `[fastest, middle, backing]` — e.g. GPU-memory/DRAM/NVMe for a VR
    /// rig instead of DRAM/SSD/HDD.
    pub fn two_level(
        num_blocks: usize,
        ratio: f64,
        policy: PolicyKind,
        block_bytes: usize,
        costs: [TierCost; 3],
    ) -> Self {
        assert!((0.0..=1.0).contains(&ratio), "cache ratio must be in (0, 1]");
        let mid_cap = ((num_blocks as f64 * ratio).round() as usize).max(1);
        let fast_cap = ((num_blocks as f64 * ratio * ratio).round() as usize).max(1);
        Hierarchy::new(
            vec![
                TierSpec::new("fast", fast_cap, costs[0], policy),
                TierSpec::new("mid", mid_cap, costs[1], policy),
            ],
            costs[2],
            block_bytes,
        )
    }

    /// Swap tier `i`'s replacement policy in place, keeping its resident
    /// blocks (see [`CacheLevel::set_policy`]) — the control plane's
    /// actuator for live policy selection.
    pub fn set_tier_policy(&mut self, i: usize, kind: PolicyKind) {
        let tier = &mut self.tiers[i];
        tier.cache.set_policy(kind);
        tier.spec.policy = kind;
    }
}

impl<K: Copy + Eq + Hash> Hierarchy<K> {
    /// Number of cache tiers (excluding the backing store).
    pub fn num_tiers(&self) -> usize {
        self.tiers.len()
    }

    /// Capacity of tier `i` in blocks.
    pub fn tier_capacity(&self, i: usize) -> usize {
        self.tiers[i].spec.capacity
    }

    /// Policy currently governing tier `i`.
    pub fn tier_policy(&self, i: usize) -> PolicyKind {
        self.tiers[i].spec.policy
    }

    /// Name of tier `i`.
    pub fn tier_name(&self, i: usize) -> &str {
        if i < self.tiers.len() {
            &self.tiers[i].spec.name
        } else {
            &self.backing_name
        }
    }

    /// `true` when the fastest tier currently holds `key`.
    pub fn in_fastest(&self, key: &K) -> bool {
        self.tiers[0].cache.contains(key)
    }

    /// Number of blocks resident in the fastest tier.
    pub fn fastest_len(&self) -> usize {
        self.tiers[0].cache.len()
    }

    /// Fetch a block to the fastest tier, simulating the data movement.
    ///
    /// Searches tiers fastest-to-slowest; on a hit at level `i`, the block
    /// is promoted into every faster tier. A complete miss reads from the
    /// backing store and installs the block in every tier. The simulated
    /// time is the read cost *of the level that supplied the data* (faster
    /// levels' copy costs are subsumed — the stream is pipelined).
    pub fn fetch(&mut self, key: K, class: AccessClass) -> FetchOutcome {
        let n = self.tiers.len();
        match class {
            AccessClass::Demand => self.stats.demand_accesses += 1,
            AccessClass::Prefetch => self.stats.prefetch_accesses += 1,
        }

        // Find the fastest level holding the key.
        let mut found: Option<usize> = None;
        for (i, tier) in self.tiers.iter_mut().enumerate() {
            if tier.cache.access(key) == Lookup::Hit {
                found = Some(i);
                break;
            }
        }
        let level = found.unwrap_or(n);
        let fast_hit = level == 0;
        if viz_telemetry::enabled() {
            if level < n {
                viz_telemetry::instant(Ev::CacheHit, tel_key(&key), level as u64);
            } else {
                viz_telemetry::instant(
                    Ev::CacheMiss,
                    tel_key(&key),
                    u64::from(class == AccessClass::Prefetch),
                );
            }
        }
        if !fast_hit {
            match class {
                AccessClass::Demand => self.stats.demand_fast_misses += 1,
                AccessClass::Prefetch => self.stats.prefetch_fast_misses += 1,
            }
        }

        // Cost: read from the supplying level.
        let cost = if level < n {
            self.tiers[level].spec.cost.read_time(self.block_bytes)
        } else {
            self.backing.read_time(self.block_bytes)
        };
        {
            let l = &mut self.stats.levels[level];
            l.bytes_read += self.block_bytes as u64;
            match class {
                AccessClass::Demand => {
                    l.demand_hits += u64::from(level < n);
                    l.demand_read_s += cost;
                }
                AccessClass::Prefetch => {
                    l.prefetch_hits += u64::from(level < n);
                    l.prefetch_read_s += cost;
                }
            }
        }

        // Promote into all faster tiers (inclusive).
        for i in (0..level.min(n)).rev() {
            let evicted = self.tiers[i].cache.insert(key);
            if i == 0 {
                self.stats.fast_evictions += evicted.len() as u64;
            }
            if viz_telemetry::enabled() {
                let arg = ((i as u64) << 8) | u64::from(self.tiers[i].spec.policy.code());
                for ek in &evicted {
                    viz_telemetry::instant(Ev::CacheEvict, tel_key(ek), arg);
                }
            }
        }

        FetchOutcome { level, time_s: cost, fast_hit }
    }

    /// Pre-load a block into every tier without charging I/O time or touching
    /// miss statistics (the paper's one-time pre-processing placement of
    /// important blocks, Algorithm 1 line 7).
    pub fn preload(&mut self, key: K) {
        for i in (0..self.tiers.len()).rev() {
            let evicted = self.tiers[i].cache.insert(key);
            if i == 0 {
                self.stats.fast_evictions += evicted.len() as u64;
            }
            if viz_telemetry::enabled() {
                let arg = ((i as u64) << 8) | u64::from(self.tiers[i].spec.policy.code());
                for ek in &evicted {
                    viz_telemetry::instant(Ev::CacheEvict, tel_key(ek), arg);
                }
            }
        }
    }

    /// Pin `key` in the fastest tier (Algorithm 1's protection of blocks
    /// used by the current view step).
    pub fn pin_fastest(&mut self, key: K) {
        self.tiers[0].cache.pin(key);
    }

    /// Release all fastest-tier pins (end of a view step).
    pub fn unpin_fastest(&mut self) {
        self.tiers[0].cache.unpin_all();
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Reset statistics (e.g. after a warm-up phase), keeping residency.
    pub fn reset_stats(&mut self) {
        self.stats = HierarchyStats::new(self.tiers.len());
    }

    /// Uniform block size used by the cost model.
    pub fn block_bytes(&self) -> usize {
        self.block_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Hierarchy<u32> {
        // DRAM: 2 blocks, SSD: 4 blocks, over HDD; 1 MiB blocks.
        Hierarchy::new(
            vec![
                TierSpec::new("DRAM", 2, TierCost::dram(), PolicyKind::Lru),
                TierSpec::new("SSD", 4, TierCost::ssd(), PolicyKind::Lru),
            ],
            TierCost::hdd(),
            1 << 20,
        )
    }

    #[test]
    fn cold_fetch_comes_from_backing() {
        let mut h = small();
        let o = h.fetch(1, AccessClass::Demand);
        assert_eq!(o.level, 2);
        assert!(!o.fast_hit);
        assert!((o.time_s - TierCost::hdd().read_time(1 << 20)).abs() < 1e-12);
    }

    #[test]
    fn refetch_hits_fastest() {
        let mut h = small();
        h.fetch(1, AccessClass::Demand);
        let o = h.fetch(1, AccessClass::Demand);
        assert_eq!(o.level, 0);
        assert!(o.fast_hit);
        assert_eq!(h.stats().demand_fast_misses, 1);
        assert_eq!(h.stats().demand_accesses, 2);
    }

    #[test]
    fn evicted_from_dram_still_hits_ssd() {
        let mut h = small();
        h.fetch(1, AccessClass::Demand);
        h.fetch(2, AccessClass::Demand);
        h.fetch(3, AccessClass::Demand); // evicts 1 from DRAM (cap 2)
        assert!(!h.in_fastest(&1));
        let o = h.fetch(1, AccessClass::Demand);
        assert_eq!(o.level, 1, "block should be served from SSD");
        assert!((o.time_s - TierCost::ssd().read_time(1 << 20)).abs() < 1e-12);
    }

    #[test]
    fn full_working_set_overflow_reaches_backing_again() {
        let mut h = small();
        for k in 0..10u32 {
            h.fetch(k, AccessClass::Demand);
        }
        // 0..5 evicted from SSD too; refetching 0 is an HDD read.
        let o = h.fetch(0, AccessClass::Demand);
        assert_eq!(o.level, 2);
    }

    #[test]
    fn miss_rate_counts_fast_tier_only() {
        let mut h = small();
        h.fetch(1, AccessClass::Demand); // miss
        h.fetch(1, AccessClass::Demand); // hit
        h.fetch(2, AccessClass::Demand); // miss
        h.fetch(1, AccessClass::Demand); // hit
        assert!((h.stats().miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn prefetch_does_not_inflate_demand_stats() {
        let mut h = small();
        h.fetch(7, AccessClass::Prefetch);
        assert_eq!(h.stats().demand_accesses, 0);
        assert_eq!(h.stats().miss_rate(), 0.0);
        assert!(h.stats().prefetch_s() > 0.0);
        // The prefetched block now demand-hits DRAM.
        let o = h.fetch(7, AccessClass::Demand);
        assert!(o.fast_hit);
        assert_eq!(h.stats().demand_fast_misses, 0);
    }

    #[test]
    fn preload_is_free_and_resident() {
        let mut h = small();
        h.preload(9);
        assert!(h.in_fastest(&9));
        assert_eq!(h.stats().demand_io_s(), 0.0);
        assert_eq!(h.stats().total_bytes_read(), 0);
    }

    #[test]
    fn pinned_blocks_survive_thrash() {
        let mut h = small();
        h.fetch(1, AccessClass::Demand);
        h.pin_fastest(1);
        for k in 10..20u32 {
            h.fetch(k, AccessClass::Demand);
        }
        assert!(h.in_fastest(&1), "pinned block evicted");
        h.unpin_fastest();
        for k in 20..25u32 {
            h.fetch(k, AccessClass::Demand);
        }
        assert!(!h.in_fastest(&1), "unpinned block should eventually fall out");
    }

    #[test]
    fn paper_default_capacities() {
        let h: Hierarchy<u32> = Hierarchy::paper_default(1024, 0.5, PolicyKind::Lru, 4096);
        assert_eq!(h.tier_capacity(0), 256); // 25% of dataset
        assert_eq!(h.tier_capacity(1), 512); // 50% of dataset
        assert_eq!(h.tier_name(0), "DRAM");
        assert_eq!(h.tier_name(2), "backing");
    }

    #[test]
    fn paper_default_ratio_07() {
        let h: Hierarchy<u32> = Hierarchy::paper_default(1000, 0.7, PolicyKind::Lru, 4096);
        assert_eq!(h.tier_capacity(0), 490);
        assert_eq!(h.tier_capacity(1), 700);
    }

    #[test]
    #[should_panic]
    fn decreasing_capacities_panic() {
        let _: Hierarchy<u32> = Hierarchy::new(
            vec![
                TierSpec::new("big-fast", 8, TierCost::dram(), PolicyKind::Lru),
                TierSpec::new("small-slow", 4, TierCost::ssd(), PolicyKind::Lru),
            ],
            TierCost::hdd(),
            1,
        );
    }

    #[test]
    fn reset_stats_keeps_residency() {
        let mut h = small();
        h.fetch(1, AccessClass::Demand);
        h.reset_stats();
        assert_eq!(h.stats().demand_accesses, 0);
        let o = h.fetch(1, AccessClass::Demand);
        assert!(o.fast_hit, "residency must survive a stats reset");
    }

    #[test]
    fn telemetry_attributes_evictions_to_tier_and_policy() {
        viz_telemetry::set_enabled(true);
        let mut h = small();
        // DRAM holds 2 blocks: the third fetch must evict one via LRU.
        for k in 0..6u32 {
            h.fetch(k, AccessClass::Demand);
        }
        let trace = viz_telemetry::drain();
        viz_telemetry::set_enabled(false);
        let lru_code = u64::from(PolicyKind::Lru.code());
        let dram_evicts =
            trace.events.iter().filter(|e| e.kind == Ev::CacheEvict && e.arg == lru_code).count();
        let ssd_evicts = trace
            .events
            .iter()
            .filter(|e| e.kind == Ev::CacheEvict && e.arg == ((1 << 8) | lru_code))
            .count();
        // 6 fetches through a 2-block DRAM: at least 4 fast evictions, and
        // the 4-block SSD overflowed at least twice.
        assert!(dram_evicts >= 4, "got {dram_evicts} DRAM evictions");
        assert!(ssd_evicts >= 2, "got {ssd_evicts} SSD evictions");
        assert!(trace.count(Ev::CacheMiss) >= 6);
    }

    #[test]
    fn set_tier_policy_keeps_residency() {
        let mut h = small();
        h.fetch(1, AccessClass::Demand);
        h.fetch(2, AccessClass::Demand);
        assert_eq!(h.tier_policy(0), PolicyKind::Lru);
        h.set_tier_policy(0, PolicyKind::Lirs);
        assert_eq!(h.tier_policy(0), PolicyKind::Lirs);
        assert!(h.in_fastest(&1) && h.in_fastest(&2), "residency lost across swap");
        let o = h.fetch(1, AccessClass::Demand);
        assert!(o.fast_hit);
    }

    #[test]
    fn bytes_read_accounting() {
        let mut h = small();
        h.fetch(1, AccessClass::Demand); // 1 MiB from HDD
        h.fetch(1, AccessClass::Demand); // 1 MiB from DRAM
        assert_eq!(h.stats().total_bytes_read(), 2 << 20);
        assert_eq!(h.stats().levels[2].bytes_read, 1 << 20);
        assert_eq!(h.stats().levels[0].bytes_read, 1 << 20);
    }
}
