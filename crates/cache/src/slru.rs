//! Segmented LRU (Karedla et al., 1994): two LRU segments — probationary
//! and protected. New entries go probationary; a hit promotes to protected
//! (bounded, demoting its LRU back to probationary). Victims come from the
//! probationary LRU end. The classic disk-cache policy between plain LRU
//! and 2Q in sophistication.

use crate::lru::LruPolicy;
use crate::policy::ReplacementPolicy;
use std::collections::HashMap;
use std::hash::Hash;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Segment {
    Probation,
    Protected,
}

/// SLRU sized for `capacity` total entries; the protected segment holds at
/// most `capacity * 4 / 5` (the commonly used 80/20 split).
#[derive(Debug)]
pub struct SlruPolicy<K: Copy + Eq + Hash> {
    probation: LruPolicy<K>,
    protected: LruPolicy<K>,
    segment: HashMap<K, Segment>,
    protected_cap: usize,
}

impl<K: Copy + Eq + Hash + Send> SlruPolicy<K> {
    /// Create with the 80/20 protected/probation split.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "SLRU needs a positive capacity");
        SlruPolicy {
            probation: LruPolicy::new(),
            protected: LruPolicy::new(),
            segment: HashMap::new(),
            protected_cap: (capacity * 4 / 5).max(1),
        }
    }

    /// Probationary entry count (diagnostic).
    pub fn probation_len(&self) -> usize {
        self.probation.len()
    }

    /// Protected entry count (diagnostic).
    pub fn protected_len(&self) -> usize {
        self.protected.len()
    }
}

impl<K: Copy + Eq + Hash + Send> ReplacementPolicy<K> for SlruPolicy<K> {
    fn on_insert(&mut self, key: K) {
        debug_assert!(!self.segment.contains_key(&key), "duplicate insert");
        self.probation.on_insert(key);
        self.segment.insert(key, Segment::Probation);
    }

    fn on_hit(&mut self, key: K) {
        match self.segment.get(&key) {
            Some(Segment::Protected) => self.protected.on_hit(key),
            Some(Segment::Probation) => {
                // Promote; demote the protected LRU if over budget.
                self.probation.on_remove(&key);
                self.protected.on_insert(key);
                self.segment.insert(key, Segment::Protected);
                if self.protected.len() > self.protected_cap {
                    if let Some(demoted) = self.protected.choose_victim(&mut |_| true) {
                        self.probation.on_insert(demoted);
                        self.segment.insert(demoted, Segment::Probation);
                    }
                }
            }
            None => {}
        }
    }

    fn choose_victim(&mut self, is_evictable: &mut dyn FnMut(&K) -> bool) -> Option<K> {
        if let Some(v) = self.probation.choose_victim(is_evictable) {
            self.segment.remove(&v);
            return Some(v);
        }
        let v = self.protected.choose_victim(is_evictable)?;
        self.segment.remove(&v);
        Some(v)
    }

    fn on_remove(&mut self, key: &K) {
        match self.segment.remove(key) {
            Some(Segment::Probation) => self.probation.on_remove(key),
            Some(Segment::Protected) => self.protected.on_remove(key),
            None => {}
        }
    }

    fn len(&self) -> usize {
        self.segment.len()
    }

    fn contains(&self, key: &K) -> bool {
        self.segment.contains_key(key)
    }

    fn name(&self) -> &'static str {
        "slru"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::conformance;

    #[test]
    fn conformance_lifecycle() {
        conformance::basic_lifecycle(Box::new(SlruPolicy::new(16)));
    }

    #[test]
    fn conformance_pinning() {
        conformance::respects_pinning(Box::new(SlruPolicy::new(16)));
    }

    #[test]
    fn conformance_removal() {
        conformance::external_removal(Box::new(SlruPolicy::new(16)));
    }

    #[test]
    fn hit_promotes_to_protected() {
        let mut p = SlruPolicy::new(10);
        p.on_insert(1u32);
        assert_eq!(p.probation_len(), 1);
        p.on_hit(1);
        assert_eq!(p.protected_len(), 1);
        assert_eq!(p.probation_len(), 0);
    }

    #[test]
    fn one_shot_scans_never_touch_protected() {
        let mut p = SlruPolicy::new(10);
        // Protect a hot pair.
        for k in [1u32, 2] {
            p.on_insert(k);
            p.on_hit(k);
        }
        // Scan 100 cold keys, evicting as a bounded cache would.
        for k in 100..200u32 {
            p.on_insert(k);
            if p.len() > 10 {
                p.choose_victim(&mut |_| true);
            }
        }
        assert!(p.contains(&1) && p.contains(&2), "scan flushed the hot set");
    }

    #[test]
    fn protected_overflow_demotes_lru() {
        let mut p = SlruPolicy::new(5); // protected cap = 4
        for k in 0..5u32 {
            p.on_insert(k);
            p.on_hit(k);
        }
        assert_eq!(p.protected_len(), 4);
        assert_eq!(p.probation_len(), 1);
        // The demoted entry is the protected LRU = key 0.
        assert_eq!(p.choose_victim(&mut |_| true), Some(0));
    }

    #[test]
    fn victims_prefer_probation() {
        let mut p = SlruPolicy::new(8);
        p.on_insert(1u32);
        p.on_hit(1); // protected
        p.on_insert(2); // probation
        assert_eq!(p.choose_victim(&mut |_| true), Some(2));
        assert!(p.contains(&1));
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        SlruPolicy::<u32>::new(0);
    }
}
