//! Most-Recently-Used replacement.
//!
//! MRU is the textbook antidote to LRU's cyclic-thrash pathology: for a
//! looping scan over a working set slightly larger than the cache, evicting
//! the *most* recent entry retains a stable prefix and hits on it every
//! lap. Included because interactive orbits (the paper's spherical paths)
//! are exactly such loops — the ablation bench shows where each wins.

use crate::policy::ReplacementPolicy;
use std::collections::HashMap;
use std::hash::Hash;

/// Evicts the most recently touched key (insertions count as touches).
#[derive(Debug)]
pub struct MruPolicy<K> {
    /// key → last-touch sequence number.
    last: HashMap<K, u64>,
    /// (sequence, key) ordered newest-first via BTreeMap reverse iteration.
    order: std::collections::BTreeMap<u64, K>,
    next: u64,
}

impl<K: Copy + Eq + Hash> MruPolicy<K> {
    /// Create an empty MRU policy.
    pub fn new() -> Self {
        MruPolicy { last: HashMap::new(), order: std::collections::BTreeMap::new(), next: 0 }
    }

    fn touch(&mut self, key: K) {
        let seq = self.next;
        self.next += 1;
        if let Some(old) = self.last.insert(key, seq) {
            self.order.remove(&old);
        }
        self.order.insert(seq, key);
    }
}

impl<K: Copy + Eq + Hash> Default for MruPolicy<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Copy + Eq + Hash + Send> ReplacementPolicy<K> for MruPolicy<K> {
    fn on_insert(&mut self, key: K) {
        debug_assert!(!self.last.contains_key(&key), "duplicate insert");
        self.touch(key);
    }

    fn on_hit(&mut self, key: K) {
        if self.last.contains_key(&key) {
            self.touch(key);
        }
    }

    fn choose_victim(&mut self, is_evictable: &mut dyn FnMut(&K) -> bool) -> Option<K> {
        // Newest first.
        let found =
            self.order.iter().rev().find(|(_, k)| is_evictable(k)).map(|(&s, &k)| (s, k))?;
        self.order.remove(&found.0);
        self.last.remove(&found.1);
        Some(found.1)
    }

    fn on_remove(&mut self, key: &K) {
        if let Some(seq) = self.last.remove(key) {
            self.order.remove(&seq);
        }
    }

    fn len(&self) -> usize {
        self.last.len()
    }

    fn contains(&self, key: &K) -> bool {
        self.last.contains_key(key)
    }

    fn name(&self) -> &'static str {
        "mru"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{CacheLevel, Lookup};
    use crate::policy::conformance;

    #[test]
    fn conformance_lifecycle() {
        conformance::basic_lifecycle(Box::new(MruPolicy::new()));
    }

    #[test]
    fn conformance_pinning() {
        conformance::respects_pinning(Box::new(MruPolicy::new()));
    }

    #[test]
    fn conformance_removal() {
        conformance::external_removal(Box::new(MruPolicy::new()));
    }

    #[test]
    fn evicts_newest_first() {
        let mut p = MruPolicy::new();
        p.on_insert(1u32);
        p.on_insert(2);
        p.on_insert(3);
        assert_eq!(p.choose_victim(&mut |_| true), Some(3));
        p.on_hit(1); // 1 becomes newest
        assert_eq!(p.choose_victim(&mut |_| true), Some(1));
        assert_eq!(p.choose_victim(&mut |_| true), Some(2));
    }

    #[test]
    fn mru_beats_lru_on_cyclic_scan() {
        // Loop over N+1 keys with capacity N: LRU misses 100%, MRU keeps a
        // stable prefix resident.
        let cap = 8;
        let keys: Vec<u32> = (0..(cap as u32 + 1)).collect();
        let run = |policy: Box<dyn ReplacementPolicy<u32>>| -> usize {
            let mut c = CacheLevel::with_policy(policy, cap);
            let mut misses = 0;
            for _ in 0..20 {
                for &k in &keys {
                    if c.access(k) == Lookup::Miss {
                        misses += 1;
                        c.insert(k);
                    }
                }
            }
            misses
        };
        let lru_misses = run(Box::new(crate::lru::LruPolicy::new()));
        let mru_misses = run(Box::new(MruPolicy::new()));
        assert_eq!(lru_misses, 20 * keys.len(), "LRU must thrash completely");
        assert!(
            mru_misses < lru_misses / 3,
            "MRU should break the loop pathology: {mru_misses} vs {lru_misses}"
        );
    }
}
