//! Deterministic I/O cost model for the simulated memory hierarchy.
//!
//! The paper measures wall-clock I/O time on a real DRAM / SATA-SSD / HDD
//! machine (§V-A). We replace that testbed with per-tier latency+bandwidth
//! models calibrated to typical device figures: simulated time is a pure
//! function of the access sequence, so experiments regenerate bit-identically
//! while preserving the orderings and crossovers the paper's figures show
//! (see DESIGN.md §2).

use serde::{Deserialize, Serialize};

/// Latency/bandwidth description of one storage tier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierCost {
    /// Fixed per-read latency in seconds (seek/command overhead).
    pub latency_s: f64,
    /// Sustained read bandwidth in bytes/second.
    pub bandwidth_bps: f64,
}

impl TierCost {
    /// Create a cost model; `bandwidth_bps` must be positive.
    pub fn new(latency_s: f64, bandwidth_bps: f64) -> Self {
        assert!(latency_s >= 0.0 && bandwidth_bps > 0.0, "invalid tier cost");
        TierCost { latency_s, bandwidth_bps }
    }

    /// Typical DDR4 DRAM: ~100 ns effective latency, ~10 GB/s per stream.
    pub fn dram() -> Self {
        TierCost::new(100e-9, 10e9)
    }

    /// Typical SATA SSD: ~100 µs, ~500 MB/s (the paper's 512 GB SSD).
    pub fn ssd() -> Self {
        TierCost::new(100e-6, 500e6)
    }

    /// Typical 7200 rpm HDD: ~8 ms seek+rotate, ~150 MB/s (the 3 TB HDD).
    pub fn hdd() -> Self {
        TierCost::new(8e-3, 150e6)
    }

    /// Time to read `bytes` from this tier.
    #[inline]
    pub fn read_time(&self, bytes: usize) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth_bps
    }
}

/// A simple simulated-seconds accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SimTime(pub f64);

impl SimTime {
    /// Zero elapsed time.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Advance by `seconds` (must be non-negative).
    pub fn add(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0, "time cannot run backwards");
        self.0 += seconds;
    }

    /// Elapsed simulated seconds.
    pub fn seconds(&self) -> f64 {
        self.0
    }
}

impl std::ops::AddAssign<f64> for SimTime {
    fn add_assign(&mut self, rhs: f64) {
        self.add(rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_time_composition() {
        let t = TierCost::new(0.001, 1000.0);
        // 1 ms latency + 500 bytes at 1 kB/s = 0.5 s.
        assert!((t.read_time(500) - 0.501).abs() < 1e-12);
    }

    #[test]
    fn zero_bytes_costs_latency_only() {
        let t = TierCost::ssd();
        assert!((t.read_time(0) - 100e-6).abs() < 1e-12);
    }

    #[test]
    fn device_ordering_matches_reality() {
        // For a 1 MiB block: DRAM < SSD < HDD.
        let b = 1 << 20;
        assert!(TierCost::dram().read_time(b) < TierCost::ssd().read_time(b));
        assert!(TierCost::ssd().read_time(b) < TierCost::hdd().read_time(b));
    }

    #[test]
    fn hdd_is_latency_dominated_for_small_blocks() {
        let t = TierCost::hdd();
        let small = t.read_time(4096);
        assert!(small < 2.0 * t.latency_s, "4 KiB read should be ~seek-bound");
    }

    #[test]
    fn sim_time_accumulates() {
        let mut t = SimTime::ZERO;
        t += 0.5;
        t.add(0.25);
        assert!((t.seconds() - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn invalid_bandwidth_panics() {
        TierCost::new(0.0, 0.0);
    }
}
