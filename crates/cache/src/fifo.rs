//! First-In First-Out replacement (paper baseline).

use crate::policy::ReplacementPolicy;
use std::collections::{HashSet, VecDeque};
use std::hash::Hash;

/// Evicts in arrival order, ignoring accesses entirely.
#[derive(Debug, Default)]
pub struct FifoPolicy<K> {
    queue: VecDeque<K>,
    resident: HashSet<K>,
}

impl<K: Copy + Eq + Hash> FifoPolicy<K> {
    /// Create an empty FIFO policy.
    pub fn new() -> Self {
        FifoPolicy { queue: VecDeque::new(), resident: HashSet::new() }
    }
}

impl<K: Copy + Eq + Hash + Send> ReplacementPolicy<K> for FifoPolicy<K> {
    fn on_insert(&mut self, key: K) {
        debug_assert!(!self.resident.contains(&key), "duplicate insert");
        self.queue.push_back(key);
        self.resident.insert(key);
    }

    fn on_hit(&mut self, _key: K) {
        // FIFO is access-oblivious.
    }

    fn choose_victim(&mut self, is_evictable: &mut dyn FnMut(&K) -> bool) -> Option<K> {
        // Scan from the oldest entry; skipped (pinned or stale) entries are
        // rotated to preserve relative order cheaply.
        let mut scanned = 0;
        let limit = self.queue.len();
        while scanned < limit {
            let k = *self.queue.front()?;
            if !self.resident.contains(&k) {
                // Stale entry from an external removal.
                self.queue.pop_front();
                continue;
            }
            if is_evictable(&k) {
                self.queue.pop_front();
                self.resident.remove(&k);
                return Some(k);
            }
            // Pinned: rotate to the back, remember we have seen it.
            self.queue.rotate_left(1);
            scanned += 1;
        }
        None
    }

    fn on_remove(&mut self, key: &K) {
        // Lazy removal: drop from the resident set; the queue entry is
        // skipped when it surfaces.
        self.resident.remove(key);
    }

    fn len(&self) -> usize {
        self.resident.len()
    }

    fn contains(&self, key: &K) -> bool {
        self.resident.contains(key)
    }

    fn name(&self) -> &'static str {
        "fifo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::conformance;

    #[test]
    fn conformance_lifecycle() {
        conformance::basic_lifecycle(Box::new(FifoPolicy::new()));
    }

    #[test]
    fn conformance_pinning() {
        conformance::respects_pinning(Box::new(FifoPolicy::new()));
    }

    #[test]
    fn conformance_removal() {
        conformance::external_removal(Box::new(FifoPolicy::new()));
    }

    #[test]
    fn evicts_in_insertion_order() {
        let mut p = FifoPolicy::new();
        for k in [5u32, 1, 9, 2] {
            p.on_insert(k);
        }
        assert_eq!(p.choose_victim(&mut |_| true), Some(5));
        assert_eq!(p.choose_victim(&mut |_| true), Some(1));
    }

    #[test]
    fn hits_do_not_change_order() {
        let mut p = FifoPolicy::new();
        p.on_insert(1u32);
        p.on_insert(2);
        p.on_hit(1);
        p.on_hit(1);
        assert_eq!(p.choose_victim(&mut |_| true), Some(1));
    }

    #[test]
    fn pinned_front_falls_back_to_second() {
        let mut p = FifoPolicy::new();
        p.on_insert(1u32);
        p.on_insert(2);
        assert_eq!(p.choose_victim(&mut |k| *k != 1), Some(2));
        assert!(p.contains(&1));
    }

    #[test]
    fn stale_entries_are_skipped_after_removal() {
        let mut p = FifoPolicy::new();
        p.on_insert(1u32);
        p.on_insert(2);
        p.on_remove(&1);
        assert_eq!(p.choose_victim(&mut |_| true), Some(2));
        assert_eq!(p.choose_victim(&mut |_| true), None);
    }
}
