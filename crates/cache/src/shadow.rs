//! Shadow-cache scoring: run candidate replacement policies on the live
//! key trace without holding any data.
//!
//! A shadow cache is a [`CacheLevel`] that stores only keys — it sees the
//! same access stream as the real cache and answers one question: *had we
//! been running policy X, would this access have hit?* Feeding one shadow
//! per candidate policy turns "which policy fits this workload" from a
//! guess into a measurement, for the price of a few hash sets. The
//! control plane consumes the per-window scores and switches the real
//! cache (via [`CacheLevel::set_policy`] /
//! [`crate::Hierarchy::set_tier_policy`]) only when a challenger wins
//! persistently — the hysteresis lives in the controller, not here.
//!
//! Scores are *windowed*: interactive exploration changes phase (orbit →
//! zoom → scrub), and a policy that won the last ten thousand accesses may
//! be exactly wrong for the next ten thousand. [`ShadowSet::end_window`]
//! reports hit counts since the previous call and resets, so the consumer
//! always compares policies on the same recent slice of the trace.

use crate::cache::{CacheLevel, Lookup};
use crate::policy::PolicyKind;
use std::hash::Hash;

/// Per-policy score for one completed window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShadowScore {
    /// The candidate policy.
    pub kind: PolicyKind,
    /// Accesses observed in the window (identical across candidates).
    pub accesses: u64,
    /// Accesses that hit this candidate's shadow.
    pub hits: u64,
}

impl ShadowScore {
    /// Window hit rate in `[0, 1]`; 0 for an empty window.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

struct Shadow<K: Copy + Eq + Hash> {
    kind: PolicyKind,
    level: CacheLevel<K>,
    window_hits: u64,
}

/// A bank of shadow caches, one per candidate policy, all at the same
/// capacity, all fed the same trace.
pub struct ShadowSet<K: Copy + Eq + Hash> {
    shadows: Vec<Shadow<K>>,
    window_accesses: u64,
}

impl<K: Copy + Eq + Hash + Ord + Send + 'static> ShadowSet<K> {
    /// Shadows for `kinds` at `capacity` entries each (the capacity of the
    /// real cache being tuned).
    pub fn new(kinds: &[PolicyKind], capacity: usize) -> Self {
        assert!(!kinds.is_empty(), "need at least one candidate policy");
        ShadowSet {
            shadows: kinds
                .iter()
                .map(|&kind| Shadow {
                    kind,
                    level: CacheLevel::new(kind, capacity),
                    window_hits: 0,
                })
                .collect(),
            window_accesses: 0,
        }
    }

    /// The full zoo at `capacity` — every [`PolicyKind`] as a candidate.
    pub fn full_zoo(capacity: usize) -> Self {
        Self::new(PolicyKind::ALL, capacity)
    }
}

impl<K: Copy + Eq + Hash> ShadowSet<K> {
    /// Candidate policies, in score order.
    pub fn kinds(&self) -> Vec<PolicyKind> {
        self.shadows.iter().map(|s| s.kind).collect()
    }

    /// Feed one access from the live trace: each shadow records a hit or
    /// simulates the miss fill.
    pub fn observe(&mut self, key: K) {
        self.window_accesses += 1;
        for s in &mut self.shadows {
            match s.level.access(key) {
                Lookup::Hit => s.window_hits += 1,
                Lookup::Miss => {
                    s.level.insert(key);
                }
            }
        }
    }

    /// Accesses observed in the current window.
    pub fn window_accesses(&self) -> u64 {
        self.window_accesses
    }

    /// Close the current window: report every candidate's score over it
    /// and start counting fresh (shadow *residency* carries over — only
    /// the scores reset, so candidates stay warm across windows).
    pub fn end_window(&mut self) -> Vec<ShadowScore> {
        let accesses = self.window_accesses;
        self.window_accesses = 0;
        self.shadows
            .iter_mut()
            .map(|s| {
                let hits = s.window_hits;
                s.window_hits = 0;
                ShadowScore { kind: s.kind, accesses, hits }
            })
            .collect()
    }

    /// Peek at the current window's scores without closing it.
    pub fn scores(&self) -> Vec<ShadowScore> {
        self.shadows
            .iter()
            .map(|s| ShadowScore {
                kind: s.kind,
                accesses: self.window_accesses,
                hits: s.window_hits,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores_share_the_access_count() {
        let mut set: ShadowSet<u32> = ShadowSet::new(&[PolicyKind::Lru, PolicyKind::Fifo], 4);
        for k in [1u32, 2, 3, 1, 2, 3] {
            set.observe(k);
        }
        let scores = set.end_window();
        assert_eq!(scores.len(), 2);
        for s in &scores {
            assert_eq!(s.accesses, 6);
            // Working set fits both shadows: second pass all hits.
            assert_eq!(s.hits, 3, "{}", s.kind.label());
            assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn loop_trace_separates_lru_from_mru() {
        // The classic LRU pathology: a cyclic scan one element larger than
        // the cache. LRU hits 0%; MRU keeps most of the loop resident.
        let mut set: ShadowSet<u32> = ShadowSet::new(&[PolicyKind::Lru, PolicyKind::Mru], 4);
        for _ in 0..50 {
            for k in 0..5u32 {
                set.observe(k);
            }
        }
        let scores = set.end_window();
        let lru = scores.iter().find(|s| s.kind == PolicyKind::Lru).unwrap();
        let mru = scores.iter().find(|s| s.kind == PolicyKind::Mru).unwrap();
        assert_eq!(lru.hits, 0, "LRU must thrash on the loop");
        assert!(mru.hit_rate() > 0.5, "MRU hit rate {}", mru.hit_rate());
    }

    #[test]
    fn windows_reset_scores_but_not_residency() {
        let mut set: ShadowSet<u32> = ShadowSet::new(&[PolicyKind::Lru], 4);
        set.observe(1);
        set.observe(2);
        let w1 = set.end_window();
        assert_eq!(w1[0].accesses, 2);
        assert_eq!(w1[0].hits, 0);
        // Residency carried over: these are hits in the new window.
        set.observe(1);
        set.observe(2);
        let w2 = set.end_window();
        assert_eq!(w2[0].accesses, 2);
        assert_eq!(w2[0].hits, 2);
    }

    #[test]
    fn full_zoo_runs_every_policy() {
        let mut set: ShadowSet<u64> = ShadowSet::full_zoo(8);
        for k in 0..100u64 {
            set.observe(k % 16);
        }
        let scores = set.end_window();
        assert_eq!(scores.len(), PolicyKind::ALL.len());
        for s in &scores {
            assert_eq!(s.accesses, 100);
        }
    }

    #[test]
    fn peek_does_not_reset() {
        let mut set: ShadowSet<u32> = ShadowSet::new(&[PolicyKind::Lru], 2);
        set.observe(1);
        assert_eq!(set.scores()[0].accesses, 1);
        assert_eq!(set.window_accesses(), 1);
        set.observe(1);
        let s = set.end_window();
        assert_eq!(s[0].accesses, 2);
        assert_eq!(s[0].hits, 1);
    }
}
