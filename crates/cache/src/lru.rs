//! Least-Recently-Used replacement (paper baseline, and the in-frame
//! eviction rule inside the paper's Algorithm 1).
//!
//! Implemented as an intrusive doubly-linked list over a slab of nodes:
//! O(1) insert / hit / unlink, O(k) victim search where k is the number of
//! pinned entries skipped (k = 0 for plain LRU use).

use crate::policy::ReplacementPolicy;
use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node<K> {
    key: K,
    prev: usize,
    next: usize,
}

/// Classic LRU list: most-recent at the head, victims taken from the tail.
#[derive(Debug)]
pub struct LruPolicy<K> {
    nodes: Vec<Node<K>>,
    free: Vec<usize>,
    index: HashMap<K, usize>,
    head: usize,
    tail: usize,
}

impl<K: Copy + Eq + Hash> LruPolicy<K> {
    /// Create an empty LRU policy.
    pub fn new() -> Self {
        LruPolicy {
            nodes: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            head: NIL,
            tail: NIL,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.nodes[i].prev = NIL;
        self.nodes[i].next = NIL;
    }

    fn push_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn alloc(&mut self, key: K) -> usize {
        if let Some(i) = self.free.pop() {
            self.nodes[i] = Node { key, prev: NIL, next: NIL };
            i
        } else {
            self.nodes.push(Node { key, prev: NIL, next: NIL });
            self.nodes.len() - 1
        }
    }

    /// Keys from least- to most-recently used (tail to head). Test helper
    /// and debugging aid.
    pub fn lru_order(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.index.len());
        let mut i = self.tail;
        while i != NIL {
            out.push(self.nodes[i].key);
            i = self.nodes[i].prev;
        }
        out
    }
}

impl<K: Copy + Eq + Hash> Default for LruPolicy<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Copy + Eq + Hash + Send> ReplacementPolicy<K> for LruPolicy<K> {
    fn on_insert(&mut self, key: K) {
        debug_assert!(!self.index.contains_key(&key), "duplicate insert");
        let i = self.alloc(key);
        self.push_front(i);
        self.index.insert(key, i);
    }

    fn on_hit(&mut self, key: K) {
        if let Some(&i) = self.index.get(&key) {
            self.unlink(i);
            self.push_front(i);
        }
    }

    fn choose_victim(&mut self, is_evictable: &mut dyn FnMut(&K) -> bool) -> Option<K> {
        let mut i = self.tail;
        while i != NIL {
            let key = self.nodes[i].key;
            if is_evictable(&key) {
                self.unlink(i);
                self.index.remove(&key);
                self.free.push(i);
                return Some(key);
            }
            i = self.nodes[i].prev;
        }
        None
    }

    fn on_remove(&mut self, key: &K) {
        if let Some(i) = self.index.remove(key) {
            self.unlink(i);
            self.free.push(i);
        }
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn contains(&self, key: &K) -> bool {
        self.index.contains_key(key)
    }

    fn name(&self) -> &'static str {
        "lru"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::conformance;

    #[test]
    fn conformance_lifecycle() {
        conformance::basic_lifecycle(Box::new(LruPolicy::new()));
    }

    #[test]
    fn conformance_pinning() {
        conformance::respects_pinning(Box::new(LruPolicy::new()));
    }

    #[test]
    fn conformance_removal() {
        conformance::external_removal(Box::new(LruPolicy::new()));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut p = LruPolicy::new();
        for k in 1..=3u32 {
            p.on_insert(k);
        }
        p.on_hit(1); // order (LRU→MRU): 2, 3, 1
        assert_eq!(p.choose_victim(&mut |_| true), Some(2));
        assert_eq!(p.choose_victim(&mut |_| true), Some(3));
        assert_eq!(p.choose_victim(&mut |_| true), Some(1));
    }

    #[test]
    fn lru_order_reflects_hits() {
        let mut p = LruPolicy::new();
        for k in 1..=4u32 {
            p.on_insert(k);
        }
        p.on_hit(2);
        p.on_hit(1);
        assert_eq!(p.lru_order(), vec![3, 4, 2, 1]);
    }

    #[test]
    fn pinned_tail_skips_to_next_lru() {
        let mut p = LruPolicy::new();
        for k in 1..=3u32 {
            p.on_insert(k);
        }
        // 1 is LRU but pinned.
        assert_eq!(p.choose_victim(&mut |k| *k != 1), Some(2));
        assert_eq!(p.lru_order(), vec![1, 3]);
    }

    #[test]
    fn slab_reuses_freed_nodes() {
        let mut p = LruPolicy::new();
        for round in 0..5 {
            for k in 0..100u32 {
                p.on_insert(k + round * 100);
            }
            while p.choose_victim(&mut |_| true).is_some() {}
        }
        // 5 rounds × 100 inserts but the slab never exceeds 100 nodes.
        assert!(p.nodes.len() <= 100);
    }

    #[test]
    fn hit_on_absent_key_is_noop() {
        let mut p = LruPolicy::new();
        p.on_insert(1u32);
        p.on_hit(42);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn remove_head_and_tail_keep_list_consistent() {
        let mut p = LruPolicy::new();
        for k in 1..=3u32 {
            p.on_insert(k);
        }
        p.on_remove(&3); // head (MRU)
        p.on_remove(&1); // tail (LRU)
        assert_eq!(p.lru_order(), vec![2]);
        assert_eq!(p.choose_victim(&mut |_| true), Some(2));
        assert!(p.is_empty());
    }
}
