//! # viz-cache — memory-hierarchy substrate
//!
//! Replacement policies (FIFO, LRU, CLOCK, LFU, ARC and an offline Belady
//! oracle), a single-level cache with pinning, and the multi-tier
//! DRAM/SSD/HDD hierarchy simulator used by every experiment in the paper's
//! evaluation.
//!
//! - [`policy`] — the [`policy::ReplacementPolicy`] trait and [`policy::PolicyKind`].
//! - [`fifo`], [`lru`], [`clock`], [`lfu`], [`arc`] — policy implementations.
//! - [`belady`] — offline-optimal (MIN) trace simulation.
//! - [`cache`] — one bounded cache level with pin support.
//! - [`cost`] — per-tier latency/bandwidth cost model.
//! - [`hierarchy`] — the inclusive multi-tier simulator and its statistics.
//!
//! # Example
//!
//! ```
//! use viz_cache::{AccessClass, Hierarchy, PolicyKind};
//!
//! // The paper's setup: DRAM = 25%, SSD = 50% of a 1024-block dataset.
//! let mut h: Hierarchy<u32> = Hierarchy::paper_default(1024, 0.5, PolicyKind::Lru, 64 * 1024);
//! h.fetch(7, AccessClass::Demand);          // cold: comes from the HDD
//! let again = h.fetch(7, AccessClass::Demand);
//! assert!(again.fast_hit);                  // now resident in DRAM
//! assert_eq!(h.stats().demand_fast_misses, 1);
//! ```

#![warn(missing_docs)]

pub mod arc;
pub mod belady;
pub mod cache;
pub mod clock;
pub mod cost;
pub mod fifo;
pub mod hierarchy;
pub mod lfu;
pub mod lirs;
pub mod lru;
pub mod mru;
pub mod policy;
pub mod shadow;
pub mod slru;
pub mod stats;
pub mod twoq;

pub use belady::{simulate_belady, BeladyResult};
pub use cache::{CacheLevel, Lookup};
pub use cost::{SimTime, TierCost};
pub use hierarchy::{FetchOutcome, Hierarchy, TierSpec};
pub use policy::{PolicyKind, ReplacementPolicy};
pub use shadow::{ShadowScore, ShadowSet};
pub use stats::{AccessClass, HierarchyStats, LevelStats};
