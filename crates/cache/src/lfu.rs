//! Least-Frequently-Used replacement with FIFO tie-breaking.
//! An extra baseline beyond the paper's FIFO/LRU comparison.

use crate::policy::ReplacementPolicy;
use std::collections::{BTreeSet, HashMap};
use std::hash::Hash;

/// Victims are the entries with the smallest access count; among equals the
/// oldest insertion goes first (monotonic sequence number).
#[derive(Debug)]
pub struct LfuPolicy<K> {
    /// key → (frequency, sequence).
    meta: HashMap<K, (u64, u64)>,
    /// Ordered candidate set: (frequency, sequence, key).
    order: BTreeSet<(u64, u64, K)>,
    next_seq: u64,
}

impl<K: Copy + Eq + Hash + Ord> LfuPolicy<K> {
    /// Create an empty LFU policy.
    pub fn new() -> Self {
        LfuPolicy { meta: HashMap::new(), order: BTreeSet::new(), next_seq: 0 }
    }

    /// Access count of a resident key (test/diagnostic helper).
    pub fn frequency(&self, key: &K) -> Option<u64> {
        self.meta.get(key).map(|&(f, _)| f)
    }
}

impl<K: Copy + Eq + Hash + Ord> Default for LfuPolicy<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Copy + Eq + Hash + Ord + Send> ReplacementPolicy<K> for LfuPolicy<K> {
    fn on_insert(&mut self, key: K) {
        debug_assert!(!self.meta.contains_key(&key), "duplicate insert");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.meta.insert(key, (1, seq));
        self.order.insert((1, seq, key));
    }

    fn on_hit(&mut self, key: K) {
        if let Some(&(f, s)) = self.meta.get(&key) {
            self.order.remove(&(f, s, key));
            self.meta.insert(key, (f + 1, s));
            self.order.insert((f + 1, s, key));
        }
    }

    fn choose_victim(&mut self, is_evictable: &mut dyn FnMut(&K) -> bool) -> Option<K> {
        let found = self.order.iter().find(|(_, _, k)| is_evictable(k)).copied()?;
        self.order.remove(&found);
        self.meta.remove(&found.2);
        Some(found.2)
    }

    fn on_remove(&mut self, key: &K) {
        if let Some((f, s)) = self.meta.remove(key) {
            self.order.remove(&(f, s, *key));
        }
    }

    fn len(&self) -> usize {
        self.meta.len()
    }

    fn contains(&self, key: &K) -> bool {
        self.meta.contains_key(key)
    }

    fn name(&self) -> &'static str {
        "lfu"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::conformance;

    #[test]
    fn conformance_lifecycle() {
        conformance::basic_lifecycle(Box::new(LfuPolicy::new()));
    }

    #[test]
    fn conformance_pinning() {
        conformance::respects_pinning(Box::new(LfuPolicy::new()));
    }

    #[test]
    fn conformance_removal() {
        conformance::external_removal(Box::new(LfuPolicy::new()));
    }

    #[test]
    fn evicts_coldest_key() {
        let mut p = LfuPolicy::new();
        for k in 1..=3u32 {
            p.on_insert(k);
        }
        p.on_hit(1);
        p.on_hit(1);
        p.on_hit(2);
        // Frequencies: 1→3, 2→2, 3→1.
        assert_eq!(p.choose_victim(&mut |_| true), Some(3));
        assert_eq!(p.choose_victim(&mut |_| true), Some(2));
        assert_eq!(p.choose_victim(&mut |_| true), Some(1));
    }

    #[test]
    fn equal_frequency_breaks_ties_fifo() {
        let mut p = LfuPolicy::new();
        p.on_insert(10u32);
        p.on_insert(20);
        assert_eq!(p.choose_victim(&mut |_| true), Some(10));
    }

    #[test]
    fn frequency_is_tracked() {
        let mut p = LfuPolicy::new();
        p.on_insert(7u32);
        assert_eq!(p.frequency(&7), Some(1));
        p.on_hit(7);
        p.on_hit(7);
        assert_eq!(p.frequency(&7), Some(3));
        assert_eq!(p.frequency(&8), None);
    }

    #[test]
    fn pinned_cold_key_skips_to_next() {
        let mut p = LfuPolicy::new();
        p.on_insert(1u32); // coldest
        p.on_insert(2);
        p.on_hit(2);
        p.on_insert(3);
        p.on_hit(3);
        p.on_hit(3);
        assert_eq!(p.choose_victim(&mut |k| *k != 1), Some(2));
    }
}
