//! Access statistics for the hierarchy simulator.

use serde::{Deserialize, Serialize};

/// Whether an access was issued by the renderer (demand) or by the
/// overlap prefetcher of the paper's Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessClass {
    /// Blocking fetch required before rendering can proceed.
    Demand,
    /// Speculative fetch overlapped with rendering.
    Prefetch,
}

/// Counters for one hierarchy level (or the backing store).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LevelStats {
    /// Demand accesses satisfied at this level.
    pub demand_hits: u64,
    /// Prefetch accesses satisfied at this level.
    pub prefetch_hits: u64,
    /// Bytes read *from* this level (to service any access).
    pub bytes_read: u64,
    /// Simulated seconds spent reading from this level for demand accesses.
    pub demand_read_s: f64,
    /// Simulated seconds spent reading from this level for prefetches.
    pub prefetch_read_s: f64,
}

/// Aggregate statistics of a hierarchy simulation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// One entry per cache tier (fastest first) plus one final entry for
    /// the backing store.
    pub levels: Vec<LevelStats>,
    /// Total demand accesses.
    pub demand_accesses: u64,
    /// Total prefetch accesses.
    pub prefetch_accesses: u64,
    /// Demand accesses *not* found in the fastest tier (the paper's
    /// headline miss count: any access that forces data movement).
    pub demand_fast_misses: u64,
    /// Prefetch accesses not already resident in the fastest tier.
    pub prefetch_fast_misses: u64,
    /// Total evictions out of the fastest tier.
    pub fast_evictions: u64,
}

impl HierarchyStats {
    /// Create with `tiers + 1` level slots.
    pub fn new(tiers: usize) -> Self {
        HierarchyStats { levels: vec![LevelStats::default(); tiers + 1], ..Default::default() }
    }

    /// The paper's miss rate: fraction of demand accesses that were not
    /// resident in the fastest memory when requested.
    pub fn miss_rate(&self) -> f64 {
        if self.demand_accesses == 0 {
            0.0
        } else {
            self.demand_fast_misses as f64 / self.demand_accesses as f64
        }
    }

    /// Total simulated demand I/O time (the paper's "I/O time": time spent
    /// loading missed blocks, summed over all levels below the fastest).
    pub fn demand_io_s(&self) -> f64 {
        self.levels.iter().skip(1).map(|l| l.demand_read_s).sum()
    }

    /// Total simulated prefetch time.
    pub fn prefetch_s(&self) -> f64 {
        self.levels.iter().map(|l| l.prefetch_read_s).sum()
    }

    /// Total bytes moved out of every level.
    pub fn total_bytes_read(&self) -> u64 {
        self.levels.iter().map(|l| l.bytes_read).sum()
    }

    /// Fraction of demand accesses satisfied at each level (the last entry
    /// is the backing store). Sums to 1 when any demand traffic exists.
    pub fn demand_hit_distribution(&self) -> Vec<f64> {
        let total = self.demand_accesses.max(1) as f64;
        let n = self.levels.len();
        self.levels
            .iter()
            .enumerate()
            .map(|(i, l)| {
                if i + 1 == n {
                    // Backing store: everything that missed every tier.
                    let tier_hits: u64 = self.levels[..n - 1].iter().map(|x| x.demand_hits).sum();
                    (self.demand_accesses - tier_hits) as f64 / total
                } else {
                    l.demand_hits as f64 / total
                }
            })
            .collect()
    }

    /// Merge another stats object (e.g. from a sharded run) into this one.
    pub fn merge(&mut self, other: &HierarchyStats) {
        assert_eq!(self.levels.len(), other.levels.len(), "level count mismatch");
        for (a, b) in self.levels.iter_mut().zip(&other.levels) {
            a.demand_hits += b.demand_hits;
            a.prefetch_hits += b.prefetch_hits;
            a.bytes_read += b.bytes_read;
            a.demand_read_s += b.demand_read_s;
            a.prefetch_read_s += b.prefetch_read_s;
        }
        self.demand_accesses += other.demand_accesses;
        self.prefetch_accesses += other.prefetch_accesses;
        self.demand_fast_misses += other.demand_fast_misses;
        self.prefetch_fast_misses += other.prefetch_fast_misses;
        self.fast_evictions += other.fast_evictions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = HierarchyStats::new(2);
        assert_eq!(s.levels.len(), 3);
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.demand_io_s(), 0.0);
    }

    #[test]
    fn miss_rate_fraction() {
        let mut s = HierarchyStats::new(1);
        s.demand_accesses = 10;
        s.demand_fast_misses = 3;
        assert!((s.miss_rate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn io_time_excludes_fastest_tier() {
        let mut s = HierarchyStats::new(2);
        s.levels[0].demand_read_s = 100.0; // DRAM reads are not "I/O"
        s.levels[1].demand_read_s = 2.0;
        s.levels[2].demand_read_s = 5.0;
        assert!((s.demand_io_s() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn hit_distribution_sums_to_one() {
        let mut s = HierarchyStats::new(2);
        s.demand_accesses = 10;
        s.levels[0].demand_hits = 6;
        s.levels[1].demand_hits = 3;
        // 1 access fell through to backing.
        let d = s.demand_hit_distribution();
        assert_eq!(d.len(), 3);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((d[0] - 0.6).abs() < 1e-12);
        assert!((d[2] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = HierarchyStats::new(1);
        a.demand_accesses = 5;
        a.demand_fast_misses = 2;
        a.levels[0].bytes_read = 100;
        let mut b = HierarchyStats::new(1);
        b.demand_accesses = 3;
        b.demand_fast_misses = 1;
        b.levels[1].demand_read_s = 0.5;
        a.merge(&b);
        assert_eq!(a.demand_accesses, 8);
        assert_eq!(a.demand_fast_misses, 3);
        assert_eq!(a.levels[0].bytes_read, 100);
        assert!((a.levels[1].demand_read_s - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn merge_rejects_mismatched_levels() {
        let mut a = HierarchyStats::new(1);
        a.merge(&HierarchyStats::new(2));
    }

    #[test]
    fn prefetch_time_sums_all_levels() {
        let mut s = HierarchyStats::new(1);
        s.levels[0].prefetch_read_s = 1.0;
        s.levels[1].prefetch_read_s = 2.0;
        assert!((s.prefetch_s() - 3.0).abs() < 1e-12);
    }
}
