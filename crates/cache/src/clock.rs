//! CLOCK (second-chance) replacement: an O(1)-amortized LRU approximation.
//! Not evaluated in the paper; included as an additional baseline for the
//! ablation benches.

use crate::policy::ReplacementPolicy;
use std::collections::HashMap;
use std::hash::Hash;

#[derive(Debug, Clone)]
struct Slot<K> {
    key: K,
    referenced: bool,
    live: bool,
}

/// Circular scan with reference bits: a referenced entry gets a second
/// chance (bit cleared, hand advances); an unreferenced one is evicted.
#[derive(Debug)]
pub struct ClockPolicy<K> {
    slots: Vec<Slot<K>>,
    index: HashMap<K, usize>,
    hand: usize,
    live: usize,
}

impl<K: Copy + Eq + Hash> ClockPolicy<K> {
    /// Create an empty CLOCK policy.
    pub fn new() -> Self {
        ClockPolicy { slots: Vec::new(), index: HashMap::new(), hand: 0, live: 0 }
    }

    fn advance(&mut self) {
        if !self.slots.is_empty() {
            self.hand = (self.hand + 1) % self.slots.len();
        }
    }
}

impl<K: Copy + Eq + Hash> Default for ClockPolicy<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Copy + Eq + Hash + Send> ReplacementPolicy<K> for ClockPolicy<K> {
    fn on_insert(&mut self, key: K) {
        debug_assert!(!self.index.contains_key(&key), "duplicate insert");
        // Reuse a dead slot if one is under the hand region; otherwise push.
        if let Some(pos) = self.slots.iter().position(|s| !s.live) {
            self.slots[pos] = Slot { key, referenced: false, live: true };
            self.index.insert(key, pos);
        } else {
            self.slots.push(Slot { key, referenced: false, live: true });
            self.index.insert(key, self.slots.len() - 1);
        }
        self.live += 1;
    }

    fn on_hit(&mut self, key: K) {
        if let Some(&i) = self.index.get(&key) {
            self.slots[i].referenced = true;
        }
    }

    fn choose_victim(&mut self, is_evictable: &mut dyn FnMut(&K) -> bool) -> Option<K> {
        if self.live == 0 {
            return None;
        }
        // Two full sweeps suffice: the first clears reference bits, the
        // second must find an unreferenced evictable entry (if any entry is
        // evictable at all).
        let n = self.slots.len();
        let mut evictable_seen = false;
        for _pass in 0..2 * n {
            let i = self.hand;
            self.advance();
            let slot = &mut self.slots[i];
            if !slot.live {
                continue;
            }
            if !is_evictable(&slot.key) {
                continue;
            }
            evictable_seen = true;
            if slot.referenced {
                slot.referenced = false;
                continue;
            }
            slot.live = false;
            self.live -= 1;
            let key = slot.key;
            self.index.remove(&key);
            return Some(key);
        }
        if !evictable_seen {
            return None;
        }
        // Every evictable entry was referenced twice in a row (possible when
        // `is_evictable` changed between sweeps); fall back to the first
        // evictable entry.
        for i in 0..n {
            let slot = &mut self.slots[i];
            if slot.live && is_evictable(&slot.key) {
                slot.live = false;
                self.live -= 1;
                let key = slot.key;
                self.index.remove(&key);
                return Some(key);
            }
        }
        None
    }

    fn on_remove(&mut self, key: &K) {
        if let Some(i) = self.index.remove(key) {
            self.slots[i].live = false;
            self.live -= 1;
        }
    }

    fn len(&self) -> usize {
        self.live
    }

    fn contains(&self, key: &K) -> bool {
        self.index.contains_key(key)
    }

    fn name(&self) -> &'static str {
        "clock"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::conformance;

    #[test]
    fn conformance_lifecycle() {
        conformance::basic_lifecycle(Box::new(ClockPolicy::new()));
    }

    #[test]
    fn conformance_pinning() {
        conformance::respects_pinning(Box::new(ClockPolicy::new()));
    }

    #[test]
    fn conformance_removal() {
        conformance::external_removal(Box::new(ClockPolicy::new()));
    }

    #[test]
    fn referenced_entries_get_second_chance() {
        let mut p = ClockPolicy::new();
        p.on_insert(1u32);
        p.on_insert(2);
        p.on_insert(3);
        p.on_hit(1); // protect 1 for one sweep
        let v = p.choose_victim(&mut |_| true);
        assert_eq!(v, Some(2), "unreferenced 2 goes before referenced 1");
    }

    #[test]
    fn repeated_hits_keep_hot_key_resident() {
        let mut p = ClockPolicy::new();
        for k in 0..4u32 {
            p.on_insert(k);
        }
        for _ in 0..3 {
            p.on_hit(0);
            let v = p.choose_victim(&mut |_| true).unwrap();
            assert_ne!(v, 0, "hot key evicted");
            p.on_insert(v + 100); // refill with a new cold key
        }
        assert!(p.contains(&0));
    }

    #[test]
    fn slot_reuse_keeps_table_bounded() {
        let mut p = ClockPolicy::new();
        for round in 0..10u32 {
            for k in 0..50 {
                p.on_insert(round * 50 + k);
            }
            while p.choose_victim(&mut |_| true).is_some() {}
        }
        assert!(p.slots.len() <= 50);
    }
}
