//! Belady's offline-optimal replacement (MIN), cited by the paper (§II,
//! [Belady 1966]) and used here as the unbeatable lower bound against which
//! the online policies are situated in the ablation benches.
//!
//! Because MIN needs the complete future access sequence it is exposed as a
//! trace simulator rather than as an online [`ReplacementPolicy`](crate::policy::ReplacementPolicy).

use std::collections::{BinaryHeap, HashMap};
use std::hash::Hash;

/// Result of an offline MIN simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeladyResult {
    /// Total accesses in the trace.
    pub accesses: usize,
    /// Accesses that found the key resident.
    pub hits: usize,
    /// Accesses that required a fetch.
    pub misses: usize,
}

impl BeladyResult {
    /// Fraction of accesses that missed.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Simulate Belady's MIN over `trace` with a cache of `capacity` entries.
///
/// On a miss with a full cache, the resident key whose *next* use lies
/// farthest in the future (or never) is evicted. Runs in
/// `O(n log n)` using a lazy max-heap of next-use positions.
pub fn simulate_belady<K: Copy + Eq + Hash>(trace: &[K], capacity: usize) -> BeladyResult {
    assert!(capacity > 0, "capacity must be positive");
    let n = trace.len();

    // next_use[i] = position of the next access to trace[i] after i, or n.
    let mut next_use = vec![n; n];
    let mut last_pos: HashMap<K, usize> = HashMap::new();
    for (i, k) in trace.iter().enumerate().rev() {
        if let Some(&p) = last_pos.get(k) {
            next_use[i] = p;
        }
        last_pos.insert(*k, i);
    }

    // resident: key → its current next-use position (n = never again).
    let mut resident: HashMap<K, usize> = HashMap::new();
    // Max-heap of (next_use, key-slot) candidates; entries go stale when a
    // key is re-accessed, so validate against `resident` on pop.
    let mut heap: BinaryHeap<(usize, usize)> = BinaryHeap::new();
    // Slot table so the heap stores Copy indices even for non-Ord keys.
    let mut slot_keys: Vec<K> = Vec::new();

    let mut hits = 0usize;
    let mut misses = 0usize;

    for (i, &k) in trace.iter().enumerate() {
        let nu = next_use[i];
        if resident.contains_key(&k) {
            hits += 1;
            resident.insert(k, nu);
            let slot = slot_keys.len();
            slot_keys.push(k);
            heap.push((nu, slot));
        } else {
            misses += 1;
            if resident.len() >= capacity {
                // Pop until a live entry surfaces.
                while let Some((nu_top, slot)) = heap.pop() {
                    let key = slot_keys[slot];
                    if resident.get(&key) == Some(&nu_top) {
                        resident.remove(&key);
                        break;
                    }
                }
            }
            resident.insert(k, nu);
            let slot = slot_keys.len();
            slot_keys.push(k);
            heap.push((nu, slot));
        }
    }
    BeladyResult { accesses: n, hits, misses }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference O(n·c) implementation for cross-checking.
    fn naive_belady(trace: &[u32], capacity: usize) -> BeladyResult {
        let mut resident: Vec<u32> = Vec::new();
        let (mut hits, mut misses) = (0, 0);
        for i in 0..trace.len() {
            let k = trace[i];
            if resident.contains(&k) {
                hits += 1;
                continue;
            }
            misses += 1;
            if resident.len() >= capacity {
                // Evict the key used farthest in the future.
                let victim_idx = (0..resident.len())
                    .max_by_key(|&ri| {
                        trace[i + 1..]
                            .iter()
                            .position(|&t| t == resident[ri])
                            .map(|p| p as i64)
                            .unwrap_or(i64::MAX)
                    })
                    .unwrap();
                resident.swap_remove(victim_idx);
            }
            resident.push(k);
        }
        BeladyResult { accesses: trace.len(), hits, misses }
    }

    #[test]
    fn classic_textbook_example() {
        // Belady's standard demonstration sequence, capacity 3.
        let trace = [7u32, 0, 1, 2, 0, 3, 0, 4, 2, 3, 0, 3, 2, 1, 2, 0, 1, 7, 0, 1];
        let r = simulate_belady(&trace, 3);
        assert_eq!(r.misses, 9, "MIN has exactly 9 faults on this sequence");
        assert_eq!(r.hits, 11);
    }

    #[test]
    fn all_unique_keys_all_miss() {
        let trace: Vec<u32> = (0..100).collect();
        let r = simulate_belady(&trace, 10);
        assert_eq!(r.misses, 100);
        assert_eq!(r.miss_rate(), 1.0);
    }

    #[test]
    fn repeating_working_set_within_capacity_hits() {
        let trace: Vec<u32> = (0..5).cycle().take(100).collect();
        let r = simulate_belady(&trace, 5);
        assert_eq!(r.misses, 5); // compulsory misses only
        assert_eq!(r.hits, 95);
    }

    #[test]
    fn empty_trace() {
        let r = simulate_belady::<u32>(&[], 4);
        assert_eq!(r.accesses, 0);
        assert_eq!(r.miss_rate(), 0.0);
    }

    #[test]
    fn matches_naive_on_random_traces() {
        // Deterministic pseudo-random traces (LCG), several capacities.
        let mut state = 12345u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 12) as u32
        };
        for cap in [1usize, 2, 4, 8] {
            let trace: Vec<u32> = (0..300).map(|_| next()).collect();
            let fast = simulate_belady(&trace, cap);
            let slow = naive_belady(&trace, cap);
            assert_eq!(fast.misses, slow.misses, "cap {cap}");
        }
    }

    #[test]
    fn belady_never_worse_than_lru() {
        use crate::cache::{CacheLevel, Lookup};
        use crate::policy::PolicyKind;
        let mut state = 999u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 20) as u32
        };
        let trace: Vec<u32> = (0..500).map(|_| next()).collect();
        for cap in [2usize, 5, 10] {
            let opt = simulate_belady(&trace, cap);
            let mut lru: CacheLevel<u32> = CacheLevel::new(PolicyKind::Lru, cap);
            let mut lru_misses = 0;
            for &k in &trace {
                if lru.access(k) == Lookup::Miss {
                    lru_misses += 1;
                    lru.insert(k);
                }
            }
            assert!(opt.misses <= lru_misses, "cap {cap}: OPT {} > LRU {lru_misses}", opt.misses);
        }
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        simulate_belady::<u32>(&[1], 0);
    }
}
