//! The replacement-policy abstraction.
//!
//! A policy tracks the set of resident keys of one cache level and answers
//! "who should go?" when space is needed. The paper compares its
//! application-aware scheme against FIFO and LRU (§V); ARC, CLOCK, LFU and
//! an offline Belady oracle are provided as additional baselines.

use std::hash::Hash;

/// Replacement bookkeeping for one cache level.
///
/// The cache core calls `on_insert` / `on_hit` to report residency changes
/// and `choose_victim` to pick an eviction candidate. `is_evictable` lets
/// the caller exclude keys (the paper's Algorithm 1 only evicts blocks whose
/// last-use time is strictly older than the current view step).
pub trait ReplacementPolicy<K: Copy + Eq + Hash>: Send {
    /// A new key became resident. The key is guaranteed absent beforehand.
    fn on_insert(&mut self, key: K);

    /// A resident key was accessed (cache hit).
    fn on_hit(&mut self, key: K);

    /// Pick a victim among resident keys for which `is_evictable` returns
    /// `true`, remove it from the policy's bookkeeping, and return it.
    /// Returns `None` when every resident key is protected.
    fn choose_victim(&mut self, is_evictable: &mut dyn FnMut(&K) -> bool) -> Option<K>;

    /// A key was removed externally (invalidation); drop bookkeeping.
    fn on_remove(&mut self, key: &K);

    /// Number of resident keys tracked.
    fn len(&self) -> usize;

    /// `true` when no keys are tracked.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when the key is tracked as resident.
    fn contains(&self, key: &K) -> bool;

    /// Policy name for reports ("fifo", "lru", ...).
    fn name(&self) -> &'static str;
}

/// Which built-in policy a cache level should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum PolicyKind {
    /// First-In First-Out (paper baseline).
    Fifo,
    /// Least Recently Used (paper baseline).
    Lru,
    /// Second-chance CLOCK approximation of LRU.
    Clock,
    /// Least Frequently Used with FIFO tie-break.
    Lfu,
    /// Adaptive Replacement Cache (Megiddo & Modha), cited in §II.
    Arc,
    /// 2Q (Johnson & Shasha): scan-resistant probation + protected LRU.
    TwoQ,
    /// Most-Recently-Used: the loop-pathology antidote.
    Mru,
    /// LIRS (Jiang & Zhang): inter-reference-recency based, loop/scan
    /// resistant.
    Lirs,
    /// Segmented LRU (probation + protected segments).
    Slru,
}

impl PolicyKind {
    /// Every built-in policy, in stable code order — the candidate zoo the
    /// shadow scorer and the adaptive policy selector draw from.
    pub const ALL: &'static [PolicyKind] = &[
        PolicyKind::Fifo,
        PolicyKind::Lru,
        PolicyKind::Clock,
        PolicyKind::Lfu,
        PolicyKind::Arc,
        PolicyKind::TwoQ,
        PolicyKind::Mru,
        PolicyKind::Lirs,
        PolicyKind::Slru,
    ];

    /// Instantiate the policy for keys of type `K`.
    pub fn build<K: Copy + Eq + Hash + Ord + Send + 'static>(
        self,
        capacity: usize,
    ) -> Box<dyn ReplacementPolicy<K>> {
        match self {
            PolicyKind::Fifo => Box::new(crate::fifo::FifoPolicy::new()),
            PolicyKind::Lru => Box::new(crate::lru::LruPolicy::new()),
            PolicyKind::Clock => Box::new(crate::clock::ClockPolicy::new()),
            PolicyKind::Lfu => Box::new(crate::lfu::LfuPolicy::new()),
            PolicyKind::Arc => Box::new(crate::arc::ArcPolicy::new(capacity)),
            PolicyKind::TwoQ => Box::new(crate::twoq::TwoQPolicy::new(capacity)),
            PolicyKind::Mru => Box::new(crate::mru::MruPolicy::new()),
            PolicyKind::Lirs => Box::new(crate::lirs::LirsPolicy::new(capacity)),
            PolicyKind::Slru => Box::new(crate::slru::SlruPolicy::new(capacity)),
        }
    }

    /// Stable small numeric code, used for telemetry eviction attribution
    /// (the `arg` of `cache_evict` events). Never reuse or renumber.
    pub fn code(&self) -> u8 {
        match self {
            PolicyKind::Fifo => 0,
            PolicyKind::Lru => 1,
            PolicyKind::Clock => 2,
            PolicyKind::Lfu => 3,
            PolicyKind::Arc => 4,
            PolicyKind::TwoQ => 5,
            PolicyKind::Mru => 6,
            PolicyKind::Lirs => 7,
            PolicyKind::Slru => 8,
        }
    }

    /// Inverse of [`PolicyKind::code`]; `None` for unknown codes.
    pub fn from_code(code: u8) -> Option<PolicyKind> {
        match code {
            0 => Some(PolicyKind::Fifo),
            1 => Some(PolicyKind::Lru),
            2 => Some(PolicyKind::Clock),
            3 => Some(PolicyKind::Lfu),
            4 => Some(PolicyKind::Arc),
            5 => Some(PolicyKind::TwoQ),
            6 => Some(PolicyKind::Mru),
            7 => Some(PolicyKind::Lirs),
            8 => Some(PolicyKind::Slru),
            _ => None,
        }
    }

    /// Report label.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::Fifo => "FIFO",
            PolicyKind::Lru => "LRU",
            PolicyKind::Clock => "CLOCK",
            PolicyKind::Lfu => "LFU",
            PolicyKind::Arc => "ARC",
            PolicyKind::TwoQ => "2Q",
            PolicyKind::Mru => "MRU",
            PolicyKind::Lirs => "LIRS",
            PolicyKind::Slru => "SLRU",
        }
    }
}

#[cfg(test)]
mod kind_tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let all = [
            PolicyKind::Fifo,
            PolicyKind::Lru,
            PolicyKind::Clock,
            PolicyKind::Lfu,
            PolicyKind::Arc,
            PolicyKind::TwoQ,
            PolicyKind::Mru,
            PolicyKind::Lirs,
            PolicyKind::Slru,
        ];
        let mut seen = std::collections::HashSet::new();
        for k in all {
            assert!(seen.insert(k.code()), "duplicate code for {:?}", k);
        }
        // Locked-in values: telemetry traces persist across versions.
        assert_eq!(PolicyKind::Fifo.code(), 0);
        assert_eq!(PolicyKind::Lru.code(), 1);
        assert_eq!(PolicyKind::Slru.code(), 8);
        // from_code is the exact inverse.
        for k in all {
            assert_eq!(PolicyKind::from_code(k.code()), Some(k));
        }
        assert_eq!(PolicyKind::from_code(200), None);
    }
}

#[cfg(test)]
pub(crate) mod conformance {
    //! Shared behavioural checks every policy implementation must pass.
    use super::*;

    /// Insert `n` keys, verify tracking, evict them all.
    pub fn basic_lifecycle(mut p: Box<dyn ReplacementPolicy<u32>>) {
        assert!(p.is_empty());
        for k in 0..10u32 {
            p.on_insert(k);
        }
        assert_eq!(p.len(), 10);
        assert!(p.contains(&3));
        assert!(!p.contains(&99));

        let mut evicted = Vec::new();
        while let Some(v) = p.choose_victim(&mut |_| true) {
            assert!(!p.contains(&v), "victim must be removed from policy");
            evicted.push(v);
        }
        assert_eq!(evicted.len(), 10);
        assert!(p.is_empty());
        // No duplicates among victims.
        let mut sorted = evicted.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
    }

    /// choose_victim must respect the evictability predicate.
    pub fn respects_pinning(mut p: Box<dyn ReplacementPolicy<u32>>) {
        for k in 0..5u32 {
            p.on_insert(k);
        }
        // Only key 3 may be evicted.
        let v = p.choose_victim(&mut |k| *k == 3);
        assert_eq!(v, Some(3));
        // Nothing evictable -> None, and nothing is removed.
        let v = p.choose_victim(&mut |_| false);
        assert_eq!(v, None);
        assert_eq!(p.len(), 4);
    }

    /// on_remove drops bookkeeping so the key is never chosen later.
    pub fn external_removal(mut p: Box<dyn ReplacementPolicy<u32>>) {
        for k in 0..4u32 {
            p.on_insert(k);
        }
        p.on_remove(&2);
        assert_eq!(p.len(), 3);
        let mut victims = Vec::new();
        while let Some(v) = p.choose_victim(&mut |_| true) {
            victims.push(v);
        }
        assert!(!victims.contains(&2));
    }
}
