//! Property-based tests for the cache substrate: every policy must uphold
//! the residency bookkeeping invariants under arbitrary operation
//! sequences, and the hierarchy must respect capacity and inclusion.

use proptest::prelude::*;
use std::collections::HashSet;
use viz_cache::{
    simulate_belady, AccessClass, CacheLevel, Hierarchy, Lookup, PolicyKind, ReplacementPolicy,
};

#[derive(Debug, Clone)]
enum Op {
    Access(u32),
    Insert(u32),
    Remove(u32),
    Evict,
}

fn op_strategy(key_space: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..key_space).prop_map(Op::Access),
        (0..key_space).prop_map(Op::Insert),
        (0..key_space).prop_map(Op::Remove),
        Just(Op::Evict),
    ]
}

fn all_policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::Fifo,
        PolicyKind::Lru,
        PolicyKind::Clock,
        PolicyKind::Lfu,
        PolicyKind::Arc,
        PolicyKind::TwoQ,
        PolicyKind::Mru,
        PolicyKind::Lirs,
        PolicyKind::Slru,
    ]
}

proptest! {
    /// A reference-model check: the policy's resident set must always match
    /// a plain HashSet driven by the same operations.
    #[test]
    fn policy_tracks_residency_exactly(
        ops in prop::collection::vec(op_strategy(24), 1..300),
    ) {
        for kind in all_policies() {
            let mut policy: Box<dyn ReplacementPolicy<u32>> = kind.build(64);
            let mut model: HashSet<u32> = HashSet::new();
            for op in &ops {
                match *op {
                    Op::Access(k) => {
                        if model.contains(&k) {
                            policy.on_hit(k);
                        }
                    }
                    Op::Insert(k) => {
                        if !model.contains(&k) {
                            policy.on_insert(k);
                            model.insert(k);
                        }
                    }
                    Op::Remove(k) => {
                        if model.contains(&k) {
                            policy.on_remove(&k);
                            model.remove(&k);
                        }
                    }
                    Op::Evict => {
                        if let Some(v) = policy.choose_victim(&mut |_| true) {
                            prop_assert!(model.remove(&v),
                                "{}: evicted non-resident {v}", kind.label());
                        } else {
                            prop_assert!(model.is_empty(),
                                "{}: refused eviction with {} resident", kind.label(), model.len());
                        }
                    }
                }
                prop_assert_eq!(policy.len(), model.len(), "{} len drift", kind.label());
                for k in &model {
                    prop_assert!(policy.contains(k), "{} lost key {k}", kind.label());
                }
            }
        }
    }

    /// Cache level never exceeds capacity (absent pinning) and never loses
    /// the most recently inserted key.
    #[test]
    fn cache_level_respects_capacity(
        keys in prop::collection::vec(0u32..64, 1..400),
        cap in 1usize..32,
    ) {
        for kind in all_policies() {
            let mut c: CacheLevel<u32> = CacheLevel::new(kind, cap);
            for &k in &keys {
                if c.access(k) == Lookup::Miss {
                    c.insert(k);
                }
                prop_assert!(c.len() <= cap, "{} over capacity", kind.label());
                prop_assert!(c.contains(&k), "{} dropped fresh insert", kind.label());
            }
        }
    }

    /// Belady's MIN is a true lower bound for every online policy.
    #[test]
    fn belady_is_a_lower_bound(
        trace in prop::collection::vec(0u32..32, 10..400),
        cap in 1usize..16,
    ) {
        let opt = simulate_belady(&trace, cap);
        for kind in all_policies() {
            let mut c: CacheLevel<u32> = CacheLevel::new(kind, cap);
            let mut misses = 0usize;
            for &k in &trace {
                if c.access(k) == Lookup::Miss {
                    misses += 1;
                    c.insert(k);
                }
            }
            prop_assert!(opt.misses <= misses,
                "MIN {} > {} {}", opt.misses, kind.label(), misses);
        }
    }

    /// Belady accounting is self-consistent.
    #[test]
    fn belady_accounting(trace in prop::collection::vec(0u32..40, 0..300), cap in 1usize..20) {
        let r = simulate_belady(&trace, cap);
        prop_assert_eq!(r.hits + r.misses, r.accesses);
        prop_assert_eq!(r.accesses, trace.len());
        // Compulsory misses: at least one per distinct key.
        let distinct = trace.iter().collect::<HashSet<_>>().len();
        prop_assert!(r.misses >= distinct.min(trace.len()));
    }

    /// Hierarchy: after any demand fetch the key is in the fastest tier,
    /// and tiers never exceed their capacities.
    #[test]
    fn hierarchy_fetch_invariants(
        keys in prop::collection::vec(0u32..128, 1..300),
        ratio_pct in 20u32..80,
    ) {
        let ratio = ratio_pct as f64 / 100.0;
        let mut h: Hierarchy<u32> = Hierarchy::paper_default(128, ratio, PolicyKind::Lru, 4096);
        let cap0 = h.tier_capacity(0);
        for &k in &keys {
            h.fetch(k, AccessClass::Demand);
            prop_assert!(h.in_fastest(&k));
            prop_assert!(h.fastest_len() <= cap0);
        }
        let s = h.stats();
        prop_assert_eq!(s.demand_accesses as usize, keys.len());
        prop_assert!(s.miss_rate() <= 1.0);
        // Every byte read was accounted to some level.
        prop_assert_eq!(s.total_bytes_read(), keys.len() as u64 * 4096);
    }

    /// Prefetching then demanding the same key yields a demand hit and the
    /// demand miss counter stays untouched by prefetch traffic.
    #[test]
    fn prefetch_isolation(keys in prop::collection::vec(0u32..32, 1..60)) {
        let mut h: Hierarchy<u32> = Hierarchy::paper_default(256, 0.5, PolicyKind::Lru, 1024);
        for &k in &keys {
            h.fetch(k, AccessClass::Prefetch);
        }
        prop_assert_eq!(h.stats().demand_accesses, 0);
        for &k in &keys {
            let o = h.fetch(k, AccessClass::Demand);
            prop_assert!(o.fast_hit, "prefetched key {k} missed");
        }
        prop_assert_eq!(h.stats().demand_fast_misses, 0);
    }
}
