//! Property-based tests for the geometry substrate.

use proptest::prelude::*;
use viz_geom::angle::{deg_to_rad, rad_to_deg};
use viz_geom::path::{CameraPath, RandomWalkPath, SphericalPath};
use viz_geom::sphere::SphericalCoord;
use viz_geom::{
    Aabb, Bvh, CameraPose, ConeFrustum, ExplorationDomain, PlaneFrustum, Quat, Ray, Vec3,
};

fn finite_vec3() -> impl Strategy<Value = Vec3> {
    (-100.0f64..100.0, -100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn nonzero_vec3() -> impl Strategy<Value = Vec3> {
    finite_vec3().prop_filter("nonzero", |v| v.norm() > 1e-6)
}

proptest! {
    #[test]
    fn dot_is_commutative(a in finite_vec3(), b in finite_vec3()) {
        prop_assert!((a.dot(b) - b.dot(a)).abs() < 1e-9);
    }

    #[test]
    fn cross_is_orthogonal(a in nonzero_vec3(), b in nonzero_vec3()) {
        let c = a.cross(b);
        // Orthogonality scaled by the magnitudes involved.
        let scale = a.norm() * b.norm() * c.norm().max(1.0);
        prop_assert!(c.dot(a).abs() <= 1e-9 * scale.max(1.0));
        prop_assert!(c.dot(b).abs() <= 1e-9 * scale.max(1.0));
    }

    #[test]
    fn triangle_inequality(a in finite_vec3(), b in finite_vec3()) {
        prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-9);
    }

    #[test]
    fn normalize_is_unit(v in nonzero_vec3()) {
        prop_assert!((v.normalize().norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rotation_preserves_norm_and_angle(
        v in nonzero_vec3(),
        axis in nonzero_vec3(),
        angle in -6.0f64..6.0,
    ) {
        let r = v.rotate_around(axis, angle);
        prop_assert!((r.norm() - v.norm()).abs() < 1e-6 * v.norm().max(1.0));
    }

    #[test]
    fn angle_between_is_symmetric_and_bounded(a in nonzero_vec3(), b in nonzero_vec3()) {
        let ab = a.angle_between(b);
        prop_assert!((ab - b.angle_between(a)).abs() < 1e-12);
        prop_assert!((0.0..=std::f64::consts::PI + 1e-12).contains(&ab));
    }

    #[test]
    fn spherical_roundtrip(v in nonzero_vec3()) {
        let back = SphericalCoord::from_cartesian(v).to_cartesian();
        prop_assert!(v.distance(back) < 1e-6 * v.norm().max(1.0));
    }

    #[test]
    fn aabb_union_contains_operands(
        a in finite_vec3(), b in finite_vec3(),
        c in finite_vec3(), d in finite_vec3(),
    ) {
        let x = Aabb::new(a, b);
        let y = Aabb::new(c, d);
        let u = x.union(&y);
        for corner in x.corners().into_iter().chain(y.corners()) {
            prop_assert!(u.contains(corner));
        }
    }

    #[test]
    fn aabb_clamp_is_inside_and_idempotent(a in finite_vec3(), b in finite_vec3(), p in finite_vec3()) {
        let bb = Aabb::new(a, b);
        let q = bb.clamp_point(p);
        prop_assert!(bb.contains(q));
        prop_assert_eq!(bb.clamp_point(q), q);
    }

    #[test]
    fn ray_aabb_hit_points_are_on_boundary_or_inside(
        origin in finite_vec3(),
        dir in nonzero_vec3(),
        a in finite_vec3(),
        b in finite_vec3(),
    ) {
        let ray = Ray::new(origin, dir);
        let bb = Aabb::new(a, b);
        if let Some((t0, t1)) = ray.intersect_aabb(&bb) {
            prop_assert!(t0 <= t1);
            prop_assert!(t0 >= 0.0);
            // Entry/exit points are within the (slightly inflated) box.
            let eps = 1e-6 * (1.0 + bb.extent().norm() + origin.norm());
            let grown = Aabb::new(bb.min - Vec3::splat(eps), bb.max + Vec3::splat(eps));
            prop_assert!(grown.contains(ray.at(t0)));
            prop_assert!(grown.contains(ray.at(t1)));
        }
    }

    #[test]
    fn cone_contains_its_axis_points(
        apex in finite_vec3(),
        dir in nonzero_vec3(),
        half_deg in 1.0f64..80.0,
        t in 0.0f64..50.0,
    ) {
        let cone = ConeFrustum::new(apex, dir.normalize(), deg_to_rad(half_deg));
        prop_assert!(cone.contains_point(apex + dir.normalize() * t));
    }

    #[test]
    fn spherical_path_step_is_exact(step in 0.5f64..40.0, n in 2usize..60) {
        let dom = ExplorationDomain::new(Vec3::ZERO, 1.5, 5.0);
        let poses = SphericalPath::new(dom, 2.5, step, 0.5).generate(n);
        for w in poses.windows(2) {
            let got = rad_to_deg(w[0].direction_change(&w[1]));
            prop_assert!((got - step).abs() < 1e-6, "step {} got {}", step, got);
        }
    }

    #[test]
    fn random_path_steps_within_range(
        lo in 0.0f64..10.0,
        extra in 0.1f64..10.0,
        seed in 0u64..1000,
    ) {
        let hi = lo + extra;
        let dom = ExplorationDomain::new(Vec3::ZERO, 1.5, 5.0);
        let poses = RandomWalkPath::new(dom, 2.5, lo, hi, 0.5, seed)
            .with_distance_jitter(0.0)
            .generate(30);
        for w in poses.windows(2) {
            let got = rad_to_deg(w[0].direction_change(&w[1]));
            prop_assert!(got >= lo - 1e-6 && got <= hi + 1e-6);
        }
    }

    /// A symmetric square frustum circumscribes the cone of the same view
    /// angle: every cone-visible point (inside the clip range) must also be
    /// inside the plane frustum.
    #[test]
    fn plane_frustum_contains_cone(
        theta in 10.0f64..170.0,
        phi in 0.0f64..360.0,
        d in 1.5f64..5.0,
        angle_deg in 10.0f64..70.0,
        off_frac in 0.0f64..0.95,
        spin in 0.0f64..6.28,
        depth in 0.2f64..4.0,
    ) {
        let pose = CameraPose::orbit(theta, phi, d, angle_deg);
        let cone = ConeFrustum::from_pose(&pose);
        let pf = PlaneFrustum::from_pose(&pose, 0.05, 100.0);
        // Build a point at `depth` along the axis, offset by a fraction of
        // the cone radius in a random tangential direction.
        let tangent = cone.axis.any_orthonormal().rotate_around(cone.axis, spin);
        let radius = depth * cone.half_angle().tan() * off_frac;
        let p = cone.apex + cone.axis * depth + tangent * radius;
        prop_assert!(cone.contains_point(p), "construction should be in-cone");
        prop_assert!(pf.contains_point(p), "plane frustum must circumscribe the cone");
    }

    /// Quaternion slerp endpoints and rotation-composition sanity under
    /// random axes/angles.
    #[test]
    fn quat_slerp_rotates_consistently(
        axis in nonzero_vec3(),
        a1 in -3.0f64..3.0,
        a2 in -3.0f64..3.0,
        t in 0.0f64..1.0,
        v in nonzero_vec3(),
    ) {
        let qa = Quat::from_axis_angle(axis, a1);
        let qb = Quat::from_axis_angle(axis, a2);
        let q = qa.slerp(qb, t);
        // Same axis ⇒ slerp is angle interpolation along the shorter arc.
        let r = q.rotate(v);
        prop_assert!((r.norm() - v.norm()).abs() < 1e-9 * v.norm().max(1.0));
        // Unit norm is preserved.
        prop_assert!((q.norm() - 1.0).abs() < 1e-9);
    }

    /// BVH-accelerated cone queries return exactly the brute-force Eq. 1
    /// visible set — same members, same (ascending) order — for randomized
    /// box soups, camera poses and view angles.
    #[test]
    fn bvh_cone_query_matches_linear_scan(
        corners in prop::collection::vec((finite_vec3(), finite_vec3()), 0..80),
        theta in 0.0f64..180.0,
        phi in 0.0f64..360.0,
        d in 1.2f64..6.0,
        angle_deg in 2.0f64..120.0,
    ) {
        let boxes: Vec<Aabb> = corners.into_iter().map(|(a, b)| Aabb::new(a, b)).collect();
        let bvh = Bvh::build(&boxes);
        let pose = CameraPose::orbit(theta, phi, d, angle_deg);
        let cone = ConeFrustum::from_pose(&pose);
        let brute: Vec<u32> = boxes
            .iter()
            .enumerate()
            .filter_map(|(i, b)| cone.intersects_block_corners(b).then_some(i as u32))
            .collect();
        prop_assert_eq!(bvh.cone_query(&cone), brute);
    }

    #[test]
    fn pose_direction_distance_roundtrip(
        dir in nonzero_vec3(),
        d in 0.1f64..50.0,
    ) {
        let pose = CameraPose::from_direction_distance(dir, d, Vec3::ZERO, 0.5);
        prop_assert!((pose.distance() - d).abs() < 1e-9 * d.max(1.0));
        prop_assert!(pose.view_direction().distance(dir.normalize()) < 1e-9);
    }
}
