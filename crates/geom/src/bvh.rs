//! Flat, arena-allocated bounding-volume hierarchy over AABBs.
//!
//! The paper's pre-processing (§IV-B) and per-step ground truth evaluate the
//! Eq. 1 cone test against *every* block of the layout; this module replaces
//! those linear scans with a BVH traversal. Each node caches its bounding
//! sphere, and traversal classifies it with the trig-free
//! [`ConeFrustum::classify_sphere`]: `Outside` subtrees are pruned, `Inside`
//! subtrees are emitted wholesale (every contained corner test is trivially
//! true inside a convex cone), and only the *boundary* (`Crossing`) leaves
//! in between run the exact Eq. 1 corner test — so query results are
//! **identical** to a brute-force scan, with no approximation drift.
//!
//! The tree is stored as a flat arena (`Vec` of nodes, left child adjacent
//! to its parent) built by deterministic median splits over primitive
//! centroids, so builds are reproducible across runs and platforms.

use crate::aabb::Aabb;
use crate::frustum::{ConeFrustum, SphereClass};
use crate::vec3::Vec3;

/// Primitives per leaf. Tuned on the paper-scale 32 768-block grid: 8 beats
/// both 4 (deeper arena, more sphere tests) and 16 (boundary leaves run too
/// many exact corner tests).
const LEAF_SIZE: usize = 8;

/// One arena node. Every node records the contiguous primitive range its
/// subtree covers (the build reorders primitives so subtrees are always
/// contiguous), which lets fully-contained subtrees be emitted wholesale.
/// The left child is always at `self + 1`; `right == 0` marks a leaf (the
/// root is index 0 and can never be anyone's right child).
#[derive(Debug, Clone, Copy)]
struct BvhNode {
    /// Bounds of everything below this node.
    bounds: Aabb,
    /// Center of the bounding sphere of `bounds`, cached for traversal.
    center: Vec3,
    /// Radius of the bounding sphere of `bounds`, cached for traversal.
    radius: f64,
    /// Arena index of the right child; 0 for leaves.
    right: u32,
    /// First primitive slot of this subtree.
    first: u32,
    /// Number of primitives in this subtree.
    count: u32,
}

/// A flat BVH over a fixed set of AABBs (e.g. the blocks of a
/// `BrickLayout`). Primitive indices returned by queries refer to the
/// *original* slice order passed to [`Bvh::build`].
#[derive(Debug, Clone)]
pub struct Bvh {
    /// Arena of nodes; `nodes[0]` is the root (when non-empty).
    nodes: Vec<BvhNode>,
    /// Primitive bounds reordered into traversal order (leaf locality).
    prim_bounds: Vec<Aabb>,
    /// Original index of each reordered primitive slot.
    prim_ids: Vec<u32>,
}

impl Bvh {
    /// Build a BVH over `bounds`. Deterministic: the same input always
    /// produces the same arena.
    pub fn build(bounds: &[Aabb]) -> Self {
        let n = bounds.len();
        let mut prims: Vec<(u32, Aabb)> =
            bounds.iter().enumerate().map(|(i, b)| (i as u32, *b)).collect();
        let mut nodes = Vec::with_capacity((2 * n).max(1));
        if n > 0 {
            build_node(&mut prims, 0, n, &mut nodes);
        }
        let (prim_ids, prim_bounds) = prims.into_iter().unzip();
        Bvh { nodes, prim_bounds, prim_ids }
    }

    /// Number of primitives indexed.
    pub fn len(&self) -> usize {
        self.prim_ids.len()
    }

    /// `true` when the tree indexes no primitives.
    pub fn is_empty(&self) -> bool {
        self.prim_ids.is_empty()
    }

    /// Number of arena nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Approximate in-memory footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<BvhNode>()
            + self.prim_bounds.len() * std::mem::size_of::<Aabb>()
            + self.prim_ids.len() * 4
    }

    /// Append the original indices of every primitive whose AABB passes the
    /// exact Eq. 1 corner test against `cone`. Each node's cached bounding
    /// sphere is classified once: `Outside` subtrees are pruned, `Inside`
    /// subtrees emitted wholesale (every corner of every contained primitive
    /// is inside the convex cone, so each corner test is trivially true),
    /// and `Crossing` leaves run the exact test — the result set equals a
    /// linear scan with [`ConeFrustum::intersects_block_corners`]; the
    /// *order* of appended indices follows the traversal, not the original
    /// order.
    pub fn cone_query_into(&self, cone: &ConeFrustum, out: &mut Vec<u32>) {
        if self.nodes.is_empty() {
            return;
        }
        let mut stack: Vec<u32> = Vec::with_capacity(64);
        stack.push(0);
        while let Some(ni) = stack.pop() {
            let node = self.nodes[ni as usize];
            match cone.classify_sphere(node.center, node.radius) {
                SphereClass::Outside => {}
                SphereClass::Inside => {
                    let range = node.first as usize..(node.first + node.count) as usize;
                    out.extend_from_slice(&self.prim_ids[range]);
                }
                SphereClass::Crossing => {
                    if node.right == 0 {
                        let range = node.first as usize..(node.first + node.count) as usize;
                        for slot in range {
                            if cone.intersects_block_corners(&self.prim_bounds[slot]) {
                                out.push(self.prim_ids[slot]);
                            }
                        }
                    } else {
                        stack.push(node.right);
                        stack.push(ni + 1); // left child is adjacent
                    }
                }
            }
        }
    }

    /// Original indices of every cone-visible primitive, sorted ascending —
    /// bit-identical to the brute-force scan's output order.
    pub fn cone_query(&self, cone: &ConeFrustum) -> Vec<u32> {
        let mut out = Vec::new();
        self.cone_query_into(cone, &mut out);
        out.sort_unstable();
        out
    }
}

/// Recursively build the subtree for `prims[start..end]`, appending to the
/// arena in pre-order (left child adjacent to its parent). Returns the arena
/// index of the created node.
fn build_node(
    prims: &mut [(u32, Aabb)],
    start: usize,
    end: usize,
    nodes: &mut Vec<BvhNode>,
) -> u32 {
    let idx = nodes.len() as u32;
    let mut bb = prims[start].1;
    for p in &prims[start + 1..end] {
        bb = bb.union(&p.1);
    }
    let count = end - start;
    nodes.push(BvhNode {
        bounds: bb,
        center: bb.center(),
        radius: bb.bounding_radius(),
        right: 0,
        first: start as u32,
        count: count as u32,
    });
    if count <= LEAF_SIZE {
        return idx;
    }

    // Split on the longest axis of the centroid bounds at the median.
    let mut c_min = prims[start].1.center();
    let mut c_max = c_min;
    for p in &prims[start + 1..end] {
        let c = p.1.center();
        c_min = c_min.min(c);
        c_max = c_max.max(c);
    }
    let e = c_max - c_min;
    let axis = if e.x >= e.y && e.x >= e.z {
        0
    } else if e.y >= e.z {
        1
    } else {
        2
    };
    // Degenerate centroid spread (all centers coincide): keep as a fat leaf
    // rather than recursing forever.
    if e.x.max(e.y).max(e.z) <= 0.0 {
        return idx;
    }

    let key = |p: &(u32, Aabb)| -> (f64, u32) {
        let c = p.1.center();
        let v = match axis {
            0 => c.x,
            1 => c.y,
            _ => c.z,
        };
        (v, p.0)
    };
    let mid = count / 2;
    prims[start..end].select_nth_unstable_by(mid, |a, b| {
        let (ka, ia) = key(a);
        let (kb, ib) = key(b);
        // Total order: centroid coordinate, ties broken by original index
        // for determinism (coordinates are finite by construction).
        ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal).then(ia.cmp(&ib))
    });

    // Now an internal node: left subtree lands at idx + 1.
    build_node(prims, start, start + mid, nodes);
    let right = build_node(prims, start + mid, end, nodes);
    nodes[idx as usize].right = right;
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::angle::deg_to_rad;
    use crate::camera::CameraPose;
    use crate::vec3::Vec3;

    /// A regular grid of boxes tiling `[-1, 1]^3`, like a brick layout.
    fn grid_boxes(per_axis: usize) -> Vec<Aabb> {
        let step = 2.0 / per_axis as f64;
        let mut out = Vec::new();
        for z in 0..per_axis {
            for y in 0..per_axis {
                for x in 0..per_axis {
                    let min = Vec3::new(
                        -1.0 + x as f64 * step,
                        -1.0 + y as f64 * step,
                        -1.0 + z as f64 * step,
                    );
                    out.push(Aabb::new(min, min + Vec3::splat(step)));
                }
            }
        }
        out
    }

    fn brute(cone: &ConeFrustum, bounds: &[Aabb]) -> Vec<u32> {
        bounds
            .iter()
            .enumerate()
            .filter_map(|(i, b)| cone.intersects_block_corners(b).then_some(i as u32))
            .collect()
    }

    #[test]
    fn empty_bvh_queries_nothing() {
        let bvh = Bvh::build(&[]);
        assert!(bvh.is_empty());
        let pose = CameraPose::new(Vec3::new(0.0, 0.0, 3.0), Vec3::ZERO, deg_to_rad(30.0));
        assert!(bvh.cone_query(&ConeFrustum::from_pose(&pose)).is_empty());
    }

    #[test]
    fn matches_brute_force_on_grid() {
        let boxes = grid_boxes(8);
        let bvh = Bvh::build(&boxes);
        assert_eq!(bvh.len(), boxes.len());
        for (theta, phi, d, ang) in [
            (0.0, 0.0, 2.5, 15.0),
            (45.0, 30.0, 2.0, 30.0),
            (90.0, 200.0, 3.2, 60.0),
            (150.0, 77.0, 2.8, 5.0),
        ] {
            let pose = CameraPose::orbit(theta, phi, d, ang);
            let cone = ConeFrustum::from_pose(&pose);
            assert_eq!(bvh.cone_query(&cone), brute(&cone, &boxes), "pose {theta},{phi},{d},{ang}");
        }
    }

    #[test]
    fn apex_inside_a_block_is_found() {
        let boxes = grid_boxes(4);
        let bvh = Bvh::build(&boxes);
        // Camera inside the volume with a very narrow cone: the containing
        // block must still be reported (Eq. 1's apex-containment clause).
        let pose =
            CameraPose::new(Vec3::new(0.3, 0.3, 0.3), Vec3::new(0.9, 0.9, 0.9), deg_to_rad(2.0));
        let cone = ConeFrustum::from_pose(&pose);
        let got = bvh.cone_query(&cone);
        assert_eq!(got, brute(&cone, &boxes));
        let hit = boxes.iter().position(|b| b.contains(pose.position)).unwrap() as u32;
        assert!(got.contains(&hit));
    }

    #[test]
    fn duplicate_boxes_are_all_reported() {
        // Degenerate input: many identical boxes (zero centroid spread).
        let boxes = vec![Aabb::new(Vec3::ZERO, Vec3::splat(0.5)); 37];
        let bvh = Bvh::build(&boxes);
        let pose = CameraPose::new(Vec3::new(0.0, 0.0, 3.0), Vec3::ZERO, deg_to_rad(30.0));
        let cone = ConeFrustum::from_pose(&pose);
        let got = bvh.cone_query(&cone);
        assert_eq!(got.len(), 37);
        assert_eq!(got, (0..37u32).collect::<Vec<_>>());
    }

    #[test]
    fn build_is_deterministic() {
        let boxes = grid_boxes(6);
        let a = Bvh::build(&boxes);
        let b = Bvh::build(&boxes);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.prim_ids, b.prim_ids);
    }

    #[test]
    fn approx_bytes_scales_with_input() {
        let small = Bvh::build(&grid_boxes(2));
        let big = Bvh::build(&grid_boxes(8));
        assert!(big.approx_bytes() > small.approx_bytes());
        assert!(small.approx_bytes() > 0);
    }
}
