//! Unit quaternions and spherical interpolation.
//!
//! Keyframed camera paths (§III-A's guided explorations: a scientist drops
//! waypoints around a feature and the tool flies smoothly between them)
//! need rotation interpolation that doesn't gimbal-lock or speed-wobble —
//! i.e. slerp on unit quaternions.

use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// A unit quaternion `w + xi + yj + zk` representing a 3D rotation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quat {
    /// Scalar part.
    pub w: f64,
    /// Vector part, x.
    pub x: f64,
    /// Vector part, y.
    pub y: f64,
    /// Vector part, z.
    pub z: f64,
}

impl Quat {
    /// The identity rotation.
    pub const IDENTITY: Quat = Quat { w: 1.0, x: 0.0, y: 0.0, z: 0.0 };

    /// Rotation of `angle` radians around the (non-zero) `axis`.
    pub fn from_axis_angle(axis: Vec3, angle: f64) -> Self {
        let a = axis.normalize();
        let (s, c) = (angle * 0.5).sin_cos();
        Quat { w: c, x: a.x * s, y: a.y * s, z: a.z * s }
    }

    /// The rotation taking unit vector `from` to unit vector `to` along
    /// the shortest arc. Antiparallel inputs rotate π around any
    /// perpendicular axis.
    pub fn between(from: Vec3, to: Vec3) -> Self {
        let f = from.normalize();
        let t = to.normalize();
        let d = f.dot(t);
        if d > 1.0 - 1e-12 {
            return Quat::IDENTITY;
        }
        if d < -1.0 + 1e-12 {
            // 180°: pick any perpendicular axis.
            return Quat::from_axis_angle(f.any_orthonormal(), std::f64::consts::PI);
        }
        let axis = f.cross(t);
        let w = 1.0 + d;
        Quat { w, x: axis.x, y: axis.y, z: axis.z }.normalize()
    }

    /// Quaternion norm.
    pub fn norm(self) -> f64 {
        (self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Normalize to unit length (panics on the zero quaternion).
    pub fn normalize(self) -> Quat {
        let n = self.norm();
        assert!(n > 1e-300, "cannot normalize a zero quaternion");
        Quat { w: self.w / n, x: self.x / n, y: self.y / n, z: self.z / n }
    }

    /// Hamilton product (composition: `self` applied after `rhs`).
    pub fn mul(self, rhs: Quat) -> Quat {
        Quat {
            w: self.w * rhs.w - self.x * rhs.x - self.y * rhs.y - self.z * rhs.z,
            x: self.w * rhs.x + self.x * rhs.w + self.y * rhs.z - self.z * rhs.y,
            y: self.w * rhs.y - self.x * rhs.z + self.y * rhs.w + self.z * rhs.x,
            z: self.w * rhs.z + self.x * rhs.y - self.y * rhs.x + self.z * rhs.w,
        }
    }

    /// Conjugate (inverse for unit quaternions).
    pub fn conjugate(self) -> Quat {
        Quat { w: self.w, x: -self.x, y: -self.y, z: -self.z }
    }

    /// Rotate a vector.
    pub fn rotate(self, v: Vec3) -> Vec3 {
        // q v q*
        let qv = Vec3::new(self.x, self.y, self.z);
        let uv = qv.cross(v);
        let uuv = qv.cross(uv);
        v + (uv * self.w + uuv) * 2.0
    }

    /// Angle of the rotation, in `[0, π]`.
    pub fn angle(self) -> f64 {
        2.0 * self.w.abs().clamp(0.0, 1.0).acos()
    }

    /// Spherical linear interpolation from `self` (t = 0) to `other`
    /// (t = 1), taking the shorter arc. Constant angular velocity.
    pub fn slerp(self, other: Quat, t: f64) -> Quat {
        let mut b = other;
        let mut dot = self.w * b.w + self.x * b.x + self.y * b.y + self.z * b.z;
        // Shorter arc: flip sign when the quaternions point apart.
        if dot < 0.0 {
            b = Quat { w: -b.w, x: -b.x, y: -b.y, z: -b.z };
            dot = -dot;
        }
        if dot > 1.0 - 1e-10 {
            // Nearly identical: lerp + renormalize avoids 0/0.
            return Quat {
                w: self.w + (b.w - self.w) * t,
                x: self.x + (b.x - self.x) * t,
                y: self.y + (b.y - self.y) * t,
                z: self.z + (b.z - self.z) * t,
            }
            .normalize();
        }
        let theta = dot.clamp(-1.0, 1.0).acos();
        let s = theta.sin();
        let wa = ((1.0 - t) * theta).sin() / s;
        let wb = (t * theta).sin() / s;
        Quat {
            w: self.w * wa + b.w * wb,
            x: self.x * wa + b.x * wb,
            y: self.y * wa + b.y * wb,
            z: self.z * wa + b.z * wb,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn close(a: Vec3, b: Vec3) -> bool {
        a.distance(b) < 1e-10
    }

    #[test]
    fn identity_rotates_nothing() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert!(close(Quat::IDENTITY.rotate(v), v));
    }

    #[test]
    fn quarter_turn_about_z() {
        let q = Quat::from_axis_angle(Vec3::Z, FRAC_PI_2);
        assert!(close(q.rotate(Vec3::X), Vec3::Y));
        assert!(close(q.rotate(Vec3::Y), -Vec3::X));
    }

    #[test]
    fn rotation_preserves_length() {
        let q = Quat::from_axis_angle(Vec3::new(1.0, 2.0, -1.0), 1.234);
        let v = Vec3::new(0.3, -4.0, 2.0);
        assert!((q.rotate(v).norm() - v.norm()).abs() < 1e-12);
    }

    #[test]
    fn composition_matches_sequential_rotation() {
        let q1 = Quat::from_axis_angle(Vec3::X, 0.7);
        let q2 = Quat::from_axis_angle(Vec3::Y, 1.1);
        let v = Vec3::new(1.0, 2.0, 3.0);
        let seq = q2.rotate(q1.rotate(v));
        let comp = q2.mul(q1).rotate(v);
        assert!(close(seq, comp));
    }

    #[test]
    fn conjugate_inverts() {
        let q = Quat::from_axis_angle(Vec3::new(1.0, 1.0, 0.0), 0.9);
        let v = Vec3::new(2.0, -1.0, 0.5);
        assert!(close(q.conjugate().rotate(q.rotate(v)), v));
    }

    #[test]
    fn between_maps_from_to_to() {
        let from = Vec3::new(1.0, 0.2, -0.3).normalize();
        let to = Vec3::new(-0.5, 1.0, 0.7).normalize();
        let q = Quat::between(from, to);
        assert!(close(q.rotate(from), to));
    }

    #[test]
    fn between_handles_degenerate_pairs() {
        let v = Vec3::new(0.0, 0.0, 1.0);
        assert!(close(Quat::between(v, v).rotate(v), v));
        let q = Quat::between(v, -v);
        assert!(close(q.rotate(v), -v));
        assert!((q.angle() - PI).abs() < 1e-9);
    }

    #[test]
    fn slerp_endpoints_are_exact() {
        let a = Quat::from_axis_angle(Vec3::Z, 0.3);
        let b = Quat::from_axis_angle(Vec3::Z, 1.7);
        let v = Vec3::X;
        assert!(close(a.slerp(b, 0.0).rotate(v), a.rotate(v)));
        assert!(close(a.slerp(b, 1.0).rotate(v), b.rotate(v)));
    }

    #[test]
    fn slerp_has_constant_angular_velocity() {
        let a = Quat::IDENTITY;
        let b = Quat::from_axis_angle(Vec3::Y, 1.6);
        let mut prev = a;
        let mut step0 = None;
        for i in 1..=10 {
            let q = a.slerp(b, i as f64 / 10.0);
            let delta = q.mul(prev.conjugate()).angle();
            if let Some(s0) = step0 {
                assert!((delta - s0 as f64).abs() < 1e-9, "wobble at step {i}");
            } else {
                step0 = Some(delta);
            }
            prev = q;
        }
        assert!((step0.unwrap() - 0.16).abs() < 1e-9);
    }

    #[test]
    fn slerp_takes_the_short_arc() {
        // b and -b are the same rotation; slerp must not take the long way.
        let a = Quat::from_axis_angle(Vec3::Z, 0.1);
        let b = Quat::from_axis_angle(Vec3::Z, 0.4);
        let neg_b = Quat { w: -b.w, x: -b.x, y: -b.y, z: -b.z };
        let mid1 = a.slerp(b, 0.5).rotate(Vec3::X);
        let mid2 = a.slerp(neg_b, 0.5).rotate(Vec3::X);
        assert!(close(mid1, mid2));
    }

    #[test]
    fn nearly_identical_slerp_is_stable() {
        let a = Quat::from_axis_angle(Vec3::Z, 0.5);
        let b = Quat::from_axis_angle(Vec3::Z, 0.5 + 1e-13);
        let q = a.slerp(b, 0.37);
        assert!((q.norm() - 1.0).abs() < 1e-12);
    }
}
