//! Minimal 3-component vector used throughout the workspace.
//!
//! The paper's geometry (Eq. 1 visibility test, the radius model of Fig. 10)
//! only needs dot products, norms and angles, so we keep this deliberately
//! small instead of pulling in a linear-algebra dependency.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A vector (or point) in `R^3`, `f64` throughout: the sampling tables are
/// built once offline, so precision is worth more than SIMD width here.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };
    /// Unit +X axis.
    pub const X: Vec3 = Vec3 { x: 1.0, y: 0.0, z: 0.0 };
    /// Unit +Y axis.
    pub const Y: Vec3 = Vec3 { x: 0.0, y: 1.0, z: 0.0 };
    /// Unit +Z axis.
    pub const Z: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 1.0 };

    /// Construct from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// All three components set to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot (inner) product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product (right-handed).
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * rhs.z - self.z * rhs.y,
            y: self.z * rhs.x - self.x * rhs.z,
            z: self.x * rhs.y - self.y * rhs.x,
        }
    }

    /// Euclidean (L2) norm, `|| v ||` in the paper's notation.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared L2 norm (avoids the square root).
    #[inline]
    pub fn norm_squared(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(self, rhs: Vec3) -> f64 {
        (self - rhs).norm()
    }

    /// Unit vector in the same direction. Returns `None` for (near-)zero
    /// vectors rather than producing NaNs.
    #[inline]
    pub fn try_normalize(self) -> Option<Vec3> {
        let n = self.norm();
        if n > 1e-300 {
            Some(self / n)
        } else {
            None
        }
    }

    /// Unit vector in the same direction; panics on the zero vector.
    #[inline]
    pub fn normalize(self) -> Vec3 {
        self.try_normalize().expect("cannot normalize a zero-length vector")
    }

    /// Angle between two vectors in radians, in `[0, pi]`.
    ///
    /// This is the `arccos` expression of the paper's Eq. 1; the argument is
    /// clamped to `[-1, 1]` so floating-point drift cannot produce NaN.
    #[inline]
    pub fn angle_between(self, rhs: Vec3) -> f64 {
        let denom = self.norm() * rhs.norm();
        if denom <= 1e-300 {
            return 0.0;
        }
        (self.dot(rhs) / denom).clamp(-1.0, 1.0).acos()
    }

    /// Linear interpolation: `self` at `t = 0`, `rhs` at `t = 1`.
    #[inline]
    pub fn lerp(self, rhs: Vec3, t: f64) -> Vec3 {
        self + (rhs - self) * t
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.min(rhs.x), self.y.min(rhs.y), self.z.min(rhs.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.max(rhs.x), self.y.max(rhs.y), self.z.max(rhs.z))
    }

    /// Component-wise product (Hadamard product).
    #[inline]
    pub fn mul_elem(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x * rhs.x, self.y * rhs.y, self.z * rhs.z)
    }

    /// `true` when every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Any unit vector orthogonal to `self` (which must be non-zero).
    /// Used to build tangent frames when perturbing view directions.
    pub fn any_orthonormal(self) -> Vec3 {
        let v = self.normalize();
        // Pick the axis least aligned with v to avoid degeneracy.
        let other = if v.x.abs() < 0.9 { Vec3::X } else { Vec3::Y };
        v.cross(other).normalize()
    }

    /// Rotate `self` around the (unit) `axis` by `angle` radians
    /// (Rodrigues' rotation formula).
    pub fn rotate_around(self, axis: Vec3, angle: f64) -> Vec3 {
        let k = axis.normalize();
        let (s, c) = angle.sin_cos();
        self * c + k.cross(self) * s + k * (k.dot(self) * (1.0 - c))
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl From<[f64; 3]> for Vec3 {
    fn from(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f64; 3] {
    fn from(v: Vec3) -> Self {
        [v.x, v.y, v.z]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn dot_of_orthogonal_axes_is_zero() {
        assert_eq!(Vec3::X.dot(Vec3::Y), 0.0);
        assert_eq!(Vec3::Y.dot(Vec3::Z), 0.0);
    }

    #[test]
    fn cross_follows_right_hand_rule() {
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
    }

    #[test]
    fn norm_of_345_triangle() {
        assert!(approx(Vec3::new(3.0, 4.0, 0.0).norm(), 5.0));
    }

    #[test]
    fn normalize_produces_unit_length() {
        let v = Vec3::new(1.0, 2.0, 3.0).normalize();
        assert!(approx(v.norm(), 1.0));
    }

    #[test]
    fn try_normalize_rejects_zero() {
        assert!(Vec3::ZERO.try_normalize().is_none());
    }

    #[test]
    fn angle_between_axes_is_right_angle() {
        assert!(approx(Vec3::X.angle_between(Vec3::Y), FRAC_PI_2));
    }

    #[test]
    fn angle_between_opposite_is_pi() {
        assert!(approx(Vec3::X.angle_between(-Vec3::X), PI));
    }

    #[test]
    fn angle_between_parallel_is_zero() {
        assert!(approx(Vec3::X.angle_between(Vec3::X * 7.0), 0.0));
    }

    #[test]
    fn angle_is_nan_free_under_drift() {
        // Two nearly identical vectors whose normalized dot may exceed 1.
        let a = Vec3::new(1.0, 1.0, 1.0);
        let b = a * (1.0 + 1e-16);
        assert!(a.angle_between(b).is_finite());
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::ZERO;
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn rotate_quarter_turn_about_z() {
        let r = Vec3::X.rotate_around(Vec3::Z, FRAC_PI_2);
        assert!(r.distance(Vec3::Y) < 1e-12);
    }

    #[test]
    fn rotate_preserves_norm() {
        let v = Vec3::new(1.0, -2.0, 0.5);
        let r = v.rotate_around(Vec3::new(0.3, 0.4, -0.8), 1.234);
        assert!(approx(v.norm(), r.norm()));
    }

    #[test]
    fn any_orthonormal_is_orthogonal_unit() {
        for v in [Vec3::X, Vec3::Y, Vec3::Z, Vec3::new(0.1, -3.0, 2.0)] {
            let o = v.any_orthonormal();
            assert!(approx(o.norm(), 1.0));
            assert!(v.dot(o).abs() < 1e-12);
        }
    }

    #[test]
    fn elementwise_min_max() {
        let a = Vec3::new(1.0, 5.0, -2.0);
        let b = Vec3::new(3.0, 2.0, 0.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 2.0, -2.0));
        assert_eq!(a.max(b), Vec3::new(3.0, 5.0, 0.0));
    }

    #[test]
    fn array_roundtrip() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        let a: [f64; 3] = v.into();
        assert_eq!(Vec3::from(a), v);
    }
}
