//! View-frustum visibility tests.
//!
//! The paper approximates the view frustum by a *cone* around the view
//! direction: a block `b` is visible from camera `v` when the angle φ
//! between `v→b_i` (any corner `b_i`) and `v→o` satisfies `φ < θ/2`
//! (Eq. 1). [`ConeFrustum`] implements exactly that. [`PlaneFrustum`] is the
//! exact six-plane test, provided for the renderer and for validating the
//! cone approximation in tests.

use crate::aabb::Aabb;
use crate::camera::CameraPose;
use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// The paper's conical frustum approximation (Eq. 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConeFrustum {
    /// Camera position (apex of the cone), the paper's `v` or `v'`.
    pub apex: Vec3,
    /// Unit axis of the cone: the view direction `v→o`.
    pub axis: Vec3,
    /// Half of the view angle, `θ/2`, in radians.
    pub half_angle: f64,
}

impl ConeFrustum {
    /// Cone for a camera pose looking at the volume centroid.
    pub fn from_pose(pose: &CameraPose) -> Self {
        ConeFrustum {
            apex: pose.position,
            axis: pose.view_direction(),
            half_angle: pose.view_angle * 0.5,
        }
    }

    /// Eq. 1 on a single point: `φ = arccos( (v→p)·(v→o) / (||v→p|| ||v→o||) )`,
    /// visible iff `φ <= θ/2`. A point at the apex is trivially visible.
    #[inline]
    pub fn contains_point(&self, p: Vec3) -> bool {
        let to_p = p - self.apex;
        let n = to_p.norm();
        if n <= 1e-300 {
            return true;
        }
        // cos φ >= cos(θ/2)  ⇔  φ <= θ/2 (cos is decreasing on [0, π]).
        to_p.dot(self.axis) / n >= self.half_angle.cos()
    }

    /// The paper's block visibility test: a block is visible when *any* of
    /// its eight corner points falls inside the cone.
    pub fn intersects_block_corners(&self, block: &Aabb) -> bool {
        block.corners().iter().any(|&c| self.contains_point(c))
            // A block completely surrounding the apex has all corners
            // outside any narrow cone yet is certainly visible.
            || block.contains(self.apex)
    }

    /// Conservative sphere-vs-cone test on the block's bounding sphere.
    /// Never misses a visible block (may over-include), making it suitable
    /// for prefetch candidate generation.
    pub fn intersects_block_sphere(&self, block: &Aabb) -> bool {
        let center = block.center();
        let radius = block.bounding_radius();
        let to_c = center - self.apex;
        let dist = to_c.norm();
        if dist <= radius {
            return true; // apex inside the bounding sphere
        }
        let angle_to_center = to_c.angle_between(self.axis);
        // Angular radius of the sphere as seen from the apex.
        let angular_radius = (radius / dist).clamp(-1.0, 1.0).asin();
        angle_to_center <= self.half_angle + angular_radius
    }
}

/// Exact six-plane perspective frustum (symmetric, square cross-section).
///
/// Planes store inward-pointing normals; a box is rejected when it lies
/// entirely on the outside of any plane (the standard p-vertex test).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlaneFrustum {
    /// `(normal, offset)` pairs: a point `p` is inside when
    /// `normal.dot(p) + offset >= 0` for all planes.
    planes: [(Vec3, f64); 6],
}

impl PlaneFrustum {
    /// Build from a camera pose with the given near/far clip distances.
    /// Aspect ratio is 1 (square image), matching the cone approximation.
    pub fn from_pose(pose: &CameraPose, near: f64, far: f64) -> Self {
        assert!(near > 0.0 && far > near, "need 0 < near < far");
        let basis = pose.basis();
        let (f, r, u) = (basis.forward, basis.right, basis.up);
        let apex = pose.position;
        let half = pose.view_angle * 0.5;
        let (s, c) = half.sin_cos();

        // Side plane normals tilt the forward axis by the half angle.
        let n_left = f * s + r * c;
        let n_right = f * s - r * c;
        let n_bottom = f * s + u * c;
        let n_top = f * s - u * c;
        let n_near = f;
        let n_far = -f;

        let mk = |n: Vec3, p: Vec3| (n, -n.dot(p));
        PlaneFrustum {
            planes: [
                mk(n_left, apex),
                mk(n_right, apex),
                mk(n_bottom, apex),
                mk(n_top, apex),
                mk(n_near, apex + f * near),
                mk(n_far, apex + f * far),
            ],
        }
    }

    /// Exact point containment.
    pub fn contains_point(&self, p: Vec3) -> bool {
        self.planes.iter().all(|(n, off)| n.dot(p) + off >= -1e-12)
    }

    /// Conservative AABB test: `false` only when the box is certainly
    /// outside (standard positive-vertex plane test).
    pub fn intersects_aabb(&self, aabb: &Aabb) -> bool {
        for (n, off) in &self.planes {
            // The corner of the box furthest along the plane normal.
            let p = Vec3::new(
                if n.x >= 0.0 { aabb.max.x } else { aabb.min.x },
                if n.y >= 0.0 { aabb.max.y } else { aabb.min.y },
                if n.z >= 0.0 { aabb.max.z } else { aabb.min.z },
            );
            if n.dot(p) + off < 0.0 {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::angle::deg_to_rad;

    fn looking_down_z(theta_deg: f64) -> ConeFrustum {
        let pose = CameraPose::new(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, deg_to_rad(theta_deg));
        ConeFrustum::from_pose(&pose)
    }

    #[test]
    fn cone_axis_point_is_visible() {
        let cone = looking_down_z(30.0);
        assert!(cone.contains_point(Vec3::ZERO));
        assert!(cone.contains_point(Vec3::new(0.0, 0.0, 2.0)));
    }

    #[test]
    fn cone_rejects_point_behind_camera() {
        let cone = looking_down_z(30.0);
        assert!(!cone.contains_point(Vec3::new(0.0, 0.0, 10.0)));
    }

    #[test]
    fn cone_boundary_angle() {
        let cone = looking_down_z(60.0); // half angle 30°
        // Point at exactly 29.9° off axis from apex: inside.
        let ang = deg_to_rad(29.9);
        let p = Vec3::new(0.0, 0.0, 5.0) + Vec3::new(ang.sin(), 0.0, -ang.cos()) * 3.0;
        assert!(cone.contains_point(p));
        // 30.1°: outside.
        let ang = deg_to_rad(30.1);
        let q = Vec3::new(0.0, 0.0, 5.0) + Vec3::new(ang.sin(), 0.0, -ang.cos()) * 3.0;
        assert!(!cone.contains_point(q));
    }

    #[test]
    fn apex_point_is_visible() {
        let cone = looking_down_z(30.0);
        assert!(cone.contains_point(cone.apex));
    }

    #[test]
    fn block_on_axis_is_visible_by_corners() {
        let cone = looking_down_z(40.0);
        let b = Aabb::new(Vec3::splat(-0.2), Vec3::splat(0.2));
        assert!(cone.intersects_block_corners(&b));
    }

    #[test]
    fn block_far_off_axis_is_invisible() {
        let cone = looking_down_z(40.0);
        let b = Aabb::new(Vec3::new(50.0, 0.0, -0.2), Vec3::new(50.4, 0.4, 0.2));
        assert!(!cone.intersects_block_corners(&b));
        assert!(!cone.intersects_block_sphere(&b));
    }

    #[test]
    fn block_containing_apex_is_visible() {
        let cone = looking_down_z(10.0);
        let b = Aabb::new(Vec3::new(-1.0, -1.0, 4.0), Vec3::new(1.0, 1.0, 6.0));
        assert!(cone.intersects_block_corners(&b));
    }

    #[test]
    fn sphere_test_is_superset_of_corner_test() {
        // The conservative test must never reject a block the corner test
        // accepts.
        let cone = looking_down_z(35.0);
        for ix in -4..4 {
            for iy in -4..4 {
                for iz in -4..4 {
                    let min = Vec3::new(ix as f64, iy as f64, iz as f64) * 0.5;
                    let b = Aabb::new(min, min + Vec3::splat(0.5));
                    if cone.intersects_block_corners(&b) {
                        assert!(
                            cone.intersects_block_sphere(&b),
                            "sphere test rejected a corner-visible block {b:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn plane_frustum_agrees_with_cone_on_axis() {
        let pose = CameraPose::new(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, deg_to_rad(40.0));
        let pf = PlaneFrustum::from_pose(&pose, 0.1, 100.0);
        assert!(pf.contains_point(Vec3::ZERO));
        assert!(!pf.contains_point(Vec3::new(0.0, 0.0, 10.0))); // behind
        assert!(!pf.contains_point(Vec3::new(0.0, 0.0, 4.95))); // before near
    }

    #[test]
    fn plane_frustum_rejects_off_axis_box() {
        let pose = CameraPose::new(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, deg_to_rad(40.0));
        let pf = PlaneFrustum::from_pose(&pose, 0.1, 100.0);
        let b = Aabb::new(Vec3::new(30.0, 30.0, -1.0), Vec3::new(31.0, 31.0, 0.0));
        assert!(!pf.intersects_aabb(&b));
        let on_axis = Aabb::new(Vec3::splat(-0.5), Vec3::splat(0.5));
        assert!(pf.intersects_aabb(&on_axis));
    }

    #[test]
    fn plane_frustum_is_conservative_for_straddling_boxes() {
        let pose = CameraPose::new(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, deg_to_rad(40.0));
        let pf = PlaneFrustum::from_pose(&pose, 0.1, 100.0);
        // A box straddling a side plane intersects.
        let b = Aabb::new(Vec3::new(-5.0, -0.5, -0.5), Vec3::new(0.0, 0.5, 0.5));
        assert!(pf.intersects_aabb(&b));
    }

    #[test]
    #[should_panic]
    fn plane_frustum_invalid_clip_panics() {
        let pose = CameraPose::new(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, 0.5);
        PlaneFrustum::from_pose(&pose, 1.0, 0.5);
    }
}
