//! View-frustum visibility tests.
//!
//! The paper approximates the view frustum by a *cone* around the view
//! direction: a block `b` is visible from camera `v` when the angle φ
//! between `v→b_i` (any corner `b_i`) and `v→o` satisfies `φ < θ/2`
//! (Eq. 1). [`ConeFrustum`] implements exactly that. [`PlaneFrustum`] is the
//! exact six-plane test, provided for the renderer and for validating the
//! cone approximation in tests.

use crate::aabb::Aabb;
use crate::camera::CameraPose;
use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// Three-way result of [`ConeFrustum::classify_sphere`]: where a bounding
/// sphere sits relative to the cone. `Outside` is *conservative* (never
/// claimed when any part of the sphere touches the cone) and `Inside` is
/// *exact* (only claimed when every point of the sphere is in the cone), so
/// a BVH traversal can prune on `Outside`, bulk-accept on `Inside`, and run
/// the exact per-corner test only on `Crossing` boundary nodes without ever
/// changing the result set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SphereClass {
    /// The sphere is certainly disjoint from the cone.
    Outside,
    /// The sphere may straddle the cone boundary — fall back to exact tests.
    Crossing,
    /// The sphere lies entirely inside the cone.
    Inside,
}

/// The paper's conical frustum approximation (Eq. 1).
///
/// `cos(θ/2)` and `sin(θ/2)` are precomputed at construction so the Eq. 1
/// inner loop is a dot-product compare, not a `cos()` per corner per block,
/// and sphere classification is trig-free; the angle fields are therefore
/// read-only behind accessors. The serialized form stays
/// `{apex, axis, half_angle}` — the derived terms are recomputed on
/// deserialization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(from = "ConeFrustumWire", into = "ConeFrustumWire")]
pub struct ConeFrustum {
    /// Camera position (apex of the cone), the paper's `v` or `v'`.
    pub apex: Vec3,
    /// Unit axis of the cone: the view direction `v→o`.
    pub axis: Vec3,
    /// Half of the view angle, `θ/2`, in radians.
    half_angle: f64,
    /// `cos(θ/2)`, hoisted out of [`Self::contains_point`].
    cos_half_angle: f64,
    /// `sin(θ/2)`, hoisted out of [`Self::classify_sphere`].
    sin_half_angle: f64,
}

/// Wire format of [`ConeFrustum`]: the derived cosine is not serialized.
#[derive(Clone, Copy, Serialize, Deserialize)]
#[serde(rename = "ConeFrustum")]
struct ConeFrustumWire {
    apex: Vec3,
    axis: Vec3,
    half_angle: f64,
}

impl From<ConeFrustumWire> for ConeFrustum {
    fn from(w: ConeFrustumWire) -> Self {
        ConeFrustum::new(w.apex, w.axis, w.half_angle)
    }
}

impl From<ConeFrustum> for ConeFrustumWire {
    fn from(c: ConeFrustum) -> Self {
        ConeFrustumWire { apex: c.apex, axis: c.axis, half_angle: c.half_angle }
    }
}

impl ConeFrustum {
    /// Cone with apex `apex`, unit axis `axis` and half angle `θ/2` radians.
    pub fn new(apex: Vec3, axis: Vec3, half_angle: f64) -> Self {
        let (sin_half_angle, cos_half_angle) = half_angle.sin_cos();
        ConeFrustum { apex, axis, half_angle, cos_half_angle, sin_half_angle }
    }

    /// Cone for a camera pose looking at the volume centroid.
    pub fn from_pose(pose: &CameraPose) -> Self {
        Self::new(pose.position, pose.view_direction(), pose.view_angle * 0.5)
    }

    /// Half of the view angle, `θ/2`, in radians.
    #[inline]
    pub fn half_angle(&self) -> f64 {
        self.half_angle
    }

    /// Precomputed `cos(θ/2)`.
    #[inline]
    pub fn cos_half_angle(&self) -> f64 {
        self.cos_half_angle
    }

    /// Precomputed `sin(θ/2)`.
    #[inline]
    pub fn sin_half_angle(&self) -> f64 {
        self.sin_half_angle
    }

    /// Eq. 1 on a single point: `φ = arccos( (v→p)·(v→o) / (||v→p|| ||v→o||) )`,
    /// visible iff `φ <= θ/2`. A point at the apex is trivially visible.
    #[inline]
    pub fn contains_point(&self, p: Vec3) -> bool {
        let to_p = p - self.apex;
        let n = to_p.norm();
        if n <= 1e-300 {
            return true;
        }
        // cos φ >= cos(θ/2)  ⇔  φ <= θ/2 (cos is decreasing on [0, π]);
        // multiplied through by ||v→p|| ≥ 0 to avoid the division.
        to_p.dot(self.axis) >= self.cos_half_angle * n
    }

    /// The paper's block visibility test: a block is visible when *any* of
    /// its eight corner points falls inside the cone.
    pub fn intersects_block_corners(&self, block: &Aabb) -> bool {
        block.corners().iter().any(|&c| self.contains_point(c))
            // A block completely surrounding the apex has all corners
            // outside any narrow cone yet is certainly visible.
            || block.contains(self.apex)
    }

    /// Exact whole-box containment: `true` only when every point of `block`
    /// lies inside the cone. Valid because a cone with half angle ≤ 90° is
    /// convex, so corner containment implies containment of the hull; wider
    /// (non-convex) cones conservatively return `false`.
    pub fn contains_aabb(&self, block: &Aabb) -> bool {
        self.cos_half_angle >= 0.0 && block.corners().iter().all(|&c| self.contains_point(c))
    }

    /// Conservative sphere-vs-cone test on the block's bounding sphere.
    /// Never misses a visible block (may over-include), making it suitable
    /// for prefetch candidate generation.
    pub fn intersects_block_sphere(&self, block: &Aabb) -> bool {
        self.classify_sphere(block.center(), block.bounding_radius()) != SphereClass::Outside
    }

    /// Classify a sphere against the cone without per-call trigonometry.
    ///
    /// For the common convex case (`θ/2 ≤ 90°`) the sphere center is mapped
    /// into the (axial, radial) half-plane: `a = (c−v)·axis` and
    /// `b = √(‖c−v‖² − a²)`. There the cone is the region below the boundary
    /// ray from the origin at angle `θ/2`, and
    /// `signed = a·sin(θ/2) − b·cos(θ/2)` is the signed distance to the
    /// boundary *line* (positive inside). Since the distance from any outside
    /// point to the cone set is at least its distance to that line, and the
    /// distance from any inside point to the lateral surface is at least
    /// `signed`:
    ///
    /// * `signed ≥ r`  ⇒ every sphere point is inside   → [`SphereClass::Inside`]
    /// * `signed < −r` ⇒ every sphere point is outside  → [`SphereClass::Outside`]
    /// * otherwise the sphere may straddle the boundary → [`SphereClass::Crossing`]
    ///
    /// Non-convex cones (`θ/2 > 90°`) fall back to comparing angular extents,
    /// which is valid for any half angle because the cone is an angular set.
    /// A sphere containing the apex is always `Crossing` (the exact corner
    /// test has an apex-containment clause the sphere cannot settle).
    pub fn classify_sphere(&self, center: Vec3, radius: f64) -> SphereClass {
        let to_c = center - self.apex;
        let dist2 = to_c.dot(to_c);
        if dist2 <= radius * radius {
            return SphereClass::Crossing; // apex inside the sphere
        }
        if self.cos_half_angle >= 0.0 {
            let a = to_c.dot(self.axis);
            let b = (dist2 - a * a).max(0.0).sqrt();
            let signed = a * self.sin_half_angle - b * self.cos_half_angle;
            if signed >= radius {
                SphereClass::Inside
            } else if signed < -radius {
                SphereClass::Outside
            } else {
                SphereClass::Crossing
            }
        } else {
            let dist = dist2.sqrt();
            let angle_to_center = to_c.angle_between(self.axis);
            // Angular radius of the sphere as seen from the apex.
            let angular_radius = (radius / dist).clamp(-1.0, 1.0).asin();
            if angle_to_center + angular_radius <= self.half_angle {
                SphereClass::Inside
            } else if angle_to_center - angular_radius > self.half_angle {
                SphereClass::Outside
            } else {
                SphereClass::Crossing
            }
        }
    }
}

/// Exact six-plane perspective frustum (symmetric, square cross-section).
///
/// Planes store inward-pointing normals; a box is rejected when it lies
/// entirely on the outside of any plane (the standard p-vertex test).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlaneFrustum {
    /// `(normal, offset)` pairs: a point `p` is inside when
    /// `normal.dot(p) + offset >= 0` for all planes.
    planes: [(Vec3, f64); 6],
}

impl PlaneFrustum {
    /// Build from a camera pose with the given near/far clip distances.
    /// Aspect ratio is 1 (square image), matching the cone approximation.
    pub fn from_pose(pose: &CameraPose, near: f64, far: f64) -> Self {
        assert!(near > 0.0 && far > near, "need 0 < near < far");
        let basis = pose.basis();
        let (f, r, u) = (basis.forward, basis.right, basis.up);
        let apex = pose.position;
        let half = pose.view_angle * 0.5;
        let (s, c) = half.sin_cos();

        // Side plane normals tilt the forward axis by the half angle.
        let n_left = f * s + r * c;
        let n_right = f * s - r * c;
        let n_bottom = f * s + u * c;
        let n_top = f * s - u * c;
        let n_near = f;
        let n_far = -f;

        let mk = |n: Vec3, p: Vec3| (n, -n.dot(p));
        PlaneFrustum {
            planes: [
                mk(n_left, apex),
                mk(n_right, apex),
                mk(n_bottom, apex),
                mk(n_top, apex),
                mk(n_near, apex + f * near),
                mk(n_far, apex + f * far),
            ],
        }
    }

    /// Exact point containment.
    pub fn contains_point(&self, p: Vec3) -> bool {
        self.planes.iter().all(|(n, off)| n.dot(p) + off >= -1e-12)
    }

    /// Conservative AABB test: `false` only when the box is certainly
    /// outside (standard positive-vertex plane test).
    pub fn intersects_aabb(&self, aabb: &Aabb) -> bool {
        for (n, off) in &self.planes {
            // The corner of the box furthest along the plane normal.
            let p = Vec3::new(
                if n.x >= 0.0 { aabb.max.x } else { aabb.min.x },
                if n.y >= 0.0 { aabb.max.y } else { aabb.min.y },
                if n.z >= 0.0 { aabb.max.z } else { aabb.min.z },
            );
            if n.dot(p) + off < 0.0 {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::angle::deg_to_rad;

    fn looking_down_z(theta_deg: f64) -> ConeFrustum {
        let pose = CameraPose::new(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, deg_to_rad(theta_deg));
        ConeFrustum::from_pose(&pose)
    }

    #[test]
    fn cone_axis_point_is_visible() {
        let cone = looking_down_z(30.0);
        assert!(cone.contains_point(Vec3::ZERO));
        assert!(cone.contains_point(Vec3::new(0.0, 0.0, 2.0)));
    }

    #[test]
    fn cone_rejects_point_behind_camera() {
        let cone = looking_down_z(30.0);
        assert!(!cone.contains_point(Vec3::new(0.0, 0.0, 10.0)));
    }

    #[test]
    fn cone_boundary_angle() {
        // Half angle 30°; a point at exactly 29.9° off axis is inside.
        let cone = looking_down_z(60.0);
        let ang = deg_to_rad(29.9);
        let p = Vec3::new(0.0, 0.0, 5.0) + Vec3::new(ang.sin(), 0.0, -ang.cos()) * 3.0;
        assert!(cone.contains_point(p));
        // 30.1°: outside.
        let ang = deg_to_rad(30.1);
        let q = Vec3::new(0.0, 0.0, 5.0) + Vec3::new(ang.sin(), 0.0, -ang.cos()) * 3.0;
        assert!(!cone.contains_point(q));
    }

    #[test]
    fn apex_point_is_visible() {
        let cone = looking_down_z(30.0);
        assert!(cone.contains_point(cone.apex));
    }

    #[test]
    fn block_on_axis_is_visible_by_corners() {
        let cone = looking_down_z(40.0);
        let b = Aabb::new(Vec3::splat(-0.2), Vec3::splat(0.2));
        assert!(cone.intersects_block_corners(&b));
    }

    #[test]
    fn block_far_off_axis_is_invisible() {
        let cone = looking_down_z(40.0);
        let b = Aabb::new(Vec3::new(50.0, 0.0, -0.2), Vec3::new(50.4, 0.4, 0.2));
        assert!(!cone.intersects_block_corners(&b));
        assert!(!cone.intersects_block_sphere(&b));
    }

    #[test]
    fn block_containing_apex_is_visible() {
        let cone = looking_down_z(10.0);
        let b = Aabb::new(Vec3::new(-1.0, -1.0, 4.0), Vec3::new(1.0, 1.0, 6.0));
        assert!(cone.intersects_block_corners(&b));
    }

    #[test]
    fn sphere_test_is_superset_of_corner_test() {
        // The conservative test must never reject a block the corner test
        // accepts.
        let cone = looking_down_z(35.0);
        for ix in -4..4 {
            for iy in -4..4 {
                for iz in -4..4 {
                    let min = Vec3::new(ix as f64, iy as f64, iz as f64) * 0.5;
                    let b = Aabb::new(min, min + Vec3::splat(0.5));
                    if cone.intersects_block_corners(&b) {
                        assert!(
                            cone.intersects_block_sphere(&b),
                            "sphere test rejected a corner-visible block {b:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn classify_sphere_is_consistent_with_exact_tests() {
        // Outside must be conservative (never claimed for a corner-visible
        // block) and Inside must be exact (all corners pass the Eq. 1 test).
        for half_deg in [5.0, 17.5, 35.0, 80.0, 110.0] {
            let cone = looking_down_z(2.0 * half_deg);
            for ix in -4..4 {
                for iy in -4..4 {
                    for iz in -4..4 {
                        let min = Vec3::new(ix as f64, iy as f64, iz as f64) * 0.5;
                        let b = Aabb::new(min, min + Vec3::splat(0.5));
                        match cone.classify_sphere(b.center(), b.bounding_radius()) {
                            SphereClass::Outside => assert!(
                                !cone.intersects_block_corners(&b),
                                "Outside for a corner-visible block {b:?} at θ/2={half_deg}°"
                            ),
                            SphereClass::Inside => assert!(
                                b.corners().iter().all(|&c| cone.contains_point(c)),
                                "Inside but a corner escapes the cone {b:?} at θ/2={half_deg}°"
                            ),
                            SphereClass::Crossing => {}
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn sphere_containing_apex_is_crossing() {
        let cone = looking_down_z(30.0);
        // Sphere around the apex: never Inside or Outside.
        assert_eq!(cone.classify_sphere(cone.apex, 0.5), SphereClass::Crossing);
    }

    #[test]
    fn plane_frustum_agrees_with_cone_on_axis() {
        let pose = CameraPose::new(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, deg_to_rad(40.0));
        let pf = PlaneFrustum::from_pose(&pose, 0.1, 100.0);
        assert!(pf.contains_point(Vec3::ZERO));
        assert!(!pf.contains_point(Vec3::new(0.0, 0.0, 10.0))); // behind
        assert!(!pf.contains_point(Vec3::new(0.0, 0.0, 4.95))); // before near
    }

    #[test]
    fn plane_frustum_rejects_off_axis_box() {
        let pose = CameraPose::new(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, deg_to_rad(40.0));
        let pf = PlaneFrustum::from_pose(&pose, 0.1, 100.0);
        let b = Aabb::new(Vec3::new(30.0, 30.0, -1.0), Vec3::new(31.0, 31.0, 0.0));
        assert!(!pf.intersects_aabb(&b));
        let on_axis = Aabb::new(Vec3::splat(-0.5), Vec3::splat(0.5));
        assert!(pf.intersects_aabb(&on_axis));
    }

    #[test]
    fn plane_frustum_is_conservative_for_straddling_boxes() {
        let pose = CameraPose::new(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, deg_to_rad(40.0));
        let pf = PlaneFrustum::from_pose(&pose, 0.1, 100.0);
        // A box straddling a side plane intersects.
        let b = Aabb::new(Vec3::new(-5.0, -0.5, -0.5), Vec3::new(0.0, 0.5, 0.5));
        assert!(pf.intersects_aabb(&b));
    }

    #[test]
    #[should_panic]
    fn plane_frustum_invalid_clip_panics() {
        let pose = CameraPose::new(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, 0.5);
        PlaneFrustum::from_pose(&pose, 1.0, 0.5);
    }
}
