//! Degree/radian helpers and small angular utilities.
//!
//! The paper expresses every sweep in degrees (view-direction change per
//! camera step, frustum view angle θ), so conversions appear everywhere.

/// Convert degrees to radians.
#[inline]
pub fn deg_to_rad(deg: f64) -> f64 {
    deg * std::f64::consts::PI / 180.0
}

/// Convert radians to degrees.
#[inline]
pub fn rad_to_deg(rad: f64) -> f64 {
    rad * 180.0 / std::f64::consts::PI
}

/// Wrap an angle in radians into `[0, 2*pi)`.
#[inline]
pub fn wrap_two_pi(rad: f64) -> f64 {
    let two_pi = std::f64::consts::TAU;
    let r = rad % two_pi;
    if r < 0.0 {
        r + two_pi
    } else {
        r
    }
}

/// Wrap an angle in radians into `(-pi, pi]`.
#[inline]
pub fn wrap_pi(rad: f64) -> f64 {
    let mut r = wrap_two_pi(rad);
    if r > std::f64::consts::PI {
        r -= std::f64::consts::TAU;
    }
    r
}

/// Smallest absolute difference between two angles, in `[0, pi]`.
#[inline]
pub fn angular_distance(a: f64, b: f64) -> f64 {
    wrap_pi(a - b).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI, TAU};

    #[test]
    fn deg_rad_roundtrip() {
        for d in [0.0, 1.0, 45.0, 90.0, 180.0, 359.0] {
            assert!((rad_to_deg(deg_to_rad(d)) - d).abs() < 1e-12);
        }
    }

    #[test]
    fn known_conversions() {
        assert!((deg_to_rad(180.0) - PI).abs() < 1e-15);
        assert!((deg_to_rad(90.0) - FRAC_PI_2).abs() < 1e-15);
    }

    #[test]
    fn wrapping_positive_and_negative() {
        assert!((wrap_two_pi(TAU + 0.5) - 0.5).abs() < 1e-12);
        assert!((wrap_two_pi(-0.5) - (TAU - 0.5)).abs() < 1e-12);
        assert!((wrap_pi(PI + 0.1) - (-PI + 0.1)).abs() < 1e-12);
    }

    #[test]
    fn angular_distance_is_symmetric_and_short_way() {
        assert!((angular_distance(0.1, TAU - 0.1) - 0.2).abs() < 1e-12);
        assert!((angular_distance(1.0, 2.0) - 1.0).abs() < 1e-12);
        assert_eq!(angular_distance(1.0, 2.0), angular_distance(2.0, 1.0));
    }
}
