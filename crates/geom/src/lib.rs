//! # viz-geom — geometry substrate
//!
//! Vector math, axis-aligned boxes, cameras, view frusta, spherical-domain
//! sampling, rays, and camera paths for the application-aware visualization
//! cache. Everything here is deterministic given explicit seeds; nothing
//! touches wall-clock time or global RNG state.
//!
//! The module map follows the paper's geometry (Sections III-IV):
//!
//! - [`vec3`], [`aabb`], [`angle`], [`ray`] — basic math.
//! - [`camera`] — the `<l, d>` camera parameterization of Section IV-B.
//! - [`frustum`] — the conical visibility test of Eq. 1 plus an exact
//!   six-plane frustum for validation and rendering.
//! - [`bvh`] — a flat BVH over block AABBs accelerating the Eq. 1 scans
//!   (conservative sphere-cone pruning, exact corner test at leaves).
//! - [`sphere`] — the exploration domain Omega and its sampling lattices.
//! - [`path`] — spherical and random camera paths from Section V-A.
//!
//! # Example
//!
//! ```
//! use viz_geom::{CameraPath, CameraPose, ConeFrustum, ExplorationDomain, SphericalPath, Vec3};
//! use viz_geom::angle::deg_to_rad;
//!
//! // Orbit a unit-normalized volume at distance 2.5, 5 degrees per step.
//! let domain = ExplorationDomain::new(Vec3::ZERO, 2.0, 3.2);
//! let poses = SphericalPath::new(domain, 2.5, 5.0, deg_to_rad(15.0)).generate(72);
//! assert_eq!(poses.len(), 72);
//!
//! // The paper's Eq. 1 cone test for one pose:
//! let cone = ConeFrustum::from_pose(&poses[0]);
//! assert!(cone.contains_point(Vec3::ZERO)); // the centroid is always seen
//! ```

#![warn(missing_docs)]

pub mod aabb;
pub mod angle;
pub mod bvh;
pub mod camera;
pub mod frustum;
pub mod keyframe;
pub mod path;
pub mod quat;
pub mod ray;
pub mod sphere;
pub mod vec3;

pub use aabb::Aabb;
pub use bvh::Bvh;
pub use camera::{CameraBasis, CameraPose};
pub use frustum::{ConeFrustum, PlaneFrustum, SphereClass};
pub use keyframe::{Keyframe, KeyframePath};
pub use path::{CameraPath, CompositePath, RandomWalkPath, SphericalPath, ZoomPath};
pub use quat::Quat;
pub use ray::{Ray, RayGenerator};
pub use sphere::{ExplorationDomain, SphericalCoord};
pub use vec3::Vec3;
