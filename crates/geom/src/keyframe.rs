//! Keyframed camera paths: waypoint-driven guided exploration.
//!
//! A scientist marks a handful of interesting viewpoints (the Fig. 2
//! scenario: an overview orbit, a dive toward the typhoon, a pass along
//! the smoke plume); the tool flies smoothly between them. Direction is
//! interpolated by quaternion slerp (constant angular velocity, no gimbal
//! issues) and distance log-linearly (perceptually uniform zooming).

use crate::camera::CameraPose;
use crate::path::CameraPath;
use crate::quat::Quat;
use crate::sphere::ExplorationDomain;
use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// One waypoint of a keyframed flight.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Keyframe {
    /// Unit direction from the volume center towards the camera.
    pub direction: Vec3,
    /// Camera distance from the center.
    pub distance: f64,
    /// Relative time weight of the segment *leading to* this keyframe
    /// (ignored on the first keyframe). Larger = slower approach.
    pub weight: f64,
}

impl Keyframe {
    /// A keyframe from an arbitrary (non-zero) direction and distance,
    /// unit segment weight.
    pub fn new(direction: Vec3, distance: f64) -> Self {
        Keyframe { direction: direction.normalize(), distance, weight: 1.0 }
    }

    /// Adjust the segment weight.
    pub fn with_weight(mut self, weight: f64) -> Self {
        assert!(weight > 0.0, "segment weight must be positive");
        self.weight = weight;
        self
    }
}

/// A smooth flight through an ordered list of keyframes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KeyframePath {
    /// Exploration domain (distances clamp into it).
    pub domain: ExplorationDomain,
    /// Waypoints (at least two).
    pub keys: Vec<Keyframe>,
    /// Full frustum view angle (radians) of every pose.
    pub view_angle: f64,
    /// Close the loop back to the first keyframe.
    pub closed: bool,
}

impl KeyframePath {
    /// Create an open path through `keys` (needs ≥ 2 waypoints).
    pub fn new(domain: ExplorationDomain, keys: Vec<Keyframe>, view_angle: f64) -> Self {
        assert!(keys.len() >= 2, "keyframe path needs at least two waypoints");
        KeyframePath { domain, keys, view_angle, closed: false }
    }

    /// Close the loop (the path returns to its first waypoint).
    pub fn closed(mut self) -> Self {
        self.closed = true;
        self
    }

    /// Pose at normalized path parameter `u ∈ [0, 1]`.
    pub fn sample(&self, u: f64) -> CameraPose {
        let u = u.clamp(0.0, 1.0);
        let n_seg = if self.closed { self.keys.len() } else { self.keys.len() - 1 };
        // Cumulative segment weights.
        let weights: Vec<f64> =
            (0..n_seg).map(|i| self.keys[(i + 1) % self.keys.len()].weight).collect();
        let total: f64 = weights.iter().sum();
        let mut target = u * total;
        let mut seg = 0;
        while seg + 1 < n_seg && target > weights[seg] {
            target -= weights[seg];
            seg += 1;
        }
        let t = (target / weights[seg]).clamp(0.0, 1.0);

        let a = &self.keys[seg];
        let b = &self.keys[(seg + 1) % self.keys.len()];
        // Slerp the direction via the arc between the two waypoints.
        let arc = Quat::between(a.direction, b.direction);
        let dir = Quat::IDENTITY.slerp(arc, t).rotate(a.direction).normalize();
        // Log-linear distance interpolation (uniform zoom rate).
        let d = (a.distance.max(1e-9).ln() * (1.0 - t) + b.distance.max(1e-9).ln() * t).exp();
        let d = d.clamp(self.domain.r_min, self.domain.r_max);
        CameraPose::new(self.domain.center + dir * d, self.domain.center, self.view_angle)
    }
}

impl CameraPath for KeyframePath {
    fn generate(&self, n: usize) -> Vec<CameraPose> {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![self.sample(0.0)];
        }
        (0..n).map(|i| self.sample(i as f64 / (n - 1) as f64)).collect()
    }

    fn label(&self) -> String {
        format!("keyframe({} keys{})", self.keys.len(), if self.closed { ", closed" } else { "" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::angle::rad_to_deg;

    fn domain() -> ExplorationDomain {
        ExplorationDomain::new(Vec3::ZERO, 1.0, 10.0)
    }

    fn simple_path() -> KeyframePath {
        KeyframePath::new(
            domain(),
            vec![
                Keyframe::new(Vec3::X, 3.0),
                Keyframe::new(Vec3::Y, 3.0),
                Keyframe::new(Vec3::Z, 6.0),
            ],
            0.5,
        )
    }

    #[test]
    fn endpoints_hit_keyframes() {
        let p = simple_path();
        let poses = p.generate(50);
        assert_eq!(poses.len(), 50);
        assert!(poses[0].position.distance(Vec3::X * 3.0) < 1e-9);
        assert!(poses[49].position.distance(Vec3::Z * 6.0) < 1e-9);
    }

    #[test]
    fn middle_keyframe_is_passed_through() {
        let p = simple_path();
        // Equal weights: u = 0.5 is exactly the middle waypoint.
        let mid = p.sample(0.5);
        assert!(mid.position.distance(Vec3::Y * 3.0) < 1e-9);
    }

    #[test]
    fn distances_stay_in_domain() {
        let p = KeyframePath::new(
            domain(),
            vec![Keyframe::new(Vec3::X, 0.1), Keyframe::new(Vec3::Y, 100.0)],
            0.5,
        );
        for pose in p.generate(20) {
            let d = pose.distance();
            assert!((1.0 - 1e-9..=10.0 + 1e-9).contains(&d));
        }
    }

    #[test]
    fn angular_speed_is_uniform_within_a_segment() {
        let p = KeyframePath::new(
            domain(),
            vec![Keyframe::new(Vec3::X, 3.0), Keyframe::new(Vec3::Y, 3.0)],
            0.5,
        );
        let poses = p.generate(11);
        let mut first = None;
        for w in poses.windows(2) {
            let step = rad_to_deg(w[0].direction_change(&w[1]));
            match first {
                None => first = Some(step),
                Some(f) => assert!((step - f).abs() < 1e-6, "wobble: {step} vs {f}"),
            }
        }
        assert!((first.unwrap() - 9.0).abs() < 1e-6); // 90° over 10 steps
    }

    #[test]
    fn weights_slow_down_segments() {
        let p = KeyframePath::new(
            domain(),
            vec![
                Keyframe::new(Vec3::X, 3.0),
                Keyframe::new(Vec3::Y, 3.0).with_weight(3.0), // slow approach
                Keyframe::new(Vec3::Z, 3.0).with_weight(1.0),
            ],
            0.5,
        );
        // At u = 0.5 (half the total weight 4), we are still inside the
        // first (weight 3) segment: direction closer to the X→Y arc.
        let pose = p.sample(0.5);
        let sc = pose.spherical();
        // Still in the XY plane (θ = 90°), i.e. not yet lifting towards Z.
        assert!((rad_to_deg(sc.theta) - 90.0).abs() < 1e-6);
    }

    #[test]
    fn log_distance_zoom_is_geometric() {
        let p = KeyframePath::new(
            domain(),
            vec![Keyframe::new(Vec3::X, 2.0), Keyframe::new(Vec3::X, 8.0)],
            0.5,
        );
        // Halfway in log space: sqrt(2·8) = 4.
        assert!((p.sample(0.5).distance() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn closed_path_returns_to_start() {
        let p = simple_path().closed();
        let poses = p.generate(61);
        assert!(poses[0].position.distance(poses[60].position) < 1e-9);
    }

    #[test]
    fn degenerate_requests() {
        let p = simple_path();
        assert!(p.generate(0).is_empty());
        assert_eq!(p.generate(1).len(), 1);
    }

    #[test]
    #[should_panic]
    fn single_keyframe_panics() {
        KeyframePath::new(domain(), vec![Keyframe::new(Vec3::X, 2.0)], 0.5);
    }

    #[test]
    fn label_mentions_keys() {
        assert!(simple_path().label().contains("3 keys"));
    }
}
