//! Spherical coordinates and sampling of the exploration domain Ω.
//!
//! The paper samples camera positions in a spherical domain Ω enclosing the
//! volume, stratified by view direction and distance (§IV-B), and samples
//! *vicinal* points `v'` inside a small sphere φ around each position.

use crate::vec3::Vec3;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::f64::consts::{PI, TAU};

/// Spherical coordinate relative to some center: `radius >= 0`,
/// polar angle `theta` in `[0, pi]` measured from +Z, azimuth `phi`
/// in `[0, 2*pi)` measured from +X in the XY plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SphericalCoord {
    /// Distance from the center.
    pub radius: f64,
    /// Polar angle from +Z, in `[0, pi]`.
    pub theta: f64,
    /// Azimuth from +X, in `[0, 2*pi)`.
    pub phi: f64,
}

impl SphericalCoord {
    /// Convert to Cartesian coordinates (relative to the center).
    pub fn to_cartesian(self) -> Vec3 {
        let (st, ct) = self.theta.sin_cos();
        let (sp, cp) = self.phi.sin_cos();
        Vec3::new(self.radius * st * cp, self.radius * st * sp, self.radius * ct)
    }

    /// Convert from Cartesian coordinates (relative to the center).
    pub fn from_cartesian(v: Vec3) -> Self {
        let radius = v.norm();
        if radius <= 1e-300 {
            return SphericalCoord { radius: 0.0, theta: 0.0, phi: 0.0 };
        }
        let theta = (v.z / radius).clamp(-1.0, 1.0).acos();
        let mut phi = v.y.atan2(v.x);
        if phi < 0.0 {
            phi += TAU;
        }
        SphericalCoord { radius, theta, phi }
    }
}

/// The exploration domain Ω: a spherical shell around the volume centroid in
/// which cameras move. `r_min` keeps cameras outside the data (the paper's
/// cameras orbit outside the volume; zooming changes `d` within the shell).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExplorationDomain {
    /// The volume centroid `o` (common center of Ω and the data).
    pub center: Vec3,
    /// Minimum camera distance from `o`.
    pub r_min: f64,
    /// Maximum camera distance from `o` (the radius of Ω).
    pub r_max: f64,
}

impl ExplorationDomain {
    /// Create a shell domain; requires `0 < r_min <= r_max`.
    pub fn new(center: Vec3, r_min: f64, r_max: f64) -> Self {
        assert!(r_min > 0.0 && r_max >= r_min, "domain radii must satisfy 0 < r_min <= r_max");
        ExplorationDomain { center, r_min, r_max }
    }

    /// Domain for the unit-normalized volume (edge 2, so bounding radius
    /// `sqrt(3)`): cameras between just outside the volume and 3x that.
    pub fn unit_default() -> Self {
        let r = 3f64.sqrt();
        ExplorationDomain::new(Vec3::ZERO, r * 1.05, r * 3.0)
    }

    /// `true` when `p` lies within the shell (inclusive).
    pub fn contains(&self, p: Vec3) -> bool {
        let d = p.distance(self.center);
        d >= self.r_min - 1e-12 && d <= self.r_max + 1e-12
    }

    /// Clamp a point's distance-from-center into the shell, keeping its
    /// direction.
    pub fn clamp(&self, p: Vec3) -> Vec3 {
        let rel = p - self.center;
        let d = rel.norm();
        if d <= 1e-300 {
            return self.center + Vec3::Z * self.r_min;
        }
        let dc = d.clamp(self.r_min, self.r_max);
        self.center + rel * (dc / d)
    }
}

/// Directions quasi-uniformly covering the unit sphere via the Fibonacci
/// (golden-spiral) lattice. Deterministic; good uniformity for any `n`.
pub fn fibonacci_sphere(n: usize) -> Vec<Vec3> {
    let golden = (1.0 + 5f64.sqrt()) / 2.0;
    (0..n)
        .map(|i| {
            // Stratify z in (-1, 1); offset by 0.5 to avoid poles.
            let z = 1.0 - (2.0 * (i as f64 + 0.5)) / n as f64;
            let r = (1.0 - z * z).max(0.0).sqrt();
            let phi = TAU * (i as f64 / golden % 1.0);
            Vec3::new(r * phi.cos(), r * phi.sin(), z)
        })
        .collect()
}

/// Directions on a latitude/longitude grid: `n_theta` polar rings ×
/// `n_phi` azimuthal steps (the paper's "sampled according to view
/// directions" stratification). Ring centers avoid the exact poles.
pub fn lat_long_directions(n_theta: usize, n_phi: usize) -> Vec<Vec3> {
    let mut dirs = Vec::with_capacity(n_theta * n_phi);
    for it in 0..n_theta {
        let theta = PI * (it as f64 + 0.5) / n_theta as f64;
        for ip in 0..n_phi {
            let phi = TAU * ip as f64 / n_phi as f64;
            dirs.push(SphericalCoord { radius: 1.0, theta, phi }.to_cartesian());
        }
    }
    dirs
}

/// Uniform random point inside a ball of radius `r` centered at `c`
/// (rejection-free: cube-root radial inversion).
pub fn sample_in_ball<R: Rng + ?Sized>(rng: &mut R, c: Vec3, r: f64) -> Vec3 {
    let dir = sample_on_sphere(rng);
    let u: f64 = rng.gen::<f64>();
    c + dir * (r * u.cbrt())
}

/// Uniform random direction on the unit sphere.
pub fn sample_on_sphere<R: Rng + ?Sized>(rng: &mut R) -> Vec3 {
    // Marsaglia: z uniform in [-1,1], phi uniform.
    let z: f64 = rng.gen_range(-1.0..=1.0);
    let phi: f64 = rng.gen_range(0.0..TAU);
    let r = (1.0 - z * z).max(0.0).sqrt();
    Vec3::new(r * phi.cos(), r * phi.sin(), z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn spherical_cartesian_roundtrip() {
        for &(r, t, p) in &[(1.0, 0.5, 1.0), (2.5, 1.2, 4.0), (0.1, 3.0, 6.0)] {
            let sc = SphericalCoord { radius: r, theta: t, phi: p };
            let back = SphericalCoord::from_cartesian(sc.to_cartesian());
            assert!((back.radius - r).abs() < 1e-12);
            assert!((back.theta - t).abs() < 1e-12);
            assert!((back.phi - p).abs() < 1e-12);
        }
    }

    #[test]
    fn from_cartesian_origin_is_finite() {
        let sc = SphericalCoord::from_cartesian(Vec3::ZERO);
        assert_eq!(sc.radius, 0.0);
    }

    #[test]
    fn fibonacci_points_are_unit_and_spread() {
        let pts = fibonacci_sphere(500);
        assert_eq!(pts.len(), 500);
        let mut mean = Vec3::ZERO;
        for p in &pts {
            assert!((p.norm() - 1.0).abs() < 1e-12);
            mean += *p;
        }
        // Quasi-uniform coverage ⇒ centroid near origin.
        assert!((mean / 500.0).norm() < 0.02);
    }

    #[test]
    fn lat_long_count_and_unit_norm() {
        let dirs = lat_long_directions(18, 36);
        assert_eq!(dirs.len(), 18 * 36);
        for d in &dirs {
            assert!((d.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn lat_long_covers_both_hemispheres() {
        let dirs = lat_long_directions(10, 10);
        assert!(dirs.iter().any(|d| d.z > 0.8));
        assert!(dirs.iter().any(|d| d.z < -0.8));
    }

    #[test]
    fn ball_samples_stay_inside() {
        let mut rng = StdRng::seed_from_u64(7);
        let c = Vec3::new(1.0, 2.0, 3.0);
        for _ in 0..1000 {
            let p = sample_in_ball(&mut rng, c, 0.25);
            assert!(p.distance(c) <= 0.25 + 1e-12);
        }
    }

    #[test]
    fn ball_samples_fill_the_interior() {
        // Radial CDF check: for uniform ball sampling, P(r < R/2) = 1/8.
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let inner =
            (0..n).filter(|_| sample_in_ball(&mut rng, Vec3::ZERO, 1.0).norm() < 0.5).count();
        let frac = inner as f64 / n as f64;
        assert!((frac - 0.125).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn sphere_samples_are_unit() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!((sample_on_sphere(&mut rng).norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn domain_clamp_preserves_direction() {
        let dom = ExplorationDomain::new(Vec3::ZERO, 1.0, 2.0);
        let p = dom.clamp(Vec3::new(0.1, 0.0, 0.0));
        assert!((p.norm() - 1.0).abs() < 1e-12);
        assert!(p.x > 0.99);
        let q = dom.clamp(Vec3::new(0.0, 5.0, 0.0));
        assert!((q.norm() - 2.0).abs() < 1e-12);
        assert!(dom.contains(p) && dom.contains(q));
    }

    #[test]
    #[should_panic]
    fn invalid_domain_radii_panic() {
        ExplorationDomain::new(Vec3::ZERO, 2.0, 1.0);
    }
}
