//! Axis-aligned bounding boxes.
//!
//! Data blocks ("bricks") of a partitioned volume are AABBs; the visibility
//! test of the paper's Eq. 1 operates on their eight corner points.

use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// An axis-aligned box given by its minimum and maximum corners.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// Build from two corners in any order.
    pub fn new(a: Vec3, b: Vec3) -> Self {
        Aabb { min: a.min(b), max: a.max(b) }
    }

    /// The unit-normalized volume domain used by the paper's radius model:
    /// edge length 2, centered at the origin (coordinates in `[-1, 1]`).
    pub const fn unit() -> Self {
        Aabb { min: Vec3::splat(-1.0), max: Vec3::splat(1.0) }
    }

    #[inline]
    /// Geometric center of the box.
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Full edge lengths along each axis.
    #[inline]
    pub fn extent(&self) -> Vec3 {
        self.max - self.min
    }

    /// Half of [`Self::extent`].
    #[inline]
    pub fn half_extent(&self) -> Vec3 {
        self.extent() * 0.5
    }

    /// Geometric volume (product of edge lengths).
    #[inline]
    pub fn volume(&self) -> f64 {
        let e = self.extent();
        e.x * e.y * e.z
    }

    /// Radius of the bounding sphere (distance from center to a corner).
    #[inline]
    pub fn bounding_radius(&self) -> f64 {
        self.half_extent().norm()
    }

    /// The eight corner points `b_i, i in [0, 7]` of the paper's Eq. 1.
    pub fn corners(&self) -> [Vec3; 8] {
        let (lo, hi) = (self.min, self.max);
        [
            Vec3::new(lo.x, lo.y, lo.z),
            Vec3::new(hi.x, lo.y, lo.z),
            Vec3::new(lo.x, hi.y, lo.z),
            Vec3::new(hi.x, hi.y, lo.z),
            Vec3::new(lo.x, lo.y, hi.z),
            Vec3::new(hi.x, lo.y, hi.z),
            Vec3::new(lo.x, hi.y, hi.z),
            Vec3::new(hi.x, hi.y, hi.z),
        ]
    }

    /// Point containment (closed box).
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Smallest box covering both operands.
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb { min: self.min.min(other.min), max: self.max.max(other.max) }
    }

    /// `true` when the two boxes overlap (closed intersection).
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
            && self.min.z <= other.max.z
            && self.max.z >= other.min.z
    }

    /// Closest point inside the box to `p` (is `p` itself when contained).
    pub fn clamp_point(&self, p: Vec3) -> Vec3 {
        Vec3::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
            p.z.clamp(self.min.z, self.max.z),
        )
    }

    /// Squared distance from `p` to the box (0 when inside).
    pub fn distance_squared(&self, p: Vec3) -> f64 {
        (p - self.clamp_point(p)).norm_squared()
    }

    /// Map a point given in `[0,1]^3` box-relative coordinates to world space.
    pub fn lerp_point(&self, t: Vec3) -> Vec3 {
        self.min + self.extent().mul_elem(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_reorders_corners() {
        let b = Aabb::new(Vec3::new(1.0, -1.0, 5.0), Vec3::new(0.0, 2.0, 4.0));
        assert_eq!(b.min, Vec3::new(0.0, -1.0, 4.0));
        assert_eq!(b.max, Vec3::new(1.0, 2.0, 5.0));
    }

    #[test]
    fn unit_box_properties() {
        let u = Aabb::unit();
        assert_eq!(u.center(), Vec3::ZERO);
        assert_eq!(u.extent(), Vec3::splat(2.0));
        assert_eq!(u.volume(), 8.0); // the paper's normalization constant
    }

    #[test]
    fn corners_are_all_distinct_and_contained() {
        let b = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        let cs = b.corners();
        for (i, c) in cs.iter().enumerate() {
            assert!(b.contains(*c));
            for c2 in &cs[i + 1..] {
                assert_ne!(c, c2);
            }
        }
    }

    #[test]
    fn containment_boundary_is_closed() {
        let b = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        assert!(b.contains(Vec3::ZERO));
        assert!(b.contains(Vec3::splat(1.0)));
        assert!(!b.contains(Vec3::splat(1.0 + 1e-9)));
    }

    #[test]
    fn union_covers_both() {
        let a = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        let b = Aabb::new(Vec3::splat(2.0), Vec3::splat(3.0));
        let u = a.union(&b);
        assert!(u.contains(Vec3::splat(0.5)));
        assert!(u.contains(Vec3::splat(2.5)));
    }

    #[test]
    fn intersection_test_cases() {
        let a = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        assert!(a.intersects(&Aabb::new(Vec3::splat(0.5), Vec3::splat(2.0))));
        // Touching faces count as intersecting (closed boxes).
        assert!(a.intersects(&Aabb::new(Vec3::splat(1.0), Vec3::splat(2.0))));
        assert!(!a.intersects(&Aabb::new(Vec3::splat(1.1), Vec3::splat(2.0))));
    }

    #[test]
    fn clamp_and_distance() {
        let b = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        assert_eq!(b.clamp_point(Vec3::splat(0.5)), Vec3::splat(0.5));
        assert_eq!(b.clamp_point(Vec3::new(2.0, 0.5, -1.0)), Vec3::new(1.0, 0.5, 0.0));
        assert_eq!(b.distance_squared(Vec3::new(2.0, 0.5, 0.5)), 1.0);
        assert_eq!(b.distance_squared(Vec3::splat(0.25)), 0.0);
    }

    #[test]
    fn lerp_point_maps_unit_cube() {
        let b = Aabb::new(Vec3::new(10.0, 20.0, 30.0), Vec3::new(20.0, 40.0, 60.0));
        assert_eq!(b.lerp_point(Vec3::ZERO), b.min);
        assert_eq!(b.lerp_point(Vec3::splat(1.0)), b.max);
        assert_eq!(b.lerp_point(Vec3::splat(0.5)), b.center());
    }

    #[test]
    fn bounding_radius_of_unit_cube() {
        let b = Aabb::new(Vec3::ZERO, Vec3::splat(2.0));
        assert!((b.bounding_radius() - 3f64.sqrt()).abs() < 1e-12);
    }
}
