//! Cameras and camera poses.
//!
//! The paper parameterizes a camera position `v` inside the spherical
//! exploration domain Ω by its view direction `l = vo` (towards the volume
//! centroid `o`) and its distance `d = ||vo||`. A pose carries exactly that,
//! plus the frustum view angle θ needed by the visibility test.

use crate::angle::deg_to_rad;
use crate::sphere::SphericalCoord;
use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// A single camera configuration on (or off) a camera path.
///
/// Cameras always look at the volume centroid `center` (the paper's `o`);
/// interactive orbiting in the evaluated system never changes the look-at
/// target, only position and distance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CameraPose {
    /// Camera position `v` in world coordinates.
    pub position: Vec3,
    /// The look-at target `o` (the volume centroid).
    pub center: Vec3,
    /// Full vertical view angle θ of the frustum, in radians.
    pub view_angle: f64,
}

impl CameraPose {
    /// Create a pose from an explicit position.
    pub fn new(position: Vec3, center: Vec3, view_angle: f64) -> Self {
        CameraPose { position, center, view_angle }
    }

    /// Create a pose from the paper's `<l, d>` parameterization: a unit view
    /// direction `l` pointing from camera towards the center, and the
    /// distance `d` from the center.
    pub fn from_direction_distance(l: Vec3, d: f64, center: Vec3, view_angle: f64) -> Self {
        let dir = l.normalize();
        // l points v -> o, so v = o - l * d.
        CameraPose { position: center - dir * d, center, view_angle }
    }

    /// The paper's view direction `l = vo` (unit vector camera → center).
    ///
    /// Returns `Vec3::Z` for the degenerate camera-at-center case so callers
    /// never see NaNs.
    #[inline]
    pub fn view_direction(&self) -> Vec3 {
        (self.center - self.position).try_normalize().unwrap_or(Vec3::Z)
    }

    /// The paper's view distance `d = ||vo||`.
    #[inline]
    pub fn distance(&self) -> f64 {
        self.position.distance(self.center)
    }

    /// Spherical coordinate of the camera position relative to `center`.
    pub fn spherical(&self) -> SphericalCoord {
        SphericalCoord::from_cartesian(self.position - self.center)
    }

    /// Angle in radians between this pose's view direction and another's.
    pub fn direction_change(&self, other: &CameraPose) -> f64 {
        self.view_direction().angle_between(other.view_direction())
    }

    /// Convenience: a pose orbiting the origin-centered unit volume.
    /// `theta_deg`/`phi_deg` are spherical angles, `d` the distance, and
    /// `view_angle_deg` the frustum angle in degrees.
    pub fn orbit(theta_deg: f64, phi_deg: f64, d: f64, view_angle_deg: f64) -> Self {
        let sc =
            SphericalCoord { radius: d, theta: deg_to_rad(theta_deg), phi: deg_to_rad(phi_deg) };
        CameraPose {
            position: sc.to_cartesian(),
            center: Vec3::ZERO,
            view_angle: deg_to_rad(view_angle_deg),
        }
    }

    /// An orthonormal right/up/forward frame for this pose, for renderers.
    /// `forward` is the view direction; `up` is as close to +Z as possible.
    pub fn basis(&self) -> CameraBasis {
        let forward = self.view_direction();
        let world_up = if forward.z.abs() > 0.999 { Vec3::Y } else { Vec3::Z };
        let right = forward.cross(world_up).normalize();
        let up = right.cross(forward);
        CameraBasis { right, up, forward }
    }
}

/// Orthonormal camera frame derived from a [`CameraPose`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CameraBasis {
    /// Image-space +X direction.
    pub right: Vec3,
    /// Image-space +Y direction.
    pub up: Vec3,
    /// View direction (camera towards target).
    pub forward: Vec3,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-10
    }

    #[test]
    fn direction_distance_roundtrip() {
        let l = Vec3::new(1.0, 2.0, -0.5).normalize();
        let pose = CameraPose::from_direction_distance(l, 3.0, Vec3::ZERO, 0.8);
        assert!(approx(pose.distance(), 3.0));
        assert!(pose.view_direction().distance(l) < 1e-12);
    }

    #[test]
    fn view_direction_points_at_center() {
        let pose = CameraPose::new(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, 0.8);
        assert!(pose.view_direction().distance(-Vec3::Z) < 1e-12);
    }

    #[test]
    fn degenerate_center_pose_is_nan_free() {
        let pose = CameraPose::new(Vec3::ZERO, Vec3::ZERO, 0.8);
        assert!(pose.view_direction().is_finite());
        assert_eq!(pose.distance(), 0.0);
    }

    #[test]
    fn orbit_distance_is_d() {
        let pose = CameraPose::orbit(37.0, 122.0, 2.5, 45.0);
        assert!(approx(pose.distance(), 2.5));
        assert!(approx(pose.view_angle, deg_to_rad(45.0)));
    }

    #[test]
    fn direction_change_between_orthogonal_views() {
        let a = CameraPose::new(Vec3::new(2.0, 0.0, 0.0), Vec3::ZERO, 0.8);
        let b = CameraPose::new(Vec3::new(0.0, 2.0, 0.0), Vec3::ZERO, 0.8);
        assert!(approx(a.direction_change(&b), std::f64::consts::FRAC_PI_2));
    }

    #[test]
    fn basis_is_orthonormal() {
        let pose = CameraPose::orbit(12.0, 75.0, 2.0, 30.0);
        let b = pose.basis();
        assert!(approx(b.right.norm(), 1.0));
        assert!(approx(b.up.norm(), 1.0));
        assert!(approx(b.forward.norm(), 1.0));
        assert!(b.right.dot(b.up).abs() < 1e-10);
        assert!(b.right.dot(b.forward).abs() < 1e-10);
        assert!(b.up.dot(b.forward).abs() < 1e-10);
    }

    #[test]
    fn basis_handles_pole_looking_camera() {
        // Camera directly above center, forward = -Z: needs the Y fallback.
        let pose = CameraPose::new(Vec3::new(0.0, 0.0, 3.0), Vec3::ZERO, 0.5);
        let b = pose.basis();
        assert!(b.right.is_finite() && b.up.is_finite());
        assert!(approx(b.right.norm(), 1.0));
    }
}
