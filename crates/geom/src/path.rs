//! Camera paths.
//!
//! The paper evaluates two path families (§V-A): a *spherical* path whose
//! view direction advances by a fixed degree interval per camera position,
//! and a *random* path whose per-step direction change is drawn from a
//! degree range (with the distance `d` also varying). Both use 400 camera
//! positions in the paper's experiments.

use crate::angle::deg_to_rad;
use crate::camera::CameraPose;
use crate::sphere::ExplorationDomain;
use crate::vec3::Vec3;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A generator of camera poses along an exploration path.
pub trait CameraPath {
    /// Produce the `n` poses of the path, in order.
    fn generate(&self, n: usize) -> Vec<CameraPose>;

    /// Human-readable label used in experiment reports.
    fn label(&self) -> String;
}

/// Orbit at constant distance on a great circle, advancing the view
/// direction by `step_deg` per camera position. With `precession_deg > 0`
/// the orbit plane slowly tilts so long paths cover the sphere instead of
/// retracing one circle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SphericalPath {
    /// Exploration domain (the distance is clamped into it).
    pub domain: ExplorationDomain,
    /// Camera distance `d` from the centroid (constant along the path).
    pub distance: f64,
    /// Degrees of view-direction change per step (the paper sweeps
    /// 1, 5, 10, 15, 20, 25, 30, 45).
    pub step_deg: f64,
    /// Degrees the orbit axis tilts per step; 0 = pure great circle.
    pub precession_deg: f64,
    /// Full frustum view angle θ in radians for every pose.
    pub view_angle: f64,
}

impl SphericalPath {
    /// Create a great-circle orbit (no precession).
    pub fn new(domain: ExplorationDomain, distance: f64, step_deg: f64, view_angle: f64) -> Self {
        SphericalPath { domain, distance, step_deg, precession_deg: 0.0, view_angle }
    }

    /// Tilt the orbit plane by `precession_deg` per step.
    pub fn with_precession(mut self, precession_deg: f64) -> Self {
        self.precession_deg = precession_deg;
        self
    }
}

impl CameraPath for SphericalPath {
    fn generate(&self, n: usize) -> Vec<CameraPose> {
        let d = self.distance.clamp(self.domain.r_min, self.domain.r_max);
        let mut dir = Vec3::X; // current direction center -> camera
        let mut axis = Vec3::Z;
        let step = deg_to_rad(self.step_deg);
        let prec = deg_to_rad(self.precession_deg);
        let mut poses = Vec::with_capacity(n);
        for _ in 0..n {
            poses.push(CameraPose::new(
                self.domain.center + dir * d,
                self.domain.center,
                self.view_angle,
            ));
            dir = dir.rotate_around(axis, step).normalize();
            if prec != 0.0 {
                // Tilt the orbit axis around the current direction so the
                // path spirals over the sphere.
                axis = axis.rotate_around(dir, prec).normalize();
            }
        }
        poses
    }

    fn label(&self) -> String {
        format!("spherical(step={}deg,d={:.2})", self.step_deg, self.distance)
    }
}

/// Random exploration: each step rotates the view direction by an angle
/// drawn uniformly from `[step_min_deg, step_max_deg]` around a random axis
/// orthogonal to the current direction, and jitters the distance by up to
/// `distance_jitter` (fraction of the shell width), clamped to the domain.
///
/// This reproduces the paper's "random path with different degree changes
/// for each camera position ... with randomly different d and l values".
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomWalkPath {
    /// Exploration domain (distances are clamped into it).
    pub domain: ExplorationDomain,
    /// Initial camera distance.
    pub start_distance: f64,
    /// Lower bound of the per-step view-direction change, degrees.
    pub step_min_deg: f64,
    /// Upper bound of the per-step view-direction change, degrees.
    pub step_max_deg: f64,
    /// Per-step distance change as a fraction of `(r_max - r_min)`;
    /// 0 keeps `d` constant.
    pub distance_jitter: f64,
    /// Full frustum view angle θ in radians.
    pub view_angle: f64,
    /// RNG seed; identical seeds reproduce identical paths.
    pub seed: u64,
}

impl RandomWalkPath {
    /// Create a random walk; `[step_min_deg, step_max_deg]` bounds the
    /// per-step view-direction change.
    pub fn new(
        domain: ExplorationDomain,
        start_distance: f64,
        step_min_deg: f64,
        step_max_deg: f64,
        view_angle: f64,
        seed: u64,
    ) -> Self {
        assert!(step_min_deg <= step_max_deg, "degree range must be ordered");
        RandomWalkPath {
            domain,
            start_distance,
            step_min_deg,
            step_max_deg,
            distance_jitter: 0.05,
            view_angle,
            seed,
        }
    }

    /// Set the per-step distance jitter fraction.
    pub fn with_distance_jitter(mut self, j: f64) -> Self {
        self.distance_jitter = j;
        self
    }
}

impl CameraPath for RandomWalkPath {
    fn generate(&self, n: usize) -> Vec<CameraPose> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut dir = crate::sphere::sample_on_sphere(&mut rng);
        let mut d = self.start_distance.clamp(self.domain.r_min, self.domain.r_max);
        let shell = self.domain.r_max - self.domain.r_min;
        let mut poses = Vec::with_capacity(n);
        for _ in 0..n {
            poses.push(CameraPose::new(
                self.domain.center + dir * d,
                self.domain.center,
                self.view_angle,
            ));
            // Rotate around a random axis orthogonal to `dir` so the full
            // step budget goes into direction change.
            let tangent = dir.any_orthonormal();
            let spin: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let axis = tangent.rotate_around(dir, spin);
            let step = deg_to_rad(rng.gen_range(self.step_min_deg..=self.step_max_deg));
            dir = dir.rotate_around(axis, step).normalize();
            if self.distance_jitter > 0.0 && shell > 0.0 {
                let dd = rng.gen_range(-1.0..=1.0) * self.distance_jitter * shell;
                d = (d + dd).clamp(self.domain.r_min, self.domain.r_max);
            }
        }
        poses
    }

    fn label(&self) -> String {
        format!("random(step={}-{}deg,seed={})", self.step_min_deg, self.step_max_deg, self.seed)
    }
}

/// Zoom in/out along a fixed direction: distance sweeps linearly from
/// `d_start` to `d_end` and back (triangle wave over the path).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ZoomPath {
    /// Exploration domain (distances are clamped into it).
    pub domain: ExplorationDomain,
    /// Fixed view direction (center towards camera), normalized.
    pub direction: Vec3,
    /// Distance at the path ends.
    pub d_start: f64,
    /// Distance at the path midpoint.
    pub d_end: f64,
    /// Full frustum view angle in radians.
    pub view_angle: f64,
}

impl ZoomPath {
    /// Create a zoom path along a fixed direction.
    pub fn new(
        domain: ExplorationDomain,
        direction: Vec3,
        d_start: f64,
        d_end: f64,
        view_angle: f64,
    ) -> Self {
        ZoomPath { domain, direction: direction.normalize(), d_start, d_end, view_angle }
    }
}

impl CameraPath for ZoomPath {
    fn generate(&self, n: usize) -> Vec<CameraPose> {
        let mut poses = Vec::with_capacity(n);
        for i in 0..n {
            // Triangle wave in [0, 1]: 0 → 1 → 0 over the path.
            let t = if n <= 1 { 0.0 } else { i as f64 / (n - 1) as f64 };
            let tri = 1.0 - (2.0 * t - 1.0).abs();
            let d = (self.d_start + (self.d_end - self.d_start) * tri)
                .clamp(self.domain.r_min, self.domain.r_max);
            poses.push(CameraPose::new(
                self.domain.center + self.direction * d,
                self.domain.center,
                self.view_angle,
            ));
        }
        poses
    }

    fn label(&self) -> String {
        format!("zoom(d={:.2}..{:.2})", self.d_start, self.d_end)
    }
}

/// Concatenation of several paths, splitting the pose budget evenly.
pub struct CompositePath {
    /// Ordered path segments.
    pub segments: Vec<Box<dyn CameraPath + Send + Sync>>,
}

impl CompositePath {
    /// Create from segments (at least one).
    pub fn new(segments: Vec<Box<dyn CameraPath + Send + Sync>>) -> Self {
        assert!(!segments.is_empty(), "composite path needs at least one segment");
        CompositePath { segments }
    }
}

impl CameraPath for CompositePath {
    fn generate(&self, n: usize) -> Vec<CameraPose> {
        let k = self.segments.len();
        let base = n / k;
        let extra = n % k;
        let mut poses = Vec::with_capacity(n);
        for (i, seg) in self.segments.iter().enumerate() {
            let len = base + usize::from(i < extra);
            poses.extend(seg.generate(len));
        }
        poses
    }

    fn label(&self) -> String {
        let inner: Vec<String> = self.segments.iter().map(|s| s.label()).collect();
        format!("composite[{}]", inner.join("+"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::angle::rad_to_deg;

    fn domain() -> ExplorationDomain {
        ExplorationDomain::new(Vec3::ZERO, 1.5, 6.0)
    }

    #[test]
    fn spherical_path_has_constant_distance_and_step() {
        let p = SphericalPath::new(domain(), 3.0, 10.0, 0.7);
        let poses = p.generate(50);
        assert_eq!(poses.len(), 50);
        for w in poses.windows(2) {
            assert!((w[0].distance() - 3.0).abs() < 1e-9);
            let change = rad_to_deg(w[0].direction_change(&w[1]));
            assert!((change - 10.0).abs() < 1e-6, "step was {change}");
        }
    }

    #[test]
    fn spherical_path_clamps_distance_into_domain() {
        let p = SphericalPath::new(domain(), 100.0, 5.0, 0.7);
        for pose in p.generate(10) {
            assert!((pose.distance() - 6.0).abs() < 1e-9);
        }
    }

    #[test]
    fn random_walk_step_sizes_respect_range() {
        let p = RandomWalkPath::new(domain(), 3.0, 10.0, 15.0, 0.7, 42).with_distance_jitter(0.0);
        let poses = p.generate(200);
        for w in poses.windows(2) {
            let change = rad_to_deg(w[0].direction_change(&w[1]));
            assert!(
                (10.0 - 1e-6..=15.0 + 1e-6).contains(&change),
                "step {change} outside [10, 15]"
            );
        }
    }

    #[test]
    fn random_walk_is_seed_deterministic() {
        let p = RandomWalkPath::new(domain(), 3.0, 0.0, 5.0, 0.7, 7);
        assert_eq!(p.generate(40), p.generate(40));
        let q = RandomWalkPath::new(domain(), 3.0, 0.0, 5.0, 0.7, 8);
        assert_ne!(p.generate(40), q.generate(40));
    }

    #[test]
    fn random_walk_distances_stay_in_domain() {
        let p = RandomWalkPath::new(domain(), 3.0, 5.0, 10.0, 0.7, 3).with_distance_jitter(0.5);
        for pose in p.generate(500) {
            let d = pose.distance();
            assert!((1.5 - 1e-9..=6.0 + 1e-9).contains(&d), "d = {d} escaped the domain");
        }
    }

    #[test]
    fn zoom_path_sweeps_and_returns() {
        let p = ZoomPath::new(domain(), Vec3::X, 2.0, 5.0, 0.7);
        let poses = p.generate(101);
        assert!((poses[0].distance() - 2.0).abs() < 1e-9);
        assert!((poses[50].distance() - 5.0).abs() < 1e-9);
        assert!((poses[100].distance() - 2.0).abs() < 1e-9);
        // Direction never changes on a zoom path.
        for w in poses.windows(2) {
            assert!(w[0].direction_change(&w[1]) < 1e-9);
        }
    }

    #[test]
    fn composite_splits_budget() {
        let c = CompositePath::new(vec![
            Box::new(SphericalPath::new(domain(), 3.0, 5.0, 0.7)),
            Box::new(ZoomPath::new(domain(), Vec3::X, 2.0, 5.0, 0.7)),
        ]);
        assert_eq!(c.generate(99).len(), 99);
        assert_eq!(c.generate(100).len(), 100);
    }

    #[test]
    fn labels_are_informative() {
        assert!(SphericalPath::new(domain(), 3.0, 5.0, 0.7).label().contains("spherical"));
        assert!(RandomWalkPath::new(domain(), 3.0, 0.0, 5.0, 0.7, 1).label().contains("random"));
    }
}
