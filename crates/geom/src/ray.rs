//! Rays and ray/box intersection, used by the software volume renderer.

use crate::aabb::Aabb;
use crate::camera::CameraPose;
use crate::vec3::Vec3;

/// A half-line `origin + t * direction`, `t >= 0`, with unit direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    /// Ray start point.
    pub origin: Vec3,
    /// Unit direction.
    pub direction: Vec3,
}

impl Ray {
    /// Create a ray; `direction` is normalized.
    pub fn new(origin: Vec3, direction: Vec3) -> Self {
        Ray { origin, direction: direction.normalize() }
    }

    /// Point at parameter `t` along the ray.
    #[inline]
    pub fn at(&self, t: f64) -> Vec3 {
        self.origin + self.direction * t
    }

    /// Slab-method intersection with an AABB. Returns the parametric entry
    /// and exit distances `(t_near, t_far)` with `t_near <= t_far`, clipped
    /// to `t >= 0`; `None` when the ray misses the box entirely.
    pub fn intersect_aabb(&self, aabb: &Aabb) -> Option<(f64, f64)> {
        let mut t0 = 0.0f64;
        let mut t1 = f64::INFINITY;
        for axis in 0..3 {
            let (o, d, lo, hi) = match axis {
                0 => (self.origin.x, self.direction.x, aabb.min.x, aabb.max.x),
                1 => (self.origin.y, self.direction.y, aabb.min.y, aabb.max.y),
                _ => (self.origin.z, self.direction.z, aabb.min.z, aabb.max.z),
            };
            if d.abs() < 1e-300 {
                // Parallel to the slab: must already be inside it.
                if o < lo || o > hi {
                    return None;
                }
                continue;
            }
            let inv = 1.0 / d;
            let (ta, tb) = ((lo - o) * inv, (hi - o) * inv);
            let (ta, tb) = if ta <= tb { (ta, tb) } else { (tb, ta) };
            t0 = t0.max(ta);
            t1 = t1.min(tb);
            if t0 > t1 {
                return None;
            }
        }
        Some((t0, t1))
    }
}

/// Generates primary rays for a square image from a camera pose
/// (pinhole model; vertical FOV = the pose's view angle, aspect 1).
#[derive(Debug, Clone, Copy)]
pub struct RayGenerator {
    origin: Vec3,
    right: Vec3,
    up: Vec3,
    forward: Vec3,
    half_tan: f64,
    width: usize,
    height: usize,
}

impl RayGenerator {
    /// Create a generator for a `width × height` image from a pose.
    pub fn new(pose: &CameraPose, width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0);
        let basis = pose.basis();
        RayGenerator {
            origin: pose.position,
            right: basis.right,
            up: basis.up,
            forward: basis.forward,
            half_tan: (pose.view_angle * 0.5).tan(),
            width,
            height,
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Ray through the center of pixel `(px, py)`, `(0, 0)` = top-left.
    pub fn ray(&self, px: usize, py: usize) -> Ray {
        let aspect = self.width as f64 / self.height as f64;
        // NDC in [-1, 1], y flipped so py = 0 is the top row.
        let x = (2.0 * (px as f64 + 0.5) / self.width as f64 - 1.0) * self.half_tan * aspect;
        let y = (1.0 - 2.0 * (py as f64 + 0.5) / self.height as f64) * self.half_tan;
        let dir = self.forward + self.right * x + self.up * y;
        Ray::new(self.origin, dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::angle::deg_to_rad;

    #[test]
    fn ray_direction_is_normalized() {
        let r = Ray::new(Vec3::ZERO, Vec3::new(3.0, 4.0, 0.0));
        assert!((r.direction.norm() - 1.0).abs() < 1e-12);
        assert_eq!(r.at(5.0), Vec3::new(3.0, 4.0, 0.0));
    }

    #[test]
    fn ray_hits_box_straight_on() {
        let r = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::Z);
        let b = Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0));
        let (t0, t1) = r.intersect_aabb(&b).unwrap();
        assert!((t0 - 4.0).abs() < 1e-12);
        assert!((t1 - 6.0).abs() < 1e-12);
    }

    #[test]
    fn ray_misses_box() {
        let r = Ray::new(Vec3::new(10.0, 10.0, -5.0), Vec3::Z);
        let b = Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0));
        assert!(r.intersect_aabb(&b).is_none());
    }

    #[test]
    fn ray_starting_inside_clips_entry_to_zero() {
        let r = Ray::new(Vec3::ZERO, Vec3::X);
        let b = Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0));
        let (t0, t1) = r.intersect_aabb(&b).unwrap();
        assert_eq!(t0, 0.0);
        assert!((t1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn box_behind_ray_is_missed() {
        let r = Ray::new(Vec3::new(0.0, 0.0, 5.0), Vec3::Z);
        let b = Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0));
        assert!(r.intersect_aabb(&b).is_none());
    }

    #[test]
    fn axis_parallel_ray_inside_slab() {
        let r = Ray::new(Vec3::new(0.5, 0.5, -3.0), Vec3::Z);
        let b = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        assert!(r.intersect_aabb(&b).is_some());
        let r2 = Ray::new(Vec3::new(1.5, 0.5, -3.0), Vec3::Z);
        assert!(r2.intersect_aabb(&b).is_none());
    }

    #[test]
    fn center_pixel_ray_points_forward() {
        let pose = CameraPose::new(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, deg_to_rad(45.0));
        let gen = RayGenerator::new(&pose, 101, 101);
        let r = gen.ray(50, 50);
        assert!(r.direction.distance(pose.view_direction()) < 1e-2);
    }

    #[test]
    fn corner_rays_diverge_by_fov() {
        let pose = CameraPose::new(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, deg_to_rad(60.0));
        let gen = RayGenerator::new(&pose, 100, 100);
        let top = gen.ray(50, 0);
        let bottom = gen.ray(50, 99);
        let spread = top.direction.angle_between(bottom.direction);
        // Pixel centers sit half a pixel inside the frustum edge.
        assert!(spread < deg_to_rad(60.0));
        assert!(spread > deg_to_rad(55.0));
    }

    #[test]
    fn all_image_rays_hit_centered_volume() {
        // FOV chosen so the unit cube fills the view: every primary ray
        // must intersect.
        let pose = CameraPose::new(Vec3::new(0.0, 0.0, 4.0), Vec3::ZERO, deg_to_rad(30.0));
        let gen = RayGenerator::new(&pose, 32, 32);
        let b = Aabb::new(Vec3::splat(-1.5), Vec3::splat(1.5));
        for py in 0..32 {
            for px in 0..32 {
                assert!(gen.ray(px, py).intersect_aabb(&b).is_some(), "miss at {px},{py}");
            }
        }
    }
}
