//! Criterion benchmarks for the `viz-fetch` engine: worker-pool scaling
//! on a latency-injected source, coalesced demand reads, and the cost of
//! a generation bump over a queued backlog.
//!
//! The checked-in numbers live in `BENCH_fetch.json` (regenerate with
//! `cargo run --release -p viz-bench --bin fetch`); this group tracks
//! regressions on the same operating points.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;
use std::time::Duration;
use viz_fetch::{BlockPool, FetchConfig, FetchEngine, InstrumentedSource};
use viz_volume::{BlockId, BlockKey, BlockSource, MemBlockStore};

const BLOCKS: usize = 128;
const BLOCK_LEN: usize = 1024;
const DELAY: Duration = Duration::from_micros(100);

fn store() -> Arc<MemBlockStore> {
    let s = MemBlockStore::new();
    for i in 0..BLOCKS {
        s.insert(BlockKey::scalar(BlockId(i as u32)), vec![i as f32; BLOCK_LEN]);
    }
    Arc::new(s)
}

fn bench_worker_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("fetch_throughput");
    g.sample_size(10);
    for &workers in &[1usize, 2, 4, 8] {
        g.throughput(Throughput::Elements(BLOCKS as u64));
        g.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &w| {
            b.iter(|| {
                let source = Arc::new(InstrumentedSource::new(store(), DELAY));
                let pool = Arc::new(BlockPool::new());
                let engine = FetchEngine::spawn(
                    source as Arc<dyn BlockSource>,
                    pool,
                    FetchConfig { workers: w, queue_cap: BLOCKS * 2, ..FetchConfig::default() },
                );
                for i in 0..BLOCKS {
                    engine.prefetch(BlockKey::scalar(BlockId(i as u32)), i as f64);
                }
                engine.sync();
                engine.shutdown().completed
            });
        });
    }
    g.finish();
}

fn bench_coalesced_demand(c: &mut Criterion) {
    // Residency fast path: every get() after the first coalesces onto the
    // resident block; this measures the per-request overhead of that path.
    let source = Arc::new(InstrumentedSource::new(store(), Duration::ZERO));
    let pool = Arc::new(BlockPool::new());
    let engine = FetchEngine::spawn(
        source as Arc<dyn BlockSource>,
        pool,
        FetchConfig { workers: 2, queue_cap: 1024, ..FetchConfig::default() },
    );
    let key = BlockKey::scalar(BlockId(0));
    engine.get(key).expect("warm the block");
    c.bench_function("fetch_resident_get", |b| {
        b.iter(|| engine.get(key).expect("resident read"));
    });
}

fn bench_generation_bump(c: &mut Criterion) {
    // Cost of invalidating a queued backlog: queue BLOCKS prefetches in
    // deterministic mode, bump, and drain (every entry cancels at dequeue).
    c.bench_function("fetch_bump_and_drain_backlog", |b| {
        b.iter(|| {
            let source = Arc::new(InstrumentedSource::new(store(), Duration::ZERO));
            let pool = Arc::new(BlockPool::new());
            let engine = FetchEngine::deterministic(source as Arc<dyn BlockSource>, pool);
            for i in 0..BLOCKS {
                engine.prefetch(BlockKey::scalar(BlockId(i as u32)), 1.0);
            }
            engine.bump_generation();
            engine.run_until_idle();
            engine.shutdown().cancelled
        });
    });
}

criterion_group!(benches, bench_worker_scaling, bench_coalesced_demand, bench_generation_bump);
criterion_main!(benches);
