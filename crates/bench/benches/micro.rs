//! Criterion micro-benchmarks for the performance-critical primitives:
//! entropy computation, visibility testing, T_visible construction,
//! nearest-sample lookup, and cache-policy operations.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use viz_cache::{AccessClass, CacheLevel, Hierarchy, Lookup, PolicyKind};
use viz_core::{
    visible_blocks, visible_blocks_brute_force, ImportanceTable, RadiusModel, RadiusRule,
    SamplingConfig, VisibleTable,
};
use viz_geom::angle::deg_to_rad;
use viz_geom::CameraPose;
use viz_volume::{BlockBvh, BlockStats, BrickLayout, DatasetKind, DatasetSpec, Dims3};

fn bench_entropy(c: &mut Criterion) {
    let mut g = c.benchmark_group("entropy");
    for &n in &[4096usize, 32768, 262144] {
        let data: Vec<f32> = (0..n).map(|i| ((i * 2654435761) % 1000) as f32 / 1000.0).collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("block_stats", n), &data, |b, d| {
            b.iter(|| BlockStats::compute(black_box(d), 0.0, 1.0, 64));
        });
    }
    g.finish();
}

fn bench_visibility(c: &mut Criterion) {
    let mut g = c.benchmark_group("visibility");
    for &blocks in &[512usize, 2048, 4096] {
        let layout = BrickLayout::with_target_blocks(Dims3::cube(256), blocks);
        let pose = CameraPose::orbit(80.0, 30.0, 2.5, 15.0);
        g.throughput(Throughput::Elements(layout.num_blocks() as u64));
        g.bench_with_input(BenchmarkId::new("cone_frame", blocks), &layout, |b, l| {
            b.iter(|| visible_blocks(black_box(&pose), black_box(l)));
        });
    }
    g.finish();
}

fn bench_bvh(c: &mut Criterion) {
    let mut g = c.benchmark_group("bvh");
    for &blocks in &[512usize, 4096, 32768] {
        let layout = BrickLayout::with_target_blocks(Dims3::cube(512), blocks);
        let n = layout.num_blocks() as u64;
        let pose = CameraPose::orbit(80.0, 30.0, 2.5, 15.0);
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("build", blocks), &layout, |b, l| {
            b.iter(|| BlockBvh::new(black_box(l)));
        });
        // Warm the cached index so the query benches measure queries only.
        let _ = layout.block_bvh();
        g.bench_with_input(BenchmarkId::new("query_bvh", blocks), &layout, |b, l| {
            b.iter(|| visible_blocks(black_box(&pose), black_box(l)));
        });
        g.bench_with_input(BenchmarkId::new("query_brute", blocks), &layout, |b, l| {
            b.iter(|| visible_blocks_brute_force(black_box(&pose), black_box(l)));
        });
    }
    g.finish();
}

fn bench_table_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("t_visible_build");
    g.sample_size(10);
    let layout = BrickLayout::with_target_blocks(Dims3::cube(128), 512);
    let importance =
        ImportanceTable::from_entropies((0..layout.num_blocks()).map(|i| i as f64).collect(), 64);
    for &samples in &[180usize, 720, 1620] {
        let cfg =
            SamplingConfig::paper_default(2.0, 3.2, deg_to_rad(15.0)).with_target_samples(samples);
        g.bench_with_input(BenchmarkId::new("samples", samples), &cfg, |b, cfg| {
            b.iter(|| {
                VisibleTable::build(
                    *cfg,
                    black_box(&layout),
                    RadiusRule::Optimal(RadiusModel::new(0.25, deg_to_rad(15.0))),
                    Some((&importance, 128)),
                )
            });
        });
    }
    g.finish();
}

fn bench_table_lookup(c: &mut Criterion) {
    let layout = BrickLayout::with_target_blocks(Dims3::cube(128), 512);
    let cfg = SamplingConfig::paper_default(2.0, 3.2, deg_to_rad(15.0)).with_target_samples(3240);
    let tv = VisibleTable::build(cfg, &layout, RadiusRule::Fixed(0.05), None);
    let poses: Vec<CameraPose> = (0..64)
        .map(|i| {
            CameraPose::orbit(i as f64 * 3.0, i as f64 * 7.0, 2.0 + (i % 10) as f64 * 0.1, 15.0)
        })
        .collect();
    c.bench_function("t_visible_lookup_64_poses", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for p in &poses {
                total += tv.predict(black_box(p)).len();
            }
            total
        });
    });
}

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy_ops");
    let trace: Vec<u32> = (0..10_000u32).map(|i| (i * 2654435761) % 2048).collect();
    for kind in [
        PolicyKind::Fifo,
        PolicyKind::Lru,
        PolicyKind::Clock,
        PolicyKind::Lfu,
        PolicyKind::Arc,
        PolicyKind::TwoQ,
        PolicyKind::Mru,
    ] {
        g.throughput(Throughput::Elements(trace.len() as u64));
        g.bench_with_input(BenchmarkId::new("access_insert", kind.label()), &trace, |b, t| {
            b.iter(|| {
                let mut cache: CacheLevel<u32> = CacheLevel::new(kind, 512);
                let mut misses = 0u32;
                for &k in t {
                    if cache.access(k) == Lookup::Miss {
                        misses += 1;
                        cache.insert(k);
                    }
                }
                misses
            });
        });
    }
    g.finish();
}

fn bench_hierarchy(c: &mut Criterion) {
    let trace: Vec<u32> = (0..10_000u32).map(|i| (i * 40503) % 4096).collect();
    c.bench_function("hierarchy_fetch_10k", |b| {
        b.iter(|| {
            let mut h: Hierarchy<u32> =
                Hierarchy::paper_default(4096, 0.5, PolicyKind::Lru, 64 * 1024);
            for &k in &trace {
                h.fetch(black_box(k), AccessClass::Demand);
            }
            h.stats().miss_rate()
        });
    });
}

fn bench_dataset_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("dataset_gen");
    g.sample_size(10);
    for kind in [DatasetKind::Ball3d, DatasetKind::LiftedRr, DatasetKind::Climate] {
        g.bench_function(BenchmarkId::new("materialize_scale16", kind.name()), |b| {
            let spec = DatasetSpec::new(kind, 16, 1);
            b.iter(|| spec.materialize(0, 0.0));
        });
    }
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    use viz_volume::Codec;
    let mut g = c.benchmark_group("codec");
    let smooth: Vec<f32> = (0..32768).map(|i| (i as f32 / 32768.0).sin()).collect();
    let ambient = vec![0.0f32; 32768];
    for (name, data) in [("smooth", &smooth), ("ambient", &ambient)] {
        g.throughput(Throughput::Bytes((data.len() * 4) as u64));
        g.bench_function(BenchmarkId::new("plane_rle_compress", name), |b| {
            b.iter(|| Codec::PlaneRle.compress(black_box(data)));
        });
        let encoded = Codec::PlaneRle.compress(data);
        g.bench_function(BenchmarkId::new("plane_rle_decompress", name), |b| {
            b.iter(|| Codec::PlaneRle.decompress(black_box(&encoded), data.len()).unwrap());
        });
    }
    g.finish();
}

fn bench_reuse_profile(c: &mut Criterion) {
    use viz_core::ReuseProfile;
    let trace: Vec<u32> = (0..20_000u32).map(|i| (i * 2654435761) % 512).collect();
    c.bench_function("reuse_profile_20k", |b| {
        b.iter(|| ReuseProfile::compute(black_box(&trace)));
    });
}

criterion_group!(
    benches,
    bench_codec,
    bench_reuse_profile,
    bench_entropy,
    bench_visibility,
    bench_bvh,
    bench_table_build,
    bench_table_lookup,
    bench_policies,
    bench_hierarchy,
    bench_dataset_generation
);
criterion_main!(benches);
