//! The safety invariant, pinned: under every hostile scenario, with
//! adaptation enabled, **zero demand sheds and zero demand errors** —
//! demand admission is structural, not a tuning outcome.
//!
//! Replays run over a deterministic in-process server (`workers = 0`,
//! engine stepped to idle each step) reading through a virtual clock, so
//! no wall time enters the run. The adaptive arm chases a 1 ns SLO — an
//! SLO nothing can meet — which pins the ladder at its minimum scale for
//! the entire run: the harshest configuration the controller can ever
//! produce. Even there, every demand key of every frame must come back,
//! and the per-reason shed counters must attribute every shed to a
//! prefetch rung.

use std::time::Duration;
use viz_bench::{run_schedule, ReplayOptions, ScenarioConfig, ScenarioKind, Schedule};

fn virtual_opts(slo: Option<u64>) -> ReplayOptions {
    ReplayOptions { slo_p99_ns: slo, read_delay: Duration::ZERO, virtual_clock: true }
}

#[test]
fn no_demand_shed_or_error_under_any_hostile_scenario() {
    for kind in ScenarioKind::ALL {
        for seed in [1u64, 0xFEED] {
            let schedule = Schedule::generate(ScenarioConfig::hostile(kind, seed).fast());
            // The unmeetable SLO: the ladder spends the run at min scale.
            let report = run_schedule(&schedule, &virtual_opts(Some(1)));
            let tag = format!("{} seed {seed}", kind.name());
            assert_eq!(report.demand_errors, 0, "{tag}: demand errored");
            assert_eq!(report.demand_ok, report.demand_keys, "{tag}: a demand key never came back");
            assert_eq!(
                report.demand_admitted, report.demand_keys,
                "{tag}: a demand key was not admitted — demand must never shed"
            );
            assert!(
                report.final_scale <= 1.0 / 16.0 + 1e-9,
                "{tag}: the 1 ns SLO should pin the ladder at min scale, got {}",
                report.final_scale
            );
        }
    }
}

#[test]
fn fixed_baseline_holds_the_same_invariant() {
    // The invariant is not an adaptation feature: fixed defaults hold it
    // too, which is what makes before/after curves comparable.
    for kind in ScenarioKind::ALL {
        let schedule = Schedule::generate(ScenarioConfig::hostile(kind, 5).fast());
        let report = run_schedule(&schedule, &virtual_opts(None));
        assert_eq!(report.demand_errors, 0, "{}", kind.name());
        assert_eq!(report.demand_ok, report.demand_keys, "{}", kind.name());
        assert_eq!(report.demand_admitted, report.demand_keys, "{}", kind.name());
        assert!(report.scale_per_tick.is_empty(), "fixed arm must not tick a controller");
    }
}

#[test]
fn sheds_are_always_attributed() {
    // Whenever the total shed counter moved, the per-reason counters must
    // account for every single shed — no anonymous drops.
    for kind in ScenarioKind::ALL {
        let schedule = Schedule::generate(ScenarioConfig::hostile(kind, 9).fast());
        let report = run_schedule(&schedule, &virtual_opts(Some(1)));
        let attributed: u64 = report.shed_by_reason.iter().map(|(_, v)| *v).sum();
        assert_eq!(
            attributed,
            report.prefetch_shed,
            "{}: shed counters do not reconcile",
            kind.name()
        );
    }
}
