//! Seeded, replayable hostile-workload scenarios.
//!
//! The adaptive loops are judged against workloads *designed* to hurt:
//! each [`ScenarioKind`] encodes one documented failure mode of a fixed
//! configuration. Generation is strictly open-loop — a
//! [`Schedule`] is a pure function of its [`ScenarioConfig`], computed
//! before any server exists, so a run can be replayed bit-for-bit
//! against fixed defaults and against closed-loop adaptation and the
//! curves compared point by point. [`Schedule::encode`] gives the
//! byte-stable form the determinism tests (and any future corpus
//! pinning) compare.
//!
//! Keys are plain `u32` block indices into a configured keyspace; the
//! consumer maps them to [`viz_volume::BlockKey`]s.

use serde::{Deserialize, Serialize};

/// SplitMix64 — the standard 64-bit mixer; tiny, seedable, and stable
/// across platforms, which is all a replayable generator needs.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seed the stream.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n = 0` yields 0.
    pub fn below(&mut self, n: u32) -> u32 {
        if n == 0 {
            0
        } else {
            (self.next_u64() % u64::from(n)) as u32
        }
    }
}

/// One documented way to hurt a fixed configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// Quiet single-viewer start, then every client joins at once on one
    /// hot region: admission quotas sized for the quiet phase face a
    /// spike, and the spike is *correlated* so coalescing either saves
    /// the day or the queue watermark trips.
    FlashCrowd,
    /// Sessions open, run a few frames, and close in rotation: per-session
    /// state (σ controllers, quotas, flight prediction) never gets long
    /// enough to learn, and registry churn runs concurrently with serving.
    SessionChurn,
    /// Each viewer teleports every frame — demand walks with no spatial
    /// locality, so vicinity prefetch around the current position is
    /// pure waste and a fixed σ/radius speculates on noise.
    AdversarialCamera,
    /// Every client issues the *same* random burst each step, plus heavy
    /// prefetch of one shared region: maximal duplication pressure on
    /// queues, quotas, and the coalescer at once.
    CorrelatedStorm,
}

impl ScenarioKind {
    /// Every scenario, in a stable order.
    pub const ALL: [ScenarioKind; 4] = [
        ScenarioKind::FlashCrowd,
        ScenarioKind::SessionChurn,
        ScenarioKind::AdversarialCamera,
        ScenarioKind::CorrelatedStorm,
    ];

    /// Stable lowercase name (JSON keys, filenames).
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::FlashCrowd => "flash_crowd",
            ScenarioKind::SessionChurn => "session_churn",
            ScenarioKind::AdversarialCamera => "adversarial_camera",
            ScenarioKind::CorrelatedStorm => "correlated_storm",
        }
    }

    /// Stable wire/encode discriminant.
    fn code(self) -> u8 {
        match self {
            ScenarioKind::FlashCrowd => 0,
            ScenarioKind::SessionChurn => 1,
            ScenarioKind::AdversarialCamera => 2,
            ScenarioKind::CorrelatedStorm => 3,
        }
    }
}

/// Everything a [`Schedule`] is a function of.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Which pathology to generate.
    pub kind: ScenarioKind,
    /// Master seed; the only source of randomness.
    pub seed: u64,
    /// Steps (frames per surviving client) in the schedule.
    pub steps: u32,
    /// Peak concurrent clients.
    pub clients: u32,
    /// Number of distinct keys the scenario draws from.
    pub keyspace: u32,
    /// Demand keys per client frame.
    pub demand_per_frame: u32,
    /// Prefetch keys per client frame.
    pub prefetch_per_frame: u32,
}

impl ScenarioConfig {
    /// The standard hostile shape for `kind` at `seed`.
    pub fn hostile(kind: ScenarioKind, seed: u64) -> Self {
        ScenarioConfig {
            kind,
            seed,
            steps: 64,
            clients: 8,
            // Wide enough that teleporting cameras and key storms stay
            // cold for the whole run — a keyspace the pool can swallow
            // early would turn every scenario into a warm no-op.
            keyspace: 4096,
            demand_per_frame: 4,
            prefetch_per_frame: 12,
        }
    }

    /// Shrink for CI smoke runs.
    pub fn fast(mut self) -> Self {
        self.steps = self.steps.min(24);
        self.clients = self.clients.min(4);
        self.keyspace = self.keyspace.min(1024);
        self
    }
}

/// One client action at one step.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClientOp {
    /// Open a session for `client`.
    Open {
        /// Client index, `0..clients`.
        client: u32,
    },
    /// Close `client`'s session.
    Close {
        /// Client index.
        client: u32,
    },
    /// One frame: demand must land, prefetch is at the server's mercy.
    Frame {
        /// Client index.
        client: u32,
        /// Demand key indices.
        demand: Vec<u32>,
        /// Prefetch key indices with descending priority.
        prefetch: Vec<u32>,
    },
}

/// A fully materialized run: `steps[t]` is every op at step `t`, in
/// issue order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// The config this schedule is a pure function of.
    pub cfg: ScenarioConfig,
    /// Per-step ops.
    pub steps: Vec<Vec<ClientOp>>,
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

impl Schedule {
    /// Generate the schedule for `cfg` — same `cfg` in, same bytes out,
    /// on every platform and every run.
    pub fn generate(cfg: ScenarioConfig) -> Schedule {
        // Distinct streams per role so e.g. churn timing never perturbs
        // key choice; both are functions of (seed, kind) only.
        let mut keys = SplitMix64::new(cfg.seed ^ 0xA5A5_0000 ^ u64::from(cfg.kind.code()));
        let mut churn = SplitMix64::new(cfg.seed ^ 0x5A5A_0000 ^ u64::from(cfg.kind.code()));
        let mut steps: Vec<Vec<ClientOp>> = Vec::with_capacity(cfg.steps as usize);
        match cfg.kind {
            ScenarioKind::FlashCrowd => Self::flash_crowd(&cfg, &mut keys, &mut steps),
            ScenarioKind::SessionChurn => {
                Self::session_churn(&cfg, &mut keys, &mut churn, &mut steps)
            }
            ScenarioKind::AdversarialCamera => {
                Self::adversarial_camera(&cfg, &mut keys, &mut steps)
            }
            ScenarioKind::CorrelatedStorm => Self::correlated_storm(&cfg, &mut keys, &mut steps),
        }
        // Everybody still open closes at the end, highest index first —
        // a fixed, kind-independent epilogue.
        let mut open = vec![false; cfg.clients as usize];
        for step in &steps {
            for op in step {
                match *op {
                    ClientOp::Open { client } => open[client as usize] = true,
                    ClientOp::Close { client } => open[client as usize] = false,
                    ClientOp::Frame { .. } => {}
                }
            }
        }
        let epilogue: Vec<ClientOp> = (0..cfg.clients)
            .rev()
            .filter(|&c| open[c as usize])
            .map(|c| ClientOp::Close { client: c })
            .collect();
        steps.push(epilogue);
        Schedule { cfg, steps }
    }

    fn frame(cfg: &ScenarioConfig, client: u32, keys: &mut SplitMix64, spread: u32) -> ClientOp {
        // Demand clusters inside a `spread`-wide window; prefetch trails
        // around the window as a vicinity guess.
        let base = keys.below(cfg.keyspace);
        let demand: Vec<u32> = (0..cfg.demand_per_frame)
            .map(|_| (base + keys.below(spread.max(1))) % cfg.keyspace)
            .collect();
        let prefetch: Vec<u32> =
            (0..cfg.prefetch_per_frame).map(|i| (base + spread + i) % cfg.keyspace).collect();
        ClientOp::Frame { client, demand, prefetch }
    }

    fn flash_crowd(cfg: &ScenarioConfig, keys: &mut SplitMix64, steps: &mut Vec<Vec<ClientOp>>) {
        let crowd_at = cfg.steps / 4;
        let hot = keys.below(cfg.keyspace);
        for t in 0..cfg.steps {
            let mut ops = Vec::new();
            if t == 0 {
                ops.push(ClientOp::Open { client: 0 });
            }
            if t == crowd_at {
                for c in 1..cfg.clients {
                    ops.push(ClientOp::Open { client: c });
                }
            }
            let crowd = if t < crowd_at { 1 } else { cfg.clients };
            for c in 0..crowd {
                if t < crowd_at {
                    ops.push(Self::frame(cfg, c, keys, 8));
                } else {
                    // Everyone converges on the same hot window.
                    let demand: Vec<u32> = (0..cfg.demand_per_frame)
                        .map(|_| (hot + keys.below(8)) % cfg.keyspace)
                        .collect();
                    let prefetch: Vec<u32> =
                        (0..cfg.prefetch_per_frame).map(|i| (hot + 8 + i) % cfg.keyspace).collect();
                    ops.push(ClientOp::Frame { client: c, demand, prefetch });
                }
            }
            steps.push(ops);
        }
    }

    fn session_churn(
        cfg: &ScenarioConfig,
        keys: &mut SplitMix64,
        churn: &mut SplitMix64,
        steps: &mut Vec<Vec<ClientOp>>,
    ) {
        let mut open = vec![false; cfg.clients as usize];
        for t in 0..cfg.steps {
            let mut ops = Vec::new();
            if t == 0 {
                for c in 0..cfg.clients {
                    ops.push(ClientOp::Open { client: c });
                    open[c as usize] = true;
                }
            } else if t % 3 == 0 {
                // Recycle one client: a close and an immediate re-open,
                // so the registry churns while neighbours keep serving.
                let c = churn.below(cfg.clients);
                if open[c as usize] {
                    ops.push(ClientOp::Close { client: c });
                    ops.push(ClientOp::Open { client: c });
                }
            }
            for c in 0..cfg.clients {
                if open[c as usize] {
                    ops.push(Self::frame(cfg, c, keys, 8));
                }
            }
            steps.push(ops);
        }
    }

    fn adversarial_camera(
        cfg: &ScenarioConfig,
        keys: &mut SplitMix64,
        steps: &mut Vec<Vec<ClientOp>>,
    ) {
        for t in 0..cfg.steps {
            let mut ops = Vec::new();
            if t == 0 {
                for c in 0..cfg.clients {
                    ops.push(ClientOp::Open { client: c });
                }
            }
            for c in 0..cfg.clients {
                // Teleport: a fresh uniform base every frame (spread 1),
                // so the vicinity prefetch that trails the window never
                // predicts the next jump.
                ops.push(Self::frame(cfg, c, keys, 1));
            }
            steps.push(ops);
        }
    }

    fn correlated_storm(
        cfg: &ScenarioConfig,
        keys: &mut SplitMix64,
        steps: &mut Vec<Vec<ClientOp>>,
    ) {
        for t in 0..cfg.steps {
            let mut ops = Vec::new();
            if t == 0 {
                for c in 0..cfg.clients {
                    ops.push(ClientOp::Open { client: c });
                }
            }
            // One burst, shared verbatim by every client this step.
            let demand: Vec<u32> =
                (0..cfg.demand_per_frame).map(|_| keys.below(cfg.keyspace)).collect();
            let region = keys.below(cfg.keyspace);
            let prefetch: Vec<u32> =
                (0..cfg.prefetch_per_frame).map(|i| (region + i) % cfg.keyspace).collect();
            for c in 0..cfg.clients {
                ops.push(ClientOp::Frame {
                    client: c,
                    demand: demand.clone(),
                    prefetch: prefetch.clone(),
                });
            }
            steps.push(ops);
        }
    }

    /// Total `Frame` ops.
    pub fn frames(&self) -> usize {
        self.steps.iter().flatten().filter(|op| matches!(op, ClientOp::Frame { .. })).count()
    }

    /// Total demand keys across all frames.
    pub fn demand_keys(&self) -> u64 {
        self.steps
            .iter()
            .flatten()
            .map(|op| match op {
                ClientOp::Frame { demand, .. } => demand.len() as u64,
                _ => 0,
            })
            .sum()
    }

    /// Byte-stable encoding: little-endian, length-prefixed, no floats,
    /// no hashing — two schedules are equal iff their encodings are.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"HSTL1");
        out.push(self.cfg.kind.code());
        out.extend_from_slice(&self.cfg.seed.to_le_bytes());
        for v in [
            self.cfg.steps,
            self.cfg.clients,
            self.cfg.keyspace,
            self.cfg.demand_per_frame,
            self.cfg.prefetch_per_frame,
        ] {
            put_u32(&mut out, v);
        }
        put_u32(&mut out, self.steps.len() as u32);
        for step in &self.steps {
            put_u32(&mut out, step.len() as u32);
            for op in step {
                match op {
                    ClientOp::Open { client } => {
                        out.push(0);
                        put_u32(&mut out, *client);
                    }
                    ClientOp::Close { client } => {
                        out.push(1);
                        put_u32(&mut out, *client);
                    }
                    ClientOp::Frame { client, demand, prefetch } => {
                        out.push(2);
                        put_u32(&mut out, *client);
                        put_u32(&mut out, demand.len() as u32);
                        for k in demand {
                            put_u32(&mut out, *k);
                        }
                        put_u32(&mut out, prefetch.len() as u32);
                        for k in prefetch {
                            put_u32(&mut out, *k);
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_bytes_for_every_kind() {
        for kind in ScenarioKind::ALL {
            let cfg = ScenarioConfig::hostile(kind, 0xDEAD_BEEF);
            let a = Schedule::generate(cfg).encode();
            let b = Schedule::generate(cfg).encode();
            assert_eq!(a, b, "{} must be byte-identical for one seed", kind.name());
            assert!(!a.is_empty());
        }
    }

    #[test]
    fn different_seeds_differ_and_kinds_differ() {
        for kind in ScenarioKind::ALL {
            let a = Schedule::generate(ScenarioConfig::hostile(kind, 1)).encode();
            let b = Schedule::generate(ScenarioConfig::hostile(kind, 2)).encode();
            assert_ne!(a, b, "{} ignores its seed", kind.name());
        }
        let kinds: Vec<Vec<u8>> = ScenarioKind::ALL
            .iter()
            .map(|&k| Schedule::generate(ScenarioConfig::hostile(k, 7)).encode())
            .collect();
        for i in 0..kinds.len() {
            for j in i + 1..kinds.len() {
                assert_ne!(kinds[i], kinds[j], "two kinds produced identical schedules");
            }
        }
    }

    #[test]
    fn schedules_are_well_formed() {
        for kind in ScenarioKind::ALL {
            let cfg = ScenarioConfig::hostile(kind, 3).fast();
            let s = Schedule::generate(cfg);
            assert!(s.frames() > 0);
            assert!(s.demand_keys() > 0);
            // Replay with a session table: every Frame/Close hits an open
            // session, every key is inside the keyspace, and the epilogue
            // leaves nothing open.
            let mut open = vec![false; cfg.clients as usize];
            for step in &s.steps {
                for op in step {
                    match op {
                        ClientOp::Open { client } => {
                            assert!(!open[*client as usize], "double open");
                            open[*client as usize] = true;
                        }
                        ClientOp::Close { client } => {
                            assert!(open[*client as usize], "close without open");
                            open[*client as usize] = false;
                        }
                        ClientOp::Frame { client, demand, prefetch } => {
                            assert!(open[*client as usize], "frame on closed session");
                            for k in demand.iter().chain(prefetch) {
                                assert!(*k < cfg.keyspace);
                            }
                        }
                    }
                }
            }
            assert!(open.iter().all(|o| !o), "epilogue must close every session");
        }
    }

    #[test]
    fn storm_is_actually_correlated() {
        let s = Schedule::generate(ScenarioConfig::hostile(ScenarioKind::CorrelatedStorm, 9));
        // In any step, all Frame ops share one demand vector.
        for step in &s.steps {
            let demands: Vec<&Vec<u32>> = step
                .iter()
                .filter_map(|op| match op {
                    ClientOp::Frame { demand, .. } => Some(demand),
                    _ => None,
                })
                .collect();
            for d in &demands {
                assert_eq!(*d, demands[0], "storm demand must be identical across clients");
            }
        }
    }

    #[test]
    fn churn_recycles_sessions() {
        let s = Schedule::generate(ScenarioConfig::hostile(ScenarioKind::SessionChurn, 11));
        let closes =
            s.steps.iter().flatten().filter(|op| matches!(op, ClientOp::Close { .. })).count();
        assert!(closes > 5, "churn scenario barely churned ({closes} closes)");
    }
}
