//! Figure 11 — total I/O + prefetching time over 400 camera positions:
//! the optimal radius r* (Eq. 6) vs. pre-defined radii
//! r ∈ {0.1, 0.075, 0.05, 0.025}.
//!
//! Paper setup: `lifted_rr` partitioned into 1024 blocks (block size
//! 50×100×50 at paper scale), fixed view angle, 400-position path with
//! varying distance d (zoom in/out), normalized volume edge 2. Expected
//! shape: the optimal r achieves the lowest combined I/O + prefetch time.
//!
//! Pass `--show-model` to also print the r(d) curve (the Fig. 10 model).

use viz_bench::{Env, Opts};
use viz_core::{run_session, AppAwareConfig, RadiusModel, RadiusRule, Strategy, Table};
use viz_volume::{DatasetKind, Dims3};

fn main() {
    let show_model = std::env::args().any(|a| a == "--show-model");
    let opts = Opts::parse(std::env::args().skip(1).filter(|a| a != "--show-model"));

    // 50×100×50 at paper scale → 1024 blocks of 800×800×400.
    let block =
        Dims3::new((50 / opts.scale).max(2), (100 / opts.scale).max(2), (50 / opts.scale).max(2));
    let env = Env::with_block_dims(DatasetKind::LiftedRr, opts.scale, block, opts.seed);
    eprintln!("fig11: {} blocks", env.layout.num_blocks());

    let cache_ratio = 0.25; // DRAM fraction of the dataset at ratio 0.5
    let model = RadiusModel::new(cache_ratio, Env::view_angle());

    if show_model {
        let mut m = Table::new(
            "fig10",
            "Fig. 10 model: optimal vicinal radius r(d)",
            "d",
            "r (normalized units)",
        );
        for i in 0..=10 {
            let d = 2.0 + 2.0 * i as f64 / 10.0;
            m.push(
                format!("{d:.1}"),
                vec![
                    ("r*".to_string(), model.optimal_radius(d)),
                    (
                        "cache fraction".to_string(),
                        model.predicted_fraction(d, model.optimal_radius(d)),
                    ),
                ],
            );
        }
        opts.emit(&m);
        println!();
    }

    // A path that exercises zooming (dynamically changing d), which is
    // where the adaptive radius matters (§V-B2).
    let path = env.zooming_random_path(5.0, 10.0, opts.steps, opts.seed ^ 0x11);
    let cfg = env.session_config(0.5);
    let sigma = env.sigma();
    let strategy = Strategy::AppAware(AppAwareConfig::paper(sigma));

    let mut t = Table::new(
        "fig11",
        "Fig. 11: total I/O + prefetching time, optimal r vs fixed r (lifted_rr, 1024 blocks)",
        "radius rule",
        "I/O + prefetch time (s)",
    );

    let mut cases: Vec<(String, RadiusRule)> =
        vec![("optimal r".to_string(), RadiusRule::Optimal(model))];
    for r in [0.1, 0.075, 0.05, 0.025] {
        cases.push((format!("r={r}"), RadiusRule::Fixed(r)));
    }

    for (label, rule) in cases {
        let tv = env.visible_table_with_rule(opts.samples, rule);
        let r = run_session(&cfg, &env.layout, &strategy, &path, Some((&tv, &env.importance)));
        // The paper overlaps prefetch with rendering, so the cost of a
        // radius rule is the demand I/O plus the prefetch time that did NOT
        // fit under rendering: total - render.
        let effective = r.total_s - r.render_s;
        eprintln!(
            "fig11: {label}: effective={:.3} io={:.3} prefetch={:.3} (mean |S_v| = {:.1})",
            effective,
            r.io_s,
            r.prefetch_s,
            tv.mean_set_size()
        );
        t.push(
            label,
            vec![
                ("io+unhidden prefetch".to_string(), effective),
                ("io".to_string(), r.io_s),
                ("raw prefetch".to_string(), r.prefetch_s),
                ("miss rate".to_string(), r.miss_rate),
            ],
        );
    }

    opts.emit(&t);
}
