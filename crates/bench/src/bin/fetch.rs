//! Fetch-engine benchmark: worker-pool throughput, coalescing, and
//! cancellation on a latency-injected block source.
//!
//! Measures:
//!
//! - prefetch throughput at 1/2/4/8 workers over an
//!   [`viz_fetch::InstrumentedSource`] that sleeps per read, mimicking a
//!   storage tier (the PR's ≥2× target at 4 workers vs 1);
//! - demand latency with and without a deep prefetch backlog in the
//!   queue (demand-over-prefetch priority at work);
//! - request coalescing: concurrent demand threads over a small key set,
//!   reads issued vs requests made;
//! - generation cancellation: source reads avoided when the camera moves
//!   on and the queued backlog is bumped stale.
//!
//! Uses only `viz-fetch` + `viz-volume` + `std` so it can also be built
//! standalone. Results are printed and written as JSON (default
//! `BENCH_fetch.json`; `--out PATH` overrides, `--fast` shrinks the
//! workload for smoke runs).

use std::sync::Arc;
use std::time::{Duration, Instant};
use viz_fetch::{BlockPool, FetchConfig, FetchEngine, InstrumentedSource};
use viz_volume::{BlockId, BlockKey, BlockSource, MemBlockStore};

struct Args {
    fast: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut a = Args { fast: false, out: "BENCH_fetch.json".to_string() };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fast" => a.fast = true,
            "--out" => {
                if let Some(p) = it.next() {
                    a.out = p;
                }
            }
            "--help" | "-h" => {
                eprintln!("options: --fast  --out PATH");
                std::process::exit(0);
            }
            other => eprintln!("ignoring unknown option {other:?}"),
        }
    }
    a
}

fn store_with(blocks: usize, block_len: usize) -> Arc<MemBlockStore> {
    let s = MemBlockStore::new();
    for i in 0..blocks {
        s.insert(BlockKey::scalar(BlockId(i as u32)), vec![i as f32; block_len]);
    }
    Arc::new(s)
}

/// Prefetch every block through a pool of `workers`, sync, and return
/// (elapsed seconds, blocks per second).
fn throughput_run(blocks: usize, block_len: usize, delay: Duration, workers: usize) -> (f64, f64) {
    let source = Arc::new(InstrumentedSource::new(store_with(blocks, block_len), delay));
    let pool = Arc::new(BlockPool::new());
    let engine = FetchEngine::spawn(
        source.clone() as Arc<dyn BlockSource>,
        pool.clone(),
        FetchConfig { workers, queue_cap: blocks * 2, ..FetchConfig::default() },
    );
    let t0 = Instant::now();
    for i in 0..blocks {
        engine.prefetch(BlockKey::scalar(BlockId(i as u32)), i as f64);
    }
    engine.sync();
    let dt = t0.elapsed().as_secs_f64();
    let m = engine.shutdown();
    assert_eq!(m.completed as usize, blocks, "every block must load exactly once");
    assert_eq!(source.reads(), blocks as u64, "no duplicate reads during the sweep");
    (dt, blocks as f64 / dt)
}

/// Demand latency for one block while `backlog` prefetches are queued.
fn demand_latency_run(backlog: usize, delay: Duration, workers: usize) -> f64 {
    let blocks = backlog + 1;
    let source = Arc::new(InstrumentedSource::new(store_with(blocks, 64), delay));
    let pool = Arc::new(BlockPool::new());
    let engine = FetchEngine::spawn(
        source as Arc<dyn BlockSource>,
        pool,
        FetchConfig { workers, queue_cap: blocks * 2, ..FetchConfig::default() },
    );
    for i in 0..backlog {
        engine.prefetch(BlockKey::scalar(BlockId(i as u32)), 1.0);
    }
    let t0 = Instant::now();
    engine.get(BlockKey::scalar(BlockId(backlog as u32))).expect("demand read");
    let dt = t0.elapsed().as_secs_f64();
    engine.shutdown();
    dt
}

fn main() {
    let args = parse_args();
    // 512 blocks of 4096 f32 (16 KiB payloads) behind a ~500 µs source —
    // an SSD-like operating point where scheduling, not memcpy, dominates.
    let (blocks, block_len, delay_us, threads, ops) = if args.fast {
        (64usize, 512usize, 200u64, 4usize, 50usize)
    } else {
        (512, 4096, 500, 8, 200)
    };
    let delay = Duration::from_micros(delay_us);
    eprintln!("fetch: {blocks} blocks x {block_len} f32, {delay_us} us injected latency");

    // Throughput sweep over the worker-pool sizes.
    let mut sweep: Vec<(usize, f64, f64)> = Vec::new();
    for &workers in &[1usize, 2, 4, 8] {
        let (dt, bps) = throughput_run(blocks, block_len, delay, workers);
        eprintln!("  {workers} worker(s): {dt:.3}s, {bps:.0} blocks/s");
        sweep.push((workers, dt, bps));
    }
    let bps1 = sweep[0].2;
    let speedup4 = sweep[2].2 / bps1;
    let speedup8 = sweep[3].2 / bps1;
    eprintln!("  speedup: {speedup4:.2}x at 4 workers, {speedup8:.2}x at 8");

    // Demand latency: empty queue vs a deep low-priority backlog. With
    // demand-over-prefetch priority the backlog should barely matter.
    let lat_empty = demand_latency_run(0, delay, 4);
    let lat_backlog = demand_latency_run(blocks, delay, 4);
    eprintln!(
        "demand latency: {:.1} us empty queue, {:.1} us behind {blocks}-deep backlog",
        lat_empty * 1e6,
        lat_backlog * 1e6
    );

    // Coalescing: `threads` demand threads hammer a small key set; the
    // source must see exactly one read per distinct key.
    let keys = 16usize.min(blocks);
    let source = Arc::new(InstrumentedSource::new(store_with(keys, block_len), delay));
    let pool = Arc::new(BlockPool::new());
    let engine = FetchEngine::spawn(
        source.clone() as Arc<dyn BlockSource>,
        pool,
        FetchConfig { workers: 4, queue_cap: 4096, ..FetchConfig::default() },
    );
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let engine = &engine;
            s.spawn(move || {
                for i in 0..ops {
                    let key = BlockKey::scalar(BlockId(((t * 31 + i * 7) % keys) as u32));
                    engine.get(key).expect("demand read");
                }
            });
        }
    });
    let coalesce_dt = t0.elapsed().as_secs_f64();
    let m = engine.shutdown();
    let requests = (threads * ops) as u64;
    eprintln!(
        "coalescing: {requests} requests over {keys} keys -> {} source reads, {} coalesced",
        source.reads(),
        m.coalesced
    );
    assert_eq!(source.reads(), keys as u64, "coalescing must read each key once");
    let coalesce_reads = source.reads();
    let coalesce_merged = m.coalesced;

    // Cancellation: queue a full backlog, immediately bump the generation,
    // and count how many source reads the engine avoided.
    let source = Arc::new(InstrumentedSource::new(store_with(blocks, block_len), delay));
    let pool = Arc::new(BlockPool::new());
    let engine = FetchEngine::spawn(
        source.clone() as Arc<dyn BlockSource>,
        pool,
        FetchConfig { workers: 4, queue_cap: blocks * 2, ..FetchConfig::default() },
    );
    for i in 0..blocks {
        engine.prefetch(BlockKey::scalar(BlockId(i as u32)), 1.0);
    }
    engine.bump_generation();
    engine.sync();
    let m = engine.shutdown();
    eprintln!(
        "cancellation: {blocks} queued, generation bumped -> {} cancelled, {} source reads",
        m.cancelled,
        source.reads()
    );
    let cancelled = m.cancelled;
    let cancel_reads = source.reads();

    let json = format!(
        r#"{{
  "bench": "fetch",
  "provenance": "Measured on a single-core container by building this file and the real crates/fetch sources directly with rustc against a minimal viz-volume shim (cargo cannot reach a registry there); thread workers still overlap injected sleep latency, so the worker-scaling ratios are representative. Regenerate in a normal environment with `cargo run --release -p viz-bench --bin fetch`.",
  "operating_point": {{
    "blocks": {blocks},
    "block_len_f32": {block_len},
    "injected_latency_us": {delay_us},
    "demand_threads": {threads},
    "demand_ops_per_thread": {ops}
  }},
  "throughput": {{
    "workers_1_blocks_per_s": {bps1:.1},
    "workers_2_blocks_per_s": {bps2:.1},
    "workers_4_blocks_per_s": {bps4:.1},
    "workers_8_blocks_per_s": {bps8:.1},
    "speedup_4_vs_1": {speedup4:.2},
    "speedup_8_vs_1": {speedup8:.2}
  }},
  "demand_latency_us": {{
    "empty_queue": {lat_empty:.1},
    "behind_deep_backlog": {lat_backlog:.1},
    "backlog_depth": {blocks}
  }},
  "coalescing": {{
    "requests": {requests},
    "distinct_keys": {keys},
    "source_reads": {coalesce_reads},
    "merged": {coalesce_merged},
    "elapsed_s": {coalesce_dt:.3}
  }},
  "cancellation": {{
    "queued": {blocks},
    "cancelled": {cancelled},
    "source_reads": {cancel_reads}
  }}
}}
"#,
        bps2 = sweep[1].2,
        bps4 = sweep[2].2,
        bps8 = sweep[3].2,
        lat_empty = lat_empty * 1e6,
        lat_backlog = lat_backlog * 1e6,
    );
    std::fs::write(&args.out, &json).expect("write results");
    println!("{json}");
    eprintln!("wrote {}", args.out);
    assert!(speedup4 >= 2.0, "4-worker pool must be >=2x single-worker throughput");
}
