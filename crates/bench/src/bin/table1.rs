//! Table I — the experimental dataset inventory.
//!
//! Prints the paper's dataset table (name, description, resolution,
//! #variables, size) at paper scale, then the scaled instances this
//! repository's experiments actually generate, with their per-block entropy
//! spread as evidence that the synthetic stand-ins have realistic
//! importance structure.

use viz_bench::{Env, Opts};
use viz_volume::{DatasetKind, DatasetSpec};

fn human(bytes: usize) -> String {
    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
    const MIB: f64 = 1024.0 * 1024.0;
    let b = bytes as f64;
    if b >= GIB {
        format!("{:.1}GB", b / GIB)
    } else {
        format!("{:.0}MB", b / MIB)
    }
}

fn main() {
    let opts = Opts::from_env();

    println!("Table I — datasets used in the experimental study (paper scale)");
    println!(
        "{:<17} {:<33} {:<16} {:>6} {:>8}",
        "name", "description", "resolution", "#vars", "size"
    );
    for kind in DatasetKind::ALL {
        let spec = DatasetSpec::new(kind, 1, opts.seed);
        println!(
            "{:<17} {:<33} {:<16} {:>6} {:>8}",
            kind.name(),
            kind.description(),
            kind.full_resolution().to_string(),
            kind.num_variables(),
            human(spec.table1_bytes()),
        );
    }

    println!();
    println!("Scaled instances generated for this reproduction (--scale {}):", opts.scale);
    println!(
        "{:<17} {:<16} {:>10} {:>12} {:>14} {:>14}",
        "name", "resolution", "size", "blocks", "median H", "top H"
    );
    for kind in DatasetKind::ALL {
        let env = Env::new(kind, opts.scale, 1024, opts.seed);
        let mut es: Vec<f64> = env.importance.ranked().iter().map(|e| e.entropy).collect();
        es.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = es[es.len() / 2];
        let top = es[es.len() - 1];
        println!(
            "{:<17} {:<16} {:>10} {:>12} {:>14.3} {:>14.3}",
            kind.name(),
            env.spec.resolution().to_string(),
            human(env.spec.table1_bytes()),
            env.layout.num_blocks(),
            median,
            top,
        );
    }
}
