//! Multi-client serving benchmark: N simulated viewers replaying
//! phase-shifted keyframe flights against ONE shared server.
//!
//! Each client owns a [`viz_core::ClientFlight`] over the same closed
//! keyframe path (the combustion-inspection flight from
//! `examples/keyframe_flight.rs`), rotated to a different starting phase,
//! so per-frame demand sets differ while the union of keys overlaps
//! heavily — exactly the deployment the serve layer exists for. Per
//! client count N we record throughput, demand round-trip p50/p99, shed
//! rate, and the **cross-client coalescing ratio**: the distinct keys
//! each client would have read with its own private engine, summed,
//! divided by the reads the shared engine actually issued. A final
//! "storm" run at tight admission watermarks shows prefetch shedding
//! under pressure while demand is never shed.
//!
//! Results print and land as JSON (default `BENCH_serve.json`; `--out
//! PATH` overrides, `--fast` shrinks client counts and flight length for
//! CI smoke runs).

use std::collections::HashSet;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};
use viz_core::{compute_visibility, ClientFlight};
use viz_fetch::{BlockPool, FetchConfig, FetchEngine, InstrumentedSource};
use viz_geom::{CameraPath, CameraPose, ExplorationDomain, Keyframe, KeyframePath, Vec3};
use viz_serve::{inproc_pair, serve_connection, ServeClient, ServeConfig, ServeMetrics, Server};
use viz_volume::{BlockId, BrickLayout, Dims3, MemBlockStore};

struct Args {
    fast: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut a = Args { fast: false, out: "BENCH_serve.json".to_string() };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fast" => a.fast = true,
            "--out" => {
                if let Some(p) = it.next() {
                    a.out = p;
                }
            }
            "--help" | "-h" => {
                eprintln!("options: --fast  --out PATH");
                std::process::exit(0);
            }
            other => eprintln!("ignoring unknown option {other:?}"),
        }
    }
    a
}

/// The shared scenario: one layout, one closed keyframe flight, the
/// per-step visible sets computed once and cloned into every client.
struct Scenario {
    layout: BrickLayout,
    poses: Vec<CameraPose>,
    visible: Vec<Vec<BlockId>>,
    block_len: usize,
    read_delay: Duration,
    /// Open-loop pacing: each client issues one frame per budget tick
    /// (~30 fps), phase-staggered, instead of hammering back-to-back.
    /// Closed-loop replay on a time-shared box measures the scheduler's
    /// timeslice, not the server; a paced viewer is also what the paper's
    /// interactivity premise actually looks like.
    frame_budget: Duration,
}

fn build_scenario(steps: usize) -> Scenario {
    let layout = BrickLayout::with_target_blocks(Dims3::cube(128), 128);
    let domain = ExplorationDomain::new(Vec3::ZERO, 2.0, 3.2);
    let path = KeyframePath::new(
        domain,
        vec![
            Keyframe::new(Vec3::new(0.0, 0.0, 1.0), 3.1),
            Keyframe::new(Vec3::new(1.0, 0.3, 0.4), 2.2).with_weight(2.0),
            Keyframe::new(Vec3::new(0.2, 1.0, 0.1), 2.0),
            Keyframe::new(Vec3::new(-0.6, 0.4, 0.7), 3.0).with_weight(1.5),
        ],
        0.26, // ~15 degrees
    )
    .closed();
    let poses = path.generate(steps);
    let visible = compute_visibility(&layout, &poses);
    Scenario {
        layout,
        poses,
        visible,
        block_len: 64,
        read_delay: Duration::from_micros(150),
        frame_budget: Duration::from_millis(33),
    }
}

struct ClientResult {
    latencies_s: Vec<f64>,
    demand_blocks: u64,
    demand_errors: u64,
    prefetch_sent: u64,
    shed: u64,
    /// Distinct keys this client asked for — what a private per-client
    /// engine would have had to read from the source.
    unique_keys: usize,
}

struct RunResult {
    wall_s: f64,
    latencies_s: Vec<f64>,
    demand_blocks: u64,
    demand_errors: u64,
    prefetch_sent: u64,
    shed: u64,
    unique_keys_summed: usize,
    source_reads: u64,
    cross_tag_coalesced: u64,
    serve: ServeMetrics,
}

/// Replay the flight `laps` times per client against one shared server.
/// With `laps == 2` the first lap warms the shared pool and is untimed;
/// a barrier lines every client up before the measured lap, so the
/// recorded latencies are the steady interactive state (mostly pool
/// hits), not the one-off cold fill. Generations come from the server's
/// `advance` acks, keeping session and flight in lockstep across laps.
fn run_clients(sc: &Scenario, n: usize, laps: usize, cfg: ServeConfig) -> RunResult {
    let store = MemBlockStore::new();
    for id in sc.layout.block_ids() {
        store.insert(viz_volume::BlockKey::scalar(id), vec![id.0 as f32; sc.block_len]);
    }
    let src = Arc::new(InstrumentedSource::new(Arc::new(store), sc.read_delay));
    let engine = FetchEngine::spawn(
        src.clone(),
        Arc::new(BlockPool::new()),
        FetchConfig { workers: 4, queue_cap: 16384, ..FetchConfig::default() },
    );
    let server = Server::new(Arc::new(engine), cfg);

    let steps = sc.poses.len();
    let stride = steps.div_ceil(n.max(1));
    // Everyone (clients + the timing thread below) lines up before the
    // measured lap.
    let barrier = Arc::new(Barrier::new(n + 1));
    let mut conn_threads = Vec::with_capacity(n);
    let mut client_threads = Vec::with_capacity(n);
    for c in 0..n {
        let (client_end, server_end) = inproc_pair();
        let srv = server.clone();
        conn_threads.push(std::thread::spawn(move || serve_connection(&srv, server_end)));
        let base_flight =
            ClientFlight::from_visible(sc.poses.clone(), sc.visible.clone(), None, 0.0)
                .rotated(c * stride);
        let gate = barrier.clone();
        let budget = sc.frame_budget;
        client_threads.push(std::thread::spawn(move || {
            let mut client = ServeClient::new(client_end);
            client.open(&format!("viewer-{c}")).expect("open");
            let mut r = ClientResult {
                latencies_s: Vec::with_capacity(base_flight.len()),
                demand_blocks: 0,
                demand_errors: 0,
                prefetch_sent: 0,
                shed: 0,
                unique_keys: 0,
            };
            let mut seen = HashSet::new();
            // Absolute per-frame deadlines, phase-offset per client, so
            // paced viewers stay de-phased instead of waking in a thundering
            // herd every budget tick.
            let phase = budget.mul_f64(c as f64 / n.max(1) as f64);
            for lap in 0..laps.max(1) {
                let measured = lap + 1 == laps.max(1);
                if measured {
                    gate.wait();
                }
                let lap_start = Instant::now();
                let mut frame_no = 0u32;
                let mut flight = base_flight.clone();
                while let Some(fr) = flight.next_frame() {
                    if measured {
                        let deadline = lap_start + phase + budget * frame_no;
                        let now = Instant::now();
                        if now < deadline {
                            std::thread::sleep(deadline - now);
                        }
                        frame_no += 1;
                    }
                    let generation = client.advance().expect("advance");
                    seen.extend(fr.demand.iter().copied());
                    seen.extend(fr.prefetch.iter().map(|(k, _)| *k));
                    let want = fr.demand.len() as u64;
                    let speculated = fr.prefetch.len() as u64;
                    let t = Instant::now();
                    let got = client.fetch_at(generation, fr.demand, fr.prefetch).expect("fetch");
                    let dt = t.elapsed().as_secs_f64();
                    r.demand_errors +=
                        got.blocks.iter().filter(|b| b.result.is_err()).count() as u64;
                    r.shed += u64::from(got.shed);
                    if measured {
                        r.latencies_s.push(dt);
                        r.demand_blocks += want;
                        r.prefetch_sent += speculated;
                    }
                }
            }
            client.close().expect("close");
            r.unique_keys = seen.len();
            r
        }));
    }
    barrier.wait();
    let t0 = Instant::now();

    let mut out = RunResult {
        wall_s: 0.0,
        latencies_s: Vec::new(),
        demand_blocks: 0,
        demand_errors: 0,
        prefetch_sent: 0,
        shed: 0,
        unique_keys_summed: 0,
        source_reads: 0,
        cross_tag_coalesced: 0,
        serve: ServeMetrics::default(),
    };
    for h in client_threads {
        let r = h.join().expect("client thread");
        out.latencies_s.extend(r.latencies_s);
        out.demand_blocks += r.demand_blocks;
        out.demand_errors += r.demand_errors;
        out.prefetch_sent += r.prefetch_sent;
        out.shed += r.shed;
        out.unique_keys_summed += r.unique_keys;
    }
    out.wall_s = t0.elapsed().as_secs_f64();
    for h in conn_threads {
        h.join().expect("connection thread");
    }
    server.drain();
    out.source_reads = src.reads();
    out.cross_tag_coalesced = server.engine().metrics().cross_tag_coalesced;
    out.serve = server.metrics();
    out
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct Summary {
    p50_ms: f64,
    p99_ms: f64,
    mean_ms: f64,
}

fn summarize(times: &[f64]) -> Summary {
    let mut sorted = times.to_vec();
    sorted.sort_by(f64::total_cmp);
    Summary {
        p50_ms: percentile(&sorted, 0.50) * 1e3,
        p99_ms: percentile(&sorted, 0.99) * 1e3,
        mean_ms: sorted.iter().sum::<f64>() / sorted.len().max(1) as f64 * 1e3,
    }
}

fn coalescing_ratio(r: &RunResult) -> f64 {
    if r.source_reads == 0 {
        return 0.0;
    }
    r.unique_keys_summed as f64 / r.source_reads as f64
}

fn main() {
    let args = parse_args();
    let (steps, counts) = if args.fast { (8, vec![1, 4]) } else { (24, vec![1, 4, 16, 64]) };
    let sc = build_scenario(steps);
    let mean_visible =
        sc.visible.iter().map(Vec::len).sum::<usize>() as f64 / sc.visible.len().max(1) as f64;
    eprintln!(
        "serve: {} blocks, {} flight steps, mean visible set {:.1}, {} us reads",
        sc.layout.num_blocks(),
        steps,
        mean_visible,
        sc.read_delay.as_micros()
    );

    let mut entries = Vec::new();
    let mut p99_by_n: Vec<(usize, f64)> = Vec::new();
    let mut ratio_by_n: Vec<(usize, f64)> = Vec::new();
    for &n in &counts {
        let r = run_clients(&sc, n, 2, ServeConfig::default());
        let s = summarize(&r.latencies_s);
        let ratio = coalescing_ratio(&r);
        let throughput = r.demand_blocks as f64 / r.wall_s.max(1e-9);
        eprintln!(
            "  N={n:>2}: {:.2} s wall, {:.0} blocks/s, demand p50 {:.2} ms p99 {:.2} ms, \
             {} source reads vs {} per-client uniques (ratio {ratio:.2}), shed {}",
            r.wall_s, throughput, s.p50_ms, s.p99_ms, r.source_reads, r.unique_keys_summed, r.shed
        );
        assert_eq!(r.demand_errors, 0, "demand must always deliver");
        p99_by_n.push((n, s.p99_ms));
        ratio_by_n.push((n, ratio));
        entries.push(format!(
            r#"    {{
      "clients": {n},
      "wall_s": {wall:.3},
      "demand_blocks": {blocks},
      "throughput_blocks_per_s": {tput:.1},
      "demand_ms": {{ "p50": {p50:.3}, "p99": {p99:.3}, "mean": {mean:.3} }},
      "prefetch_sent": {pf},
      "prefetch_shed": {shed},
      "prefetch_downgraded": {down},
      "source_reads": {reads},
      "unique_keys_per_client_summed": {uniq},
      "cross_client_coalescing_ratio": {ratio:.3},
      "engine_cross_tag_coalesced": {ctc}
    }}"#,
            wall = r.wall_s,
            blocks = r.demand_blocks,
            tput = throughput,
            p50 = s.p50_ms,
            p99 = s.p99_ms,
            mean = s.mean_ms,
            pf = r.prefetch_sent,
            shed = r.serve.prefetch_shed,
            down = r.serve.prefetch_downgraded,
            reads = r.source_reads,
            uniq = r.unique_keys_summed,
            ctc = r.cross_tag_coalesced,
        ));
    }

    // Storm: 16 clients against deliberately tight admission watermarks.
    // Prefetch must shed; demand must not (and must all deliver).
    let storm_n = if args.fast { 4 } else { 16 };
    let storm_cfg = ServeConfig {
        quantum: 4,
        per_client_queue: 8,
        shed_queue_depth: 48,
        downgrade_queue_depth: 16,
        ..ServeConfig::default()
    };
    let storm = run_clients(&sc, storm_n, 1, storm_cfg);
    let ss = summarize(&storm.latencies_s);
    eprintln!(
        "  storm N={storm_n}: prefetch shed {} / {} sent, downgraded {}, demand errors {}",
        storm.serve.prefetch_shed,
        storm.prefetch_sent,
        storm.serve.prefetch_downgraded,
        storm.demand_errors
    );
    let storm_demand_shed =
        storm.demand_blocks - storm.serve.demand_admitted.min(storm.demand_blocks);
    assert_eq!(storm.demand_errors, 0, "storm demand must still deliver");
    assert_eq!(storm_demand_shed, 0, "demand is never shed");
    assert!(storm.serve.prefetch_shed > 0, "the storm config must shed prefetch");

    // Acceptance gates for the full run.
    if !args.fast {
        let at = |v: &[(usize, f64)], n: usize| {
            v.iter().find(|(m, _)| *m == n).map(|(_, x)| *x).unwrap_or(0.0)
        };
        let (p99_1, p99_16) = (at(&p99_by_n, 1), at(&p99_by_n, 16));
        assert!(
            p99_16 <= p99_1 * 2.0,
            "16-client demand p99 {p99_16:.2} ms blew past 2x the single-client {p99_1:.2} ms"
        );
        let ratio_16 = at(&ratio_by_n, 16);
        assert!(
            ratio_16 > 1.5,
            "16-client cross-client coalescing ratio {ratio_16:.2} is below the 1.5x bar"
        );
    }

    let json = format!(
        r#"{{
  "bench": "serve",
  "provenance": "Measured on a shared container by building this file and the real workspace sources directly with rustc against offline dependency shims (cargo cannot reach a registry there). N viewer threads replay phase-shifted keyframe flights over in-process transports against one server; sweep latencies are the steady interactive state (an untimed warm-up lap fills the shared pool, a barrier starts the measured lap, and each viewer paces itself to one frame per 33 ms budget with phase-staggered deadlines, as a real renderer would), the storm run is cold. Absolute times carry scheduler noise, but ratios (coalescing, shed, p99 scaling) are representative. Regenerate with `cargo run --release -p viz-bench --bin serve`.",
  "operating_point": {{
    "blocks": {blocks},
    "flight_steps": {steps},
    "mean_visible_set": {mv:.1},
    "block_len_f32": {bl},
    "read_delay_us": {delay},
    "frame_budget_ms": {budget},
    "engine_workers": 4
  }},
  "runs": [
{entries}
  ],
  "storm": {{
    "clients": {storm_n},
    "config": {{ "per_client_queue": 8, "shed_queue_depth": 48, "downgrade_queue_depth": 16 }},
    "prefetch_sent": {st_pf},
    "prefetch_shed": {st_shed},
    "prefetch_downgraded": {st_down},
    "demand_blocks": {st_blocks},
    "demand_errors": {st_errors},
    "demand_shed": {st_dshed},
    "demand_ms": {{ "p50": {st_p50:.3}, "p99": {st_p99:.3} }}
  }}
}}
"#,
        blocks = sc.layout.num_blocks(),
        steps = steps,
        mv = mean_visible,
        bl = sc.block_len,
        delay = sc.read_delay.as_micros(),
        budget = sc.frame_budget.as_millis(),
        entries = entries.join(",\n"),
        storm_n = storm_n,
        st_pf = storm.prefetch_sent,
        st_shed = storm.serve.prefetch_shed,
        st_down = storm.serve.prefetch_downgraded,
        st_blocks = storm.demand_blocks,
        st_errors = storm.demand_errors,
        st_dshed = storm_demand_shed,
        st_p50 = ss.p50_ms,
        st_p99 = ss.p99_ms,
    );
    std::fs::write(&args.out, &json).expect("write results");
    println!("{json}");
    eprintln!("wrote {}", args.out);
}
