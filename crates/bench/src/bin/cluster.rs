//! Sharded-cluster benchmark: the same block sweep against 1-, 2-, and
//! 4-node clusters over localhost TCP, routed by the client-side
//! [`viz_cluster::Router`].
//!
//! Each node runs a real [`viz_serve::TcpServer`] front end around a
//! [`viz_cluster::ClusterNode`], reading a private copy of the dataset
//! (the shared-parallel-file-system model: every node *can* read every
//! block) through an [`InstrumentedSource`] tap so the run can report
//! which node actually read what. After an untimed warmup over a
//! sacrificial key range (dials connections, opens sessions, spins the
//! engines), the timed **cold** sweep demands every block once in
//! fixed-size frames — this is the paper's interactive scenario, a
//! camera moving into data that is not resident — and measures shard
//! spread (~1/N reads per node) plus frame latency while storage reads
//! dominate. A **warm** replay of the same sweep (all pool hits) then
//! isolates pure routing overhead. The acceptance bar compares against
//! a direct single-node [`ServeClient`] baseline running the identical
//! sweeps: routed cold p99 must stay within 2x of direct cold p99.
//!
//! Results print and land as JSON (default `BENCH_cluster.json`; `--out
//! PATH` overrides, `--fast` shrinks the dataset for CI smoke runs).

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use viz_cluster::{
    ClusterConfig, ClusterNode, NodeId, PeerLink, Router, RouterConfig, ShardMap, ShardStrategy,
    TcpPeerLink,
};
use viz_fetch::{FetchConfig, InstrumentedSource};
use viz_serve::{ServeClient, ServeConfig, TcpServer, TcpTransport};
use viz_volume::{BlockId, BlockKey, MemBlockStore};

struct Args {
    fast: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut a = Args { fast: false, out: "BENCH_cluster.json".to_string() };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fast" => a.fast = true,
            "--out" => {
                if let Some(p) = it.next() {
                    a.out = p;
                }
            }
            "--help" | "-h" => {
                eprintln!("options: --fast  --out PATH");
                std::process::exit(0);
            }
            other => eprintln!("ignoring unknown option {other:?}"),
        }
    }
    a
}

const BLOCK_LEN: usize = 64;
const FRAME_KEYS: usize = 16;
const WARMUP_KEYS: u32 = 32;
const READ_DELAY: Duration = Duration::from_micros(150);

/// The measured keys, plus a disjoint warmup range above them.
fn keyspace(n_blocks: u32) -> (Vec<BlockKey>, Vec<BlockKey>) {
    let main = (0..n_blocks).map(|i| BlockKey::scalar(BlockId(i))).collect();
    let warm = (n_blocks..n_blocks + WARMUP_KEYS).map(|i| BlockKey::scalar(BlockId(i))).collect();
    (main, warm)
}

/// One running node: its TCP front end plus the read tap.
struct BenchNode {
    front: TcpServer,
    tap: Arc<InstrumentedSource>,
}

/// Spin up an `n`-node TCP cluster over a per-node copy of the dataset.
/// Returns the nodes and the address table the connector dials through.
fn start_cluster(
    n: u32,
    all_keys: &[BlockKey],
) -> (Vec<BenchNode>, Arc<Mutex<HashMap<u32, SocketAddr>>>) {
    let ids: Vec<NodeId> = (0..n).map(NodeId).collect();
    let map = ShardMap::new(&ids, 64, ShardStrategy::Ring);
    let addrs: Arc<Mutex<HashMap<u32, SocketAddr>>> = Arc::new(Mutex::new(HashMap::new()));
    let mut nodes = Vec::with_capacity(n as usize);
    for id in ids {
        let store = MemBlockStore::new();
        for &k in all_keys {
            store.insert(k, vec![k.block.0 as f32; BLOCK_LEN]);
        }
        let tap = Arc::new(InstrumentedSource::new(Arc::new(store), READ_DELAY));
        let node = ClusterNode::new(
            id,
            tap.clone(),
            map.clone(),
            dialer(addrs.clone()),
            FetchConfig { workers: 4, queue_cap: 16384, ..FetchConfig::default() },
            ServeConfig::default(),
            ClusterConfig::default(),
        );
        let front = TcpServer::bind_with(node.server().clone(), node.clone(), "127.0.0.1:0")
            .expect("bind node");
        addrs.lock().unwrap().insert(id.0, front.local_addr());
        nodes.push(BenchNode { front, tap });
    }
    (nodes, addrs)
}

/// A connector resolving node ids through the shared address table.
fn dialer(
    addrs: Arc<Mutex<HashMap<u32, SocketAddr>>>,
) -> impl Fn(NodeId) -> std::io::Result<Box<dyn PeerLink>> + Send + Sync + 'static {
    move |id| {
        let addr = addrs.lock().unwrap().get(&id.0).copied().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::NotFound, format!("no address for {id}"))
        })?;
        Ok(Box::new(TcpPeerLink::connect(addr)?) as Box<dyn PeerLink>)
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct Summary {
    p50_ms: f64,
    p99_ms: f64,
}

fn summarize(times: &[f64]) -> Summary {
    let mut sorted = times.to_vec();
    sorted.sort_by(f64::total_cmp);
    Summary { p50_ms: percentile(&sorted, 0.50) * 1e3, p99_ms: percentile(&sorted, 0.99) * 1e3 }
}

struct ClusterRun {
    per_node_reads: Vec<u64>,
    peer_requests: u64,
    cold_wall_s: f64,
    cold: Summary,
    warm: Summary,
    demand_errors: u64,
    rounds_max: u32,
}

/// Warm the connections up, then sweep every key once cold and once
/// warm through a router.
fn run_cluster(n: u32, main_keys: &[BlockKey], warmup: &[BlockKey]) -> ClusterRun {
    let all: Vec<BlockKey> = main_keys.iter().chain(warmup).copied().collect();
    let (nodes, addrs) = start_cluster(n, &all);
    let ids: Vec<NodeId> = (0..n).map(NodeId).collect();
    let map = ShardMap::new(&ids, 64, ShardStrategy::Ring);
    let mut router = Router::new("bench", map, Arc::new(dialer(addrs)), RouterConfig::default());

    let mut demand_errors = 0u64;
    let mut rounds_max = 0u32;
    let sweep = |r: &mut Router, keys: &[BlockKey], errs: &mut u64, rmax: &mut u32| -> Vec<f64> {
        let mut lat = Vec::with_capacity(keys.len() / FRAME_KEYS + 1);
        for frame in keys.chunks(FRAME_KEYS) {
            let t = Instant::now();
            let reply = r.fetch(frame.to_vec(), vec![]);
            lat.push(t.elapsed().as_secs_f64());
            *errs += reply.blocks.iter().filter(|b| b.result.is_err()).count() as u64;
            *rmax = (*rmax).max(reply.rounds);
        }
        lat
    };

    // Untimed warmup over the sacrificial range: dials every node, opens
    // sessions, spins engine workers — so the timed sweeps measure
    // steady-state serving, not connection setup.
    sweep(&mut router, warmup, &mut demand_errors, &mut rounds_max);
    let reads_before: Vec<u64> = nodes.iter().map(|b| b.tap.reads()).collect();

    let t0 = Instant::now();
    let cold_lat = sweep(&mut router, main_keys, &mut demand_errors, &mut rounds_max);
    let cold_wall_s = t0.elapsed().as_secs_f64();
    let per_node_reads: Vec<u64> =
        nodes.iter().zip(&reads_before).map(|(b, &before)| b.tap.reads() - before).collect();
    let warm_lat = sweep(&mut router, main_keys, &mut demand_errors, &mut rounds_max);

    let peer_requests: u64 = nodes
        .iter()
        .map(|b| {
            b.front
                .server()
                .wire_counters()
                .into_iter()
                .find(|(name, _)| name == "serve_peer_requests")
                .map(|(_, v)| v)
                .unwrap_or(0)
        })
        .sum();
    for b in nodes {
        b.front.shutdown();
    }
    ClusterRun {
        per_node_reads,
        peer_requests,
        cold_wall_s,
        cold: summarize(&cold_lat),
        warm: summarize(&warm_lat),
        demand_errors,
        rounds_max,
    }
}

/// The baseline the 2x bar is measured against: one node, one direct
/// [`ServeClient`], no router in the path, same warmup + sweeps.
fn run_direct(main_keys: &[BlockKey], warmup: &[BlockKey]) -> (Summary, Summary) {
    let all: Vec<BlockKey> = main_keys.iter().chain(warmup).copied().collect();
    let (nodes, _) = start_cluster(1, &all);
    let addr = nodes[0].front.local_addr();
    let stream = std::net::TcpStream::connect(addr).expect("connect baseline");
    let mut client = ServeClient::new(TcpTransport::new(stream));
    client.open("bench-direct").expect("open baseline");
    let mut sweep = |keys: &[BlockKey]| -> Vec<f64> {
        let mut lat = Vec::new();
        for frame in keys.chunks(FRAME_KEYS) {
            let t = Instant::now();
            let got = client.fetch(frame.to_vec(), vec![]).expect("direct fetch");
            lat.push(t.elapsed().as_secs_f64());
            assert!(got.blocks.iter().all(|b| b.result.is_ok()), "baseline demand failed");
        }
        lat
    };
    sweep(warmup);
    let cold = summarize(&sweep(main_keys));
    let warm = summarize(&sweep(main_keys));
    client.close().expect("close baseline");
    for b in nodes {
        b.front.shutdown();
    }
    (cold, warm)
}

fn main() {
    let args = parse_args();
    let n_blocks: u32 = if args.fast { 128 } else { 512 };
    let (main_keys, warmup) = keyspace(n_blocks);
    eprintln!(
        "cluster: {} blocks of {} f32, frames of {}, {} us reads, {} warmup keys",
        n_blocks,
        BLOCK_LEN,
        FRAME_KEYS,
        READ_DELAY.as_micros(),
        WARMUP_KEYS
    );

    let (direct_cold, direct_warm) = run_direct(&main_keys, &warmup);
    eprintln!(
        "  direct 1-node baseline: cold p50 {:.2} ms p99 {:.2} ms, warm p50 {:.2} ms p99 {:.2} ms",
        direct_cold.p50_ms, direct_cold.p99_ms, direct_warm.p50_ms, direct_warm.p99_ms
    );

    let mut entries = Vec::new();
    for n in [1u32, 2, 4] {
        let r = run_cluster(n, &main_keys, &warmup);
        let reads_str = r.per_node_reads.iter().map(u64::to_string).collect::<Vec<_>>().join(", ");
        eprintln!(
            "  N={n}: cold p50 {:.2} ms p99 {:.2} ms ({:.2} s wall), warm p50 {:.2} ms p99 {:.2} \
             ms, reads per node [{reads_str}], peer reqs {}, demand errors {}",
            r.cold.p50_ms,
            r.cold.p99_ms,
            r.cold_wall_s,
            r.warm.p50_ms,
            r.warm.p99_ms,
            r.peer_requests,
            r.demand_errors
        );
        assert_eq!(r.demand_errors, 0, "cluster demand must always deliver");
        assert_eq!(r.rounds_max, 1, "a healthy cluster must resolve every frame in one round");
        assert_eq!(
            r.per_node_reads.iter().sum::<u64>(),
            u64::from(n_blocks),
            "cold sweep must read each block exactly once cluster-wide"
        );
        if !args.fast {
            // The shard spread: each node reads ~1/N of the dataset.
            let expect = u64::from(n_blocks) / u64::from(n);
            for (i, &reads) in r.per_node_reads.iter().enumerate() {
                assert!(
                    reads > expect / 3 && reads < expect * 3,
                    "node {i} read {reads} of {n_blocks} (expected ~{expect})"
                );
            }
            // Router overhead bar, measured where it matters: cold
            // interactive frames doing real storage reads.
            assert!(
                r.cold.p99_ms <= direct_cold.p99_ms * 2.0,
                "{n}-node routed cold p99 {:.2} ms blew past 2x the direct {:.2} ms",
                r.cold.p99_ms,
                direct_cold.p99_ms
            );
        }
        entries.push(format!(
            r#"    {{
      "nodes": {n},
      "per_node_reads": [{reads_str}],
      "peer_requests": {peers},
      "cold_wall_s": {wall:.3},
      "cold_ms": {{ "p50": {cp50:.3}, "p99": {cp99:.3} }},
      "warm_ms": {{ "p50": {wp50:.3}, "p99": {wp99:.3} }},
      "demand_errors": {errs},
      "rounds_max": {rmax}
    }}"#,
            peers = r.peer_requests,
            wall = r.cold_wall_s,
            cp50 = r.cold.p50_ms,
            cp99 = r.cold.p99_ms,
            wp50 = r.warm.p50_ms,
            wp99 = r.warm.p99_ms,
            errs = r.demand_errors,
            rmax = r.rounds_max,
        ));
    }

    let json = format!(
        r#"{{
  "bench": "cluster",
  "provenance": "Measured on a shared container by building this file and the real workspace sources directly with rustc against offline dependency shims (cargo cannot reach a registry there). Each node is a real TcpServer around a ClusterNode on localhost; after an untimed warmup that dials connections and opens sessions, the router sweeps every block once cold (storage reads dominate: the interactive camera-into-nonresident-data case, and the acceptance bar vs the direct baseline) and once warm (all pool hits: isolates routing overhead); the direct baseline is a plain ServeClient against one node running the identical sweeps. Absolute times carry scheduler noise; ratios (read balance, cold p99 vs direct) are representative. Regenerate with `cargo run --release -p viz-bench --bin cluster`.",
  "operating_point": {{
    "blocks": {blocks},
    "block_len_f32": {bl},
    "frame_keys": {fk},
    "read_delay_us": {delay},
    "warmup_keys": {wk},
    "engine_workers": 4,
    "strategy": "ring",
    "vnodes": 64
  }},
  "direct_baseline_ms": {{
    "cold": {{ "p50": {dcp50:.3}, "p99": {dcp99:.3} }},
    "warm": {{ "p50": {dwp50:.3}, "p99": {dwp99:.3} }}
  }},
  "runs": [
{entries}
  ]
}}
"#,
        blocks = n_blocks,
        bl = BLOCK_LEN,
        fk = FRAME_KEYS,
        delay = READ_DELAY.as_micros(),
        wk = WARMUP_KEYS,
        dcp50 = direct_cold.p50_ms,
        dcp99 = direct_cold.p99_ms,
        dwp50 = direct_warm.p50_ms,
        dwp99 = direct_warm.p99_ms,
        entries = entries.join(",\n"),
    );
    std::fs::write(&args.out, &json).expect("write results");
    println!("{json}");
    eprintln!("wrote {}", args.out);
}
