//! Adaptive benchmark: before/after adaptation curves under hostile
//! workloads.
//!
//! For every hostile [`ScenarioKind`] the same seeded, open-loop
//! [`Schedule`] replays twice against a deterministic in-process server
//! whose source charges a fixed latency per read — once with fixed
//! defaults, once with the closed-loop [`viz_adapt::ControlPlane`]
//! chasing a demand-p99 SLO. The same demand trace also runs through the
//! cache simulator with a fixed LRU and with shadow-scored policy
//! selection. A well-behaved drifting-window flight workload guards the
//! other direction: adaptation must not cost more than 10% of either
//! metric when the workload is friendly. The σ loop is recorded
//! separately (rising under a never-drained backlog, falling when the
//! pump keeps up).
//!
//! Acceptance (asserted before the JSON is written):
//! - ≥ 3 scenarios improve steady-state demand p99 or hit rate;
//! - zero demand sheds and zero demand errors in **every** run;
//! - the friendly workload regresses neither metric by more than 10%.
//!
//! Results print and land as JSON (default `BENCH_adaptive.json`; `--out
//! PATH` overrides, `--fast` shrinks for CI smoke runs, `--seed N` and
//! `--delay-us N` vary the trace and the I/O cost model).

use std::sync::Arc;
use std::time::Duration;
use viz_bench::{
    run_schedule, simulate_cache, ClientOp, ReplayOptions, ReplayReport, ScenarioConfig,
    ScenarioKind, Schedule, SimReport,
};
use viz_core::{AdaptiveSigma, ClientFlight, ImportanceTable, VisibleTable};
use viz_core::{RadiusRule, SamplingConfig};
use viz_fetch::{BlockPool, FetchConfig, FetchEngine, InstrumentedSource};
use viz_geom::angle::deg_to_rad;
use viz_geom::{CameraPath, SphericalPath};
use viz_serve::{ServeConfig, Server};
use viz_volume::{BrickLayout, DatasetKind, DatasetSpec, Dims3, MemBlockStore};

struct Args {
    fast: bool,
    out: String,
    seed: u64,
    delay_us: u64,
}

fn parse_args() -> Args {
    let mut a =
        Args { fast: false, out: "BENCH_adaptive.json".to_string(), seed: 0xC0DE, delay_us: 100 };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fast" => a.fast = true,
            "--out" => {
                if let Some(p) = it.next() {
                    a.out = p;
                }
            }
            "--seed" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    a.seed = v;
                }
            }
            "--delay-us" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    a.delay_us = v;
                }
            }
            "--help" | "-h" => {
                eprintln!("options: --fast  --out PATH  --seed N  --delay-us N");
                std::process::exit(0);
            }
            other => eprintln!("ignoring unknown option {other:?}"),
        }
    }
    a
}

/// The demand-p99 SLO the adaptive arm chases, ns. It sits between the
/// friendly flight's warm steady state (~0.4 ms, so a well-behaved
/// workload never trips the controller and keeps its useful prefetch)
/// and the cold-demand floor of every hostile scenario (≥1 ms even with
/// all prefetch shed, so the ladder stays tightened there for the whole
/// run and the prefetch rungs that inflate frame time stay shed).
const SLO_P99_NS: u64 = 600_000;
/// Cache-simulator capacity (entries) for the policy-selection arm.
const SIM_CAPACITY: usize = 48;

/// The well-behaved counterpart: a smoothly drifting demand window whose
/// prefetch really is the next frames' demand — the workload vicinity
/// prediction was designed for. Adaptation must leave it alone.
fn friendly_schedule(seed: u64, steps: u32, clients: u32) -> Schedule {
    let cfg = ScenarioConfig {
        kind: ScenarioKind::FlashCrowd, // label only; steps are hand-built
        seed,
        steps,
        clients,
        keyspace: 512,
        demand_per_frame: 4,
        prefetch_per_frame: 8,
    };
    let mut step_ops: Vec<Vec<ClientOp>> = Vec::new();
    for t in 0..steps {
        let mut ops = Vec::new();
        if t == 0 {
            for c in 0..clients {
                ops.push(ClientOp::Open { client: c });
            }
        }
        let base = (t * 2) % cfg.keyspace;
        let demand: Vec<u32> =
            (0..cfg.demand_per_frame).map(|i| (base + i) % cfg.keyspace).collect();
        let prefetch: Vec<u32> = (0..cfg.prefetch_per_frame)
            .map(|i| (base + cfg.demand_per_frame + i) % cfg.keyspace)
            .collect();
        for c in 0..clients {
            ops.push(ClientOp::Frame {
                client: c,
                demand: demand.clone(),
                prefetch: prefetch.clone(),
            });
        }
        step_ops.push(ops);
    }
    step_ops.push((0..clients).rev().map(|c| ClientOp::Close { client: c }).collect());
    Schedule { cfg, steps: step_ops }
}

/// σ over time in the two regimes the controller must tell apart.
fn sigma_curves(fast: bool) -> (Vec<f64>, Vec<f64>) {
    let flight = |sigma: f64| {
        let spec = DatasetSpec::new(DatasetKind::Ball3d, 16, 5);
        let field = spec.materialize(0, 0.0);
        let layout = BrickLayout::new(field.dims, Dims3::cube(8));
        let importance = Arc::new(ImportanceTable::from_field(&layout, &field, 32));
        let angle = deg_to_rad(20.0);
        let sampling = SamplingConfig::paper_default(2.0, 3.0, angle).with_target_samples(64);
        let tv = Arc::new(VisibleTable::build(sampling, &layout, RadiusRule::Fixed(0.6), None));
        let domain = viz_geom::ExplorationDomain::new(viz_geom::Vec3::ZERO, 2.0, 3.0);
        let poses = SphericalPath::new(domain, 2.5, 10.0, angle).generate(64);
        ClientFlight::new(&layout, poses, Some((tv, importance)), sigma)
    };
    let server = || {
        let store = MemBlockStore::new();
        let src = Arc::new(InstrumentedSource::new(Arc::new(store), Duration::ZERO));
        let engine = FetchEngine::spawn(
            src,
            Arc::new(BlockPool::new()),
            FetchConfig { workers: 0, ..FetchConfig::default() },
        );
        Server::new(Arc::new(engine), ServeConfig::default())
    };
    let frames = if fast { 12 } else { 32 };
    let cfg = AdaptiveSigma { gain: 0.3, min_sigma: 0.0, max_sigma: 5.0, target_ratio: 0.9 };

    // Rising: never pump — admitted prefetch is still queued at every
    // advance, a persistent overshoot.
    let s = server();
    let id = s.open_session("rising").unwrap();
    assert!(s.attach_flight(id, flight(0.5)));
    assert!(s.attach_adaptive_sigma(id, cfg, 2.0));
    let mut rising = Vec::with_capacity(frames);
    for _ in 0..frames {
        s.advance(id).unwrap();
        rising.push(s.session_sigma(id).unwrap());
    }

    // Falling: pump to idle every frame — backlog always clears, σ relaxes.
    let s = server();
    let id = s.open_session("falling").unwrap();
    assert!(s.attach_flight(id, flight(3.0)));
    assert!(s.attach_adaptive_sigma(id, cfg, 8.0));
    let mut falling = Vec::with_capacity(frames);
    for _ in 0..frames {
        s.advance(id).unwrap();
        s.pump();
        s.engine().run_until_idle();
        falling.push(s.session_sigma(id).unwrap());
    }
    (rising, falling)
}

fn join_f64(v: &[f64], places: usize) -> String {
    v.iter().map(|x| format!("{x:.places$}")).collect::<Vec<_>>().join(", ")
}

fn replay_json(r: &ReplayReport) -> String {
    let sheds: Vec<String> =
        r.shed_by_reason.iter().map(|(n, v)| format!(r#""{n}": {v}"#)).collect();
    format!(
        r#"{{
        "p99_ms": {:.3}, "p50_ms": {:.3},
        "frames": {}, "demand_keys": {}, "demand_ok": {}, "demand_errors": {},
        "demand_admitted": {}, "prefetch_shed": {}, "source_reads": {},
        "final_scale": {:.4},
        "shed_by_reason": {{ {} }},
        "scale_per_tick": [{}],
        "window_p99_ms_per_tick": [{}]
      }}"#,
        r.p99_ms,
        r.p50_ms,
        r.frames,
        r.demand_keys,
        r.demand_ok,
        r.demand_errors,
        r.demand_admitted,
        r.prefetch_shed,
        r.source_reads,
        r.final_scale,
        sheds.join(", "),
        join_f64(&r.scale_per_tick, 4),
        join_f64(&r.p99_ms_per_tick, 3),
    )
}

fn sim_json(s: &SimReport) -> String {
    format!(
        r#"{{ "hit_rate": {:.4}, "switches": {}, "final_policy": "{}" }}"#,
        s.hit_rate, s.switches, s.final_policy
    )
}

fn safety_ok(r: &ReplayReport) -> bool {
    r.demand_errors == 0 && r.demand_ok == r.demand_keys && r.demand_admitted == r.demand_keys
}

fn main() {
    let args = parse_args();
    let delay = Duration::from_micros(args.delay_us);

    let mut scenario_rows = Vec::new();
    let mut improved = 0usize;
    let mut all_safe = true;
    for kind in ScenarioKind::ALL {
        let mut cfg = ScenarioConfig::hostile(kind, args.seed);
        if args.fast {
            cfg = cfg.fast();
        }
        let schedule = Schedule::generate(cfg);
        let fixed = run_schedule(&schedule, &ReplayOptions::fixed(delay));
        let adaptive = run_schedule(&schedule, &ReplayOptions::adaptive(SLO_P99_NS, delay));
        let sim_fixed = simulate_cache(&schedule, SIM_CAPACITY, false);
        let sim_adaptive = simulate_cache(&schedule, SIM_CAPACITY, true);
        all_safe &= safety_ok(&fixed) && safety_ok(&adaptive);

        let p99_gain_pct = if fixed.p99_ms > 0.0 {
            (fixed.p99_ms - adaptive.p99_ms) / fixed.p99_ms * 100.0
        } else {
            0.0
        };
        let hit_gain = sim_adaptive.hit_rate - sim_fixed.hit_rate;
        let this_improved = p99_gain_pct > 0.0 || hit_gain > 0.0;
        improved += usize::from(this_improved);

        println!(
            "{:<20} fixed p99 {:>8.3} ms | adaptive p99 {:>8.3} ms | Δp99 {:>6.1}% | hit {:.3} → {:.3} | scale {:.3}",
            kind.name(),
            fixed.p99_ms,
            adaptive.p99_ms,
            p99_gain_pct,
            sim_fixed.hit_rate,
            sim_adaptive.hit_rate,
            adaptive.final_scale,
        );
        scenario_rows.push(format!(
            r#"    {{
      "name": "{name}",
      "seed": {seed},
      "p99_gain_pct": {p99_gain_pct:.1},
      "hit_gain": {hit_gain:.4},
      "improved": {this_improved},
      "fixed": {fixed},
      "adaptive": {adaptive},
      "sim_fixed": {sim_fixed},
      "sim_adaptive": {sim_adaptive}
    }}"#,
            name = kind.name(),
            seed = args.seed,
            fixed = replay_json(&fixed),
            adaptive = replay_json(&adaptive),
            sim_fixed = sim_json(&sim_fixed),
            sim_adaptive = sim_json(&sim_adaptive),
        ));
    }

    // The friendly guardrail: adaptation must be ~free when the workload
    // behaves. 10% bound on both metrics, with a small absolute grace on
    // p99 so microsecond-scale scheduler noise cannot fail a run whose
    // latencies are tiny.
    let steps = if args.fast { 24 } else { 64 };
    let friendly = friendly_schedule(args.seed, steps, 2);
    let f_fixed = run_schedule(&friendly, &ReplayOptions::fixed(delay));
    let f_adaptive = run_schedule(&friendly, &ReplayOptions::adaptive(SLO_P99_NS, delay));
    let fs_fixed = simulate_cache(&friendly, SIM_CAPACITY, false);
    let fs_adaptive = simulate_cache(&friendly, SIM_CAPACITY, true);
    all_safe &= safety_ok(&f_fixed) && safety_ok(&f_adaptive);
    let grace_ms = 0.2;
    let p99_ok = f_adaptive.p99_ms <= f_fixed.p99_ms * 1.10 + grace_ms;
    let hit_ok = fs_adaptive.hit_rate >= fs_fixed.hit_rate * 0.90;
    println!(
        "{:<20} fixed p99 {:>8.3} ms | adaptive p99 {:>8.3} ms | hit {:.3} → {:.3} | within 10%: {}",
        "friendly_flight",
        f_fixed.p99_ms,
        f_adaptive.p99_ms,
        fs_fixed.hit_rate,
        fs_adaptive.hit_rate,
        p99_ok && hit_ok,
    );

    let (sigma_rising, sigma_falling) = sigma_curves(args.fast);
    let sigma_ok = sigma_rising.last().unwrap() > sigma_rising.first().unwrap()
        && sigma_falling.last().unwrap() < sigma_falling.first().unwrap();

    // Acceptance — fail the run loudly rather than writing a green JSON.
    assert!(all_safe, "demand was shed or errored somewhere — safety invariant broken");
    assert!(improved >= 3, "only {improved} scenarios improved; need >= 3");
    assert!(p99_ok, "friendly p99 regressed: {} -> {} ms", f_fixed.p99_ms, f_adaptive.p99_ms);
    assert!(
        hit_ok,
        "friendly hit rate regressed: {} -> {}",
        fs_fixed.hit_rate, fs_adaptive.hit_rate
    );
    assert!(sigma_ok, "σ curves lost their direction");

    let json = format!(
        r#"{{
  "bench": "adaptive",
  "provenance": "Measured on a shared container by building this file and the real workspace sources directly with rustc against offline dependency shims (cargo cannot reach a registry there). Every hostile scenario is a seeded open-loop schedule replayed twice against a deterministic in-process server (workers = 0, engine stepped to idle per step) whose source charges a fixed latency per read — once with fixed defaults, once with the closed-loop control plane ticking each step against the demand-p99 SLO. Frame latencies are wall-clock over those injected read delays and so carry scheduler noise on top of a deterministic I/O bill; hit rates come from the cache simulator over the identical demand trace and are exactly reproducible. Regenerate with `cargo run --release -p viz-bench --bin adaptive`.",
  "config": {{
    "fast": {fast}, "seed": {seed}, "delay_us": {delay_us},
    "slo_p99_ns": {slo}, "sim_capacity": {cap}
  }},
  "scenarios": [
{scenarios}
  ],
  "friendly": {{
    "fixed": {ff},
    "adaptive": {fa},
    "sim_fixed": {fsf},
    "sim_adaptive": {fsa},
    "p99_within_10pct": {p99_ok},
    "hit_within_10pct": {hit_ok}
  }},
  "sigma": {{
    "rising": [{rising}],
    "falling": [{falling}]
  }},
  "acceptance": {{
    "improved_scenarios": {improved},
    "zero_demand_sheds": true,
    "zero_demand_errors": true,
    "friendly_within_10pct": {friendly_ok}
  }}
}}
"#,
        fast = args.fast,
        seed = args.seed,
        delay_us = args.delay_us,
        slo = SLO_P99_NS,
        cap = SIM_CAPACITY,
        scenarios = scenario_rows.join(",\n"),
        ff = replay_json(&f_fixed),
        fa = replay_json(&f_adaptive),
        fsf = sim_json(&fs_fixed),
        fsa = sim_json(&fs_adaptive),
        rising = join_f64(&sigma_rising, 4),
        falling = join_f64(&sigma_falling, 4),
        friendly_ok = p99_ok && hit_ok,
    );
    std::fs::write(&args.out, &json).unwrap_or_else(|e| panic!("writing {}: {e}", args.out));
    println!("wrote {}", args.out);
}
