//! Figure 13 — total time (I/O + max(prefetch, render) for OPT;
//! I/O + render for FIFO/LRU) over 400 camera positions on a random path,
//! with cache-size ratio (a) 0.5 and (b) 0.7.
//!
//! Paper setup: `3d_ball` with 4096 blocks. Expected shape: at ratio 0.5
//! OPT wins for view changes within ~10° (up to 12% vs LRU, 25% vs FIFO)
//! and loses for larger changes; enlarging the ratio to 0.7 extends OPT's
//! win into the 10–15° range (8.6% vs LRU, 19.7% vs FIFO).

use viz_bench::{Env, Opts};
use viz_cache::PolicyKind;
use viz_core::{compute_visibility, run_session_precomputed, AppAwareConfig, Strategy, Table};
use viz_volume::DatasetKind;

fn main() {
    let opts = Opts::from_env();
    let env = Env::new(DatasetKind::Ball3d, opts.scale, 4096, opts.seed);
    eprintln!("fig13: {} blocks", env.layout.num_blocks());

    let sweeps: [(f64, f64); 6] =
        [(0.0, 5.0), (5.0, 10.0), (10.0, 15.0), (15.0, 20.0), (20.0, 25.0), (25.0, 30.0)];

    for (panel, ratio) in [('a', 0.5f64), ('b', 0.7f64)] {
        let tv = env.visible_table(opts.samples, ratio * ratio);
        let cfg = env.session_config(ratio);
        let sigma = env.sigma();
        let mut t = Table::new(
            &format!("fig13{panel}"),
            &format!("Fig. 13({panel}): total time, cache ratio {ratio} (3d_ball, 4096 blocks)"),
            "deg range",
            "total time (s)",
        );
        for &(lo, hi) in &sweeps {
            let path = env.random_path(lo, hi, opts.steps, opts.seed ^ 0x13);
            let vis = compute_visibility(&env.layout, &path);
            let mut vals = Vec::new();
            for s in [
                Strategy::Baseline(PolicyKind::Fifo),
                Strategy::Baseline(PolicyKind::Lru),
                Strategy::AppAware(AppAwareConfig::paper(sigma)),
            ] {
                let tbl = matches!(s, Strategy::AppAware(_)).then_some((&tv, &env.importance));
                let r = run_session_precomputed(&cfg, &env.layout, &s, &path, &vis, tbl);
                vals.push((r.strategy.clone(), r.total_s));
            }
            eprintln!("fig13{panel}: {lo}-{hi} deg done");
            t.push(format!("{lo}-{hi}"), vals);
        }
        opts.emit(&t);
        println!();
    }
}
