//! Figure 9 — miss rate vs. block division, 14 panels:
//! (a)–(g) spherical paths with view-direction changes of
//! {1, 5, 10, 15, 20, 25, 30, 45}° per position, and (h)–(n) random paths
//! with per-step changes in {0-5, 5-10, ..., 30-35}°.
//!
//! Paper setup: `3d_ball` with block sizes 32×32×64, 32×64×64, 64³,
//! 64×64×128, 64×128×128, 128³ (block sizes are scaled by `--scale` so the
//! block *counts* match the paper). Expected shape: OPT below FIFO/LRU for
//! every division; small blocks win at small view changes; the 1024–4096
//! block range minimizes miss rate.

use viz_bench::{Env, Opts};
use viz_cache::PolicyKind;
use viz_core::{compute_visibility, run_session_precomputed, AppAwareConfig, Strategy, Table};
use viz_volume::{DatasetKind, Dims3};

/// The paper's six block divisions at full scale.
const BLOCKS_FULL: [(usize, usize, usize); 6] =
    [(32, 32, 64), (32, 64, 64), (64, 64, 64), (64, 64, 128), (64, 128, 128), (128, 128, 128)];

fn main() {
    let opts = Opts::from_env();
    let spherical: [f64; 8] = [1.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 45.0];
    let random: [(f64, f64); 7] = [
        (0.0, 5.0),
        (5.0, 10.0),
        (10.0, 15.0),
        (15.0, 20.0),
        (20.0, 25.0),
        (25.0, 30.0),
        (30.0, 35.0),
    ];

    // One environment + T_visible per block division, reused across panels.
    struct Division {
        label: String,
        env: Env,
        tv: viz_core::VisibleTable,
    }
    let divisions: Vec<Division> = BLOCKS_FULL
        .iter()
        .map(|&(bx, by, bz)| {
            let block = Dims3::new(
                (bx / opts.scale).max(2),
                (by / opts.scale).max(2),
                (bz / opts.scale).max(2),
            );
            let env = Env::with_block_dims(DatasetKind::Ball3d, opts.scale, block, opts.seed);
            let tv = env.visible_table(opts.samples, 0.25);
            eprintln!(
                "fig09: division {bx}x{by}x{bz} -> {} blocks, table ready",
                env.layout.num_blocks()
            );
            Division { label: format!("{bx}x{by}x{bz}"), env, tv }
        })
        .collect();

    let mut tables: Vec<Table> = Vec::new();

    let mut run_panel =
        |panel_id: String, title: String, poses_of: &dyn Fn(&Env) -> Vec<viz_geom::CameraPose>| {
            let mut t = Table::new(&panel_id, &title, "block size", "miss rate");
            for d in &divisions {
                let poses = poses_of(&d.env);
                let vis = compute_visibility(&d.env.layout, &poses);
                let cfg = d.env.session_config(0.5);
                let sigma = d.env.sigma();
                let mut vals = Vec::new();
                for s in [
                    Strategy::Baseline(PolicyKind::Fifo),
                    Strategy::Baseline(PolicyKind::Lru),
                    Strategy::AppAware(AppAwareConfig::paper(sigma)),
                ] {
                    let tbl =
                        matches!(s, Strategy::AppAware(_)).then_some((&d.tv, &d.env.importance));
                    let r = run_session_precomputed(&cfg, &d.env.layout, &s, &poses, &vis, tbl);
                    vals.push((r.strategy.clone(), r.miss_rate));
                }
                t.push(d.label.clone(), vals);
            }
            eprintln!("fig09: panel {panel_id} done");
            tables.push(t);
        };

    for (i, &deg) in spherical.iter().enumerate() {
        let panel = (b'a' + i as u8) as char;
        run_panel(
            format!("fig9{panel}"),
            format!("Fig. 9({panel}): spherical path, {deg} deg/step"),
            &|env: &Env| env.spherical_path(deg, opts.steps),
        );
    }
    for (i, &(lo, hi)) in random.iter().enumerate() {
        let panel = (b'i' + i as u8) as char;
        let seed = opts.seed ^ 0x99;
        run_panel(
            format!("fig9{panel}"),
            format!("Fig. 9({panel}): random path, {lo}-{hi} deg/step"),
            &|env: &Env| env.random_path(lo, hi, opts.steps, seed),
        );
    }

    for t in &tables {
        opts.emit(t);
        println!();
    }
}
