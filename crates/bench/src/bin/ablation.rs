//! Ablation study (beyond the paper): which ingredient of the app-aware
//! policy buys what?
//!
//! Toggles pre-loading (Algorithm 1 line 7), prefetching (line 22) and the
//! render/prefetch overlap independently; adds ARC as a stronger adaptive
//! baseline (the paper cites it but does not run it) and the offline
//! Belady/MIN bound on the same demand trace.

use viz_bench::{Env, Opts};
use viz_cache::{simulate_belady, PolicyKind};
use viz_core::{
    compute_visibility, demand_trace, run_session_precomputed, AppAwareConfig, Strategy, Table,
};
use viz_volume::DatasetKind;

fn main() {
    let opts = Opts::from_env();
    let env = Env::new(DatasetKind::Ball3d, opts.scale, 2048, opts.seed);
    let tv = env.visible_table(opts.samples, 0.25);
    let cfg = env.session_config(0.5);
    let sigma = env.sigma();

    let mut t = Table::new(
        "ablation",
        "Ablation: component contributions on a 5-10 deg random path (3d_ball, 2048 blocks)",
        "variant",
        "metric",
    );

    let path = env.random_path(5.0, 10.0, opts.steps, opts.seed ^ 0xAB);
    let vis = compute_visibility(&env.layout, &path);

    let mk = |preload: bool, prefetch: bool, overlap: bool| {
        Strategy::AppAware(AppAwareConfig {
            preload,
            prefetch,
            overlap,
            ..AppAwareConfig::paper(sigma)
        })
    };
    let variants: Vec<(&str, Strategy)> = vec![
        ("FIFO", Strategy::Baseline(PolicyKind::Fifo)),
        ("LRU", Strategy::Baseline(PolicyKind::Lru)),
        ("ARC", Strategy::Baseline(PolicyKind::Arc)),
        ("CLOCK", Strategy::Baseline(PolicyKind::Clock)),
        ("LFU", Strategy::Baseline(PolicyKind::Lfu)),
        ("2Q", Strategy::Baseline(PolicyKind::TwoQ)),
        ("MRU", Strategy::Baseline(PolicyKind::Mru)),
        ("LIRS", Strategy::Baseline(PolicyKind::Lirs)),
        ("SLRU", Strategy::Baseline(PolicyKind::Slru)),
        ("OPT full", mk(true, true, true)),
        ("OPT -preload", mk(false, true, true)),
        ("OPT -prefetch", mk(true, false, true)),
        ("OPT -overlap", mk(true, true, false)),
        ("OPT preload only", mk(true, false, false)),
    ];

    for (label, s) in variants {
        let tbl = matches!(s, Strategy::AppAware(_)).then_some((&tv, &env.importance));
        let r = run_session_precomputed(&cfg, &env.layout, &s, &path, &vis, tbl);
        t.push(
            label,
            vec![
                ("miss rate".to_string(), r.miss_rate),
                ("io (s)".to_string(), r.io_s),
                ("prefetch (s)".to_string(), r.prefetch_s),
                ("total (s)".to_string(), r.total_s),
            ],
        );
        eprintln!("ablation: {label} done");
    }

    // Dead-reckoning predictor (extension): motion extrapolation instead
    // of the paper's T_visible lookup.
    {
        let s = Strategy::AppAware(viz_core::AppAwareConfig::paper(sigma).with_dead_reckoning());
        let r = run_session_precomputed(
            &cfg,
            &env.layout,
            &s,
            &path,
            &vis,
            Some((&tv, &env.importance)),
        );
        t.push(
            "OPT (dead reckoning)",
            vec![
                ("miss rate".to_string(), r.miss_rate),
                ("io (s)".to_string(), r.io_s),
                ("prefetch (s)".to_string(), r.prefetch_s),
                ("total (s)".to_string(), r.total_s),
            ],
        );
        eprintln!("ablation: dead reckoning done");
    }

    // Closed-loop sigma (extension): tune the threshold online so
    // prefetch fills the render window.
    {
        use viz_core::AdaptiveSigma;
        let s = Strategy::AppAware(
            viz_core::AppAwareConfig::paper(sigma)
                .with_adaptive_sigma(AdaptiveSigma::default_for_bins(64)),
        );
        let r = run_session_precomputed(
            &cfg,
            &env.layout,
            &s,
            &path,
            &vis,
            Some((&tv, &env.importance)),
        );
        t.push(
            "OPT (adaptive sigma)",
            vec![
                ("miss rate".to_string(), r.miss_rate),
                ("io (s)".to_string(), r.io_s),
                ("prefetch (s)".to_string(), r.prefetch_s),
                ("total (s)".to_string(), r.total_s),
            ],
        );
        eprintln!("ablation: adaptive sigma done");
    }

    // Alternative importance measure: mean gradient magnitude instead of
    // entropy (the classic boundary-emphasis importance).
    {
        use viz_core::ImportanceTable;
        use viz_volume::block_mean_gradient;
        let field = env.spec.materialize(0, 0.0);
        let grad = ImportanceTable::from_entropies(block_mean_gradient(&field, &env.layout), 64);
        let sigma_g = grad.sigma_for_fraction(0.5);
        let s = Strategy::AppAware(viz_core::AppAwareConfig::paper(sigma_g));
        let r = run_session_precomputed(&cfg, &env.layout, &s, &path, &vis, Some((&tv, &grad)));
        t.push(
            "OPT (gradient importance)",
            vec![
                ("miss rate".to_string(), r.miss_rate),
                ("io (s)".to_string(), r.io_s),
                ("prefetch (s)".to_string(), r.prefetch_s),
                ("total (s)".to_string(), r.total_s),
            ],
        );
        eprintln!("ablation: gradient importance done");
    }

    // Offline optimum on the same trace (replacement-only lower bound for
    // the DRAM tier; no prefetching, so it bounds the *reactive* policies).
    let trace = demand_trace(&env.layout, &path);
    let dram_capacity = (env.layout.num_blocks() / 4).max(1);
    let belady = simulate_belady(&trace, dram_capacity);
    t.push("Belady/MIN (offline bound)", vec![("miss rate".to_string(), belady.miss_rate())]);

    opts.emit(&t);
}
