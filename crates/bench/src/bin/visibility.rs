//! Visibility-kernel benchmark: brute-force Eq. 1 scans vs the BVH.
//!
//! Measures, at the paper's operating point (512³ volume, 16³ blocks =
//! 32,768 blocks; 25,920 sampling positions × 8 vicinal points):
//!
//! - `T_visible` build time, brute force vs BVH-accelerated, and the
//!   resulting speedup (the PR's ≥5× target);
//! - single ground-truth query latency (`visible_blocks`), both paths;
//! - BVH construction time and footprint;
//! - table memory: flat CSR bytes vs the former `Vec<Vec<BlockId>>`
//!   layout, and serialized size: varint-delta v2 vs the fixed-width v1.
//!
//! Results are printed and written as JSON (default `BENCH_visibility.json`;
//! `--out PATH` overrides, `--fast` shrinks the workload for smoke runs).

use std::time::Instant;
use viz_bench::{D_MAX, D_MIN, VIEW_ANGLE_DEG};
use viz_core::persist::encode_visible_table;
use viz_core::{
    visible_blocks, visible_blocks_brute_force, RadiusModel, RadiusRule, SamplingConfig,
    VisibleTable,
};
use viz_geom::angle::deg_to_rad;
use viz_geom::CameraPose;
use viz_volume::{BlockBvh, BrickLayout, Dims3};

struct Args {
    fast: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut a = Args { fast: false, out: "BENCH_visibility.json".to_string() };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fast" => a.fast = true,
            "--out" => {
                if let Some(p) = it.next() {
                    a.out = p;
                }
            }
            "--help" | "-h" => {
                eprintln!("options: --fast  --out PATH");
                std::process::exit(0);
            }
            other => eprintln!("ignoring unknown option {other:?}"),
        }
    }
    a
}

fn main() {
    let args = parse_args();
    // Paper scale: 512³ voxels in 16³ bricks → 32³ = 32,768 blocks and the
    // preferred 25,920-sample lattice. --fast shrinks both for CI.
    let (volume, samples) = if args.fast { (128usize, 720usize) } else { (512, 25_920) };
    let layout = BrickLayout::new(Dims3::cube(volume), Dims3::cube(16));
    let angle = deg_to_rad(VIEW_ANGLE_DEG);
    let cfg = SamplingConfig::paper_default(D_MIN, D_MAX, angle).with_target_samples(samples);
    let rule = RadiusRule::Optimal(RadiusModel::new(0.25, angle));
    eprintln!(
        "visibility: {v}^3 volume, {b} blocks, {s} samples x {p} vicinal points",
        v = volume,
        b = layout.num_blocks(),
        s = cfg.total_samples(),
        p = cfg.vicinal_points,
    );

    // BVH construction (the one-time cost the accelerated path adds).
    let t0 = Instant::now();
    let bvh = BlockBvh::new(&layout);
    let bvh_build_s = t0.elapsed().as_secs_f64();
    eprintln!("bvh: built in {bvh_build_s:.4}s, {} bytes", bvh.approx_bytes());

    // Table build, both paths. Build order is brute first so the cached
    // layout BVH (warmed above) cannot subsidize the baseline.
    let t0 = Instant::now();
    let brute = VisibleTable::build_brute_force(cfg, &layout, rule, None);
    let brute_build_s = t0.elapsed().as_secs_f64();
    eprintln!("build: brute force {brute_build_s:.3}s");

    let t0 = Instant::now();
    let accel = VisibleTable::build(cfg, &layout, rule, None);
    let accel_build_s = t0.elapsed().as_secs_f64();
    let speedup = brute_build_s / accel_build_s;
    eprintln!("build: bvh {accel_build_s:.3}s ({speedup:.1}x)");

    assert_eq!(brute.csr_offsets(), accel.csr_offsets(), "offsets diverge");
    assert_eq!(brute.csr_ids(), accel.csr_ids(), "visible sets diverge");
    eprintln!("check: accelerated table identical to brute force");

    // Single-query ground-truth latency over a pose sweep.
    let poses: Vec<CameraPose> = (0..200)
        .map(|i| {
            let t = i as f64 / 200.0;
            CameraPose::orbit(
                10.0 + 160.0 * t,
                360.0 * ((i * 7) % 200) as f64 / 200.0,
                D_MIN + (D_MAX - D_MIN) * t,
                VIEW_ANGLE_DEG,
            )
        })
        .collect();
    let t0 = Instant::now();
    let mut brute_seen = 0usize;
    for p in &poses {
        brute_seen += visible_blocks_brute_force(p, &layout).len();
    }
    let query_brute_us = t0.elapsed().as_secs_f64() * 1e6 / poses.len() as f64;
    let t0 = Instant::now();
    let mut accel_seen = 0usize;
    for p in &poses {
        accel_seen += visible_blocks(p, &layout).len();
    }
    let query_accel_us = t0.elapsed().as_secs_f64() * 1e6 / poses.len() as f64;
    assert_eq!(brute_seen, accel_seen, "query paths disagree");
    eprintln!(
        "query: brute {query_brute_us:.1}us, bvh {query_accel_us:.1}us ({:.1}x)",
        query_brute_us / query_accel_us
    );

    // Memory + serialized size: CSR/varint-v2 vs the seed layouts.
    let n = accel.len();
    let ids = accel.csr_ids().len();
    let csr_bytes = accel.approx_bytes();
    let vec_of_vec_bytes = ids * 4 + n * 24; // former per-entry Vec headers
    let v2 = encode_visible_table(&accel).expect("encode");
    // v1 frame cost: 10-byte preamble + JSON header + u32 count + fixed
    // u32 per entry length and per id.
    let header = serde_json::to_vec(&(&accel.config, &accel.radius_rule)).expect("header");
    let v1_estimate = 10 + header.len() + 4 + n * 4 + ids * 4;
    eprintln!(
        "size: csr {csr_bytes} B (vec-of-vec {vec_of_vec_bytes} B), \
         serialized v2 {} B (v1 {v1_estimate} B)",
        v2.len()
    );

    let json = serde_json::json!({
        "bench": "visibility",
        "operating_point": {
            "volume_dims": volume,
            "block_dims": 16,
            "num_blocks": layout.num_blocks(),
            "samples": cfg.total_samples(),
            "vicinal_points": cfg.vicinal_points,
            "view_angle_deg": VIEW_ANGLE_DEG,
            "fast": args.fast,
        },
        "bvh": {
            "build_s": bvh_build_s,
            "approx_bytes": bvh.approx_bytes(),
            "num_blocks": bvh.num_blocks(),
        },
        "table_build": {
            "brute_force_s": brute_build_s,
            "bvh_s": accel_build_s,
            "speedup": speedup,
            "identical": true,
        },
        "query": {
            "poses": poses.len(),
            "brute_force_us": query_brute_us,
            "bvh_us": query_accel_us,
            "speedup": query_brute_us / query_accel_us,
        },
        "table_bytes": {
            "entries": n,
            "total_ids": ids,
            "csr": csr_bytes,
            "vec_of_vec": vec_of_vec_bytes,
            "serialized_v2": v2.len(),
            "serialized_v1": v1_estimate,
        },
    });
    let pretty = serde_json::to_string_pretty(&json).expect("json");
    std::fs::write(&args.out, pretty + "\n").expect("write results");
    println!("{}", serde_json::to_string_pretty(&json).expect("json"));
    eprintln!("wrote {}", args.out);
}
