//! Session-scaling soak: the thread-per-connection model vs the reactor,
//! from 64 real TCP sessions up to 10 000 in-process sessions with churn.
//!
//! Three stages:
//!
//! 1. **Thread baseline** — 64 TCP clients against the thread-per-conn
//!    front end: demand round-trip p50/p99, resident-set delta per
//!    session, process thread count while serving.
//! 2. **Reactor parity** — the same 64-client TCP workload against the
//!    poll-loop front end: latency must hold while the thread count
//!    collapses to one loop.
//! 3. **Reactor soak** — 1k/4k/10k sessions over the deterministic
//!    in-process reactor with 10 % churn per round: every demand block
//!    delivered, queues drained each round, memory per session and
//!    probe latency recorded.
//!
//! Results print and land as JSON (default `BENCH_reactor.json`; `--out
//! PATH` overrides, `--fast` shrinks counts for CI smoke runs).

use std::sync::Arc;
use std::time::{Duration, Instant};
use viz_fetch::{BlockPool, FetchConfig, FetchEngine, InstrumentedSource};
use viz_serve::{
    InProcTransport, IoBackend, ReactorInProcServer, ServeClient, ServeConfig, Server, TcpFrontend,
    TcpTransport,
};
use viz_volume::{BlockId, BlockKey, MemBlockStore};

struct Args {
    fast: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut a = Args { fast: false, out: "BENCH_reactor.json".to_string() };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fast" => a.fast = true,
            "--out" => {
                if let Some(p) = it.next() {
                    a.out = p;
                }
            }
            "--help" | "-h" => {
                eprintln!("options: --fast  --out PATH");
                std::process::exit(0);
            }
            other => eprintln!("ignoring unknown option {other:?}"),
        }
    }
    a
}

const STORE_KEYS: u32 = 4096;
const BLOCK_LEN: usize = 64;

fn key(i: u32) -> BlockKey {
    BlockKey::scalar(BlockId(i % STORE_KEYS))
}

fn filled_store() -> Arc<MemBlockStore> {
    let store = MemBlockStore::new();
    for i in 0..STORE_KEYS {
        store.insert(key(i), vec![i as f32; BLOCK_LEN]);
    }
    Arc::new(store)
}

/// `(VmRSS kB, Threads)` from `/proc/self/status`; zeros when absent.
fn proc_status() -> (u64, u64) {
    let Ok(text) = std::fs::read_to_string("/proc/self/status") else {
        return (0, 0);
    };
    let field = |name: &str| {
        text.lines()
            .find(|l| l.starts_with(name))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0)
    };
    (field("VmRSS:"), field("Threads:"))
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[derive(Clone, Copy, Default)]
struct Summary {
    p50_ms: f64,
    p99_ms: f64,
    mean_ms: f64,
}

fn summarize(times: &[f64]) -> Summary {
    let mut sorted = times.to_vec();
    sorted.sort_by(f64::total_cmp);
    Summary {
        p50_ms: percentile(&sorted, 0.50) * 1e3,
        p99_ms: percentile(&sorted, 0.99) * 1e3,
        mean_ms: sorted.iter().sum::<f64>() / sorted.len().max(1) as f64 * 1e3,
    }
}

struct TcpRun {
    backend: &'static str,
    sessions: usize,
    requests: u64,
    demand_errors: u64,
    lat: Summary,
    rss_per_session_kb: f64,
    threads_during: u64,
    wall_s: f64,
}

/// 64 sequential TCP clients, round-robin fetches: the per-request
/// latency is a clean server-side round trip (no client thundering
/// herd), and the process thread count isolates the front-end model —
/// both backends see the identical wire workload.
fn run_tcp(backend: IoBackend, sessions: usize, rounds: usize) -> TcpRun {
    let src = Arc::new(InstrumentedSource::new(filled_store(), Duration::from_micros(100)));
    let engine = FetchEngine::spawn(
        src,
        Arc::new(BlockPool::new()),
        FetchConfig { workers: 4, queue_cap: 16384, ..FetchConfig::default() },
    );
    let server = Server::new(
        Arc::new(engine),
        ServeConfig { backend, max_sessions: sessions + 1, ..ServeConfig::default() },
    );
    let (rss_before, _) = proc_status();
    let tcp = TcpFrontend::bind(server, "127.0.0.1:0").expect("bind");
    let addr = tcp.local_addr().to_string();

    let mut clients: Vec<ServeClient<TcpTransport>> = (0..sessions)
        .map(|c| {
            let mut cl = ServeClient::new(TcpTransport::connect(&addr).expect("connect"));
            cl.open(&format!("soak-{c}")).expect("open");
            cl
        })
        .collect();

    let mut latencies = Vec::with_capacity(sessions * rounds);
    let mut errors = 0u64;
    let t0 = Instant::now();
    for round in 0..rounds {
        for (c, client) in clients.iter_mut().enumerate() {
            let base = (round * sessions + c * 2) as u32;
            let t = Instant::now();
            let got = client
                .fetch(vec![key(base), key(base + 1)], vec![(key(base + 512), 0.7)])
                .expect("fetch");
            latencies.push(t.elapsed().as_secs_f64());
            errors += got.blocks.iter().filter(|b| b.result.is_err()).count() as u64;
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let (rss_during, threads_during) = proc_status();

    for client in &mut clients {
        client.close().expect("close");
    }
    drop(clients);
    tcp.shutdown();
    TcpRun {
        backend: match backend {
            IoBackend::Threads => "threads",
            IoBackend::Reactor => "reactor",
        },
        sessions,
        requests: (sessions * rounds) as u64,
        demand_errors: errors,
        lat: summarize(&latencies),
        rss_per_session_kb: rss_during.saturating_sub(rss_before) as f64 / sessions as f64,
        threads_during,
        wall_s,
    }
}

struct InprocRun {
    sessions: usize,
    rounds: usize,
    churn: usize,
    requests: u64,
    demand_errors: u64,
    prefetch_shed: u64,
    sessions_opened: u64,
    probe: Summary,
    burst_req_per_s: f64,
    rss_per_session_kb: f64,
    threads_during: u64,
    wall_s: f64,
}

/// N in-process sessions on the deterministic reactor, 10 % churn per
/// round. Each round is one burst (every session sends a fetch, one
/// tick serves them all) plus a set of individually-timed probe
/// round-trips measuring request latency with N sessions open.
fn run_inproc(sessions: usize, rounds: usize) -> InprocRun {
    let engine = FetchEngine::spawn(
        filled_store(),
        Arc::new(BlockPool::new()),
        FetchConfig { workers: 0, batch_max: 8, ..FetchConfig::deterministic() },
    );
    let server = Server::new(
        Arc::new(engine),
        ServeConfig {
            backend: IoBackend::Reactor,
            max_sessions: sessions + sessions / 10 + 1,
            engine_queue_target: 64 * 1024,
            shed_queue_depth: 1 << 20,
            downgrade_queue_depth: 1 << 20,
            demand_deadline: Some(Duration::from_millis(50)),
            ..ServeConfig::default()
        },
    );
    let (rss_before, _) = proc_status();
    let mut reactor = ReactorInProcServer::new(server);

    let open = |reactor: &mut ReactorInProcServer, n: usize| -> Vec<ServeClient<InProcTransport>> {
        let mut cohort: Vec<ServeClient<InProcTransport>> =
            (0..n).map(|_| ServeClient::new(reactor.connect())).collect();
        for c in &mut cohort {
            c.send_open("soak").expect("send open");
        }
        reactor.tick();
        for c in &mut cohort {
            c.recv_open().expect("open ack");
        }
        cohort
    };

    let mut clients = open(&mut reactor, sessions);
    let churn = sessions / 10;
    let mut errors = 0u64;
    let mut requests = 0u64;
    let mut probes = Vec::new();
    let mut burst_reqs = 0u64;
    let mut burst_wall = 0.0f64;
    let t0 = Instant::now();
    for round in 0..rounds {
        // Burst: every session's frame in one tick.
        for (i, c) in clients.iter_mut().enumerate() {
            let base = (round * 13 + i * 2) as u32;
            c.send_fetch(0, vec![key(base), key(base + 1)], vec![(key(base + 512), 0.7)])
                .expect("send fetch");
        }
        let tb = Instant::now();
        reactor.tick();
        burst_wall += tb.elapsed().as_secs_f64();
        for c in &mut clients {
            let got = c.recv_fetch().expect("fetch reply");
            errors += got.blocks.iter().filter(|b| b.result.is_err()).count() as u64;
        }
        requests += clients.len() as u64;
        burst_reqs += clients.len() as u64;

        // Probes: individually-timed round trips under N open sessions.
        let probe_n = 64.min(clients.len());
        let step = clients.len() / probe_n.max(1);
        for p in 0..probe_n {
            let c = &mut clients[p * step];
            let base = (round * 29 + p * 3) as u32;
            let t = Instant::now();
            c.send_fetch(0, vec![key(base)], vec![]).expect("send probe");
            reactor.tick();
            let got = c.recv_fetch().expect("probe reply");
            probes.push(t.elapsed().as_secs_f64());
            errors += got.blocks.iter().filter(|b| b.result.is_err()).count() as u64;
            requests += 1;
        }

        // Churn 10 %: the oldest cohort leaves, a new one joins.
        let mut leavers: Vec<_> = clients.drain(..churn).collect();
        for c in &mut leavers {
            c.send_close().expect("send close");
        }
        reactor.tick();
        drop(leavers); // acks unread: the pipes just die, like real peers
        reactor.sweep();
        reactor.tick();
        clients.extend(open(&mut reactor, churn));
        reactor.advance(16_000_000);

        let depths = reactor.server().engine().queue_depths();
        assert_eq!(depths, (0, 0), "round {round}: engine queues must drain");
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let (rss_during, threads_during) = proc_status();
    let m = reactor.server().metrics();
    assert_eq!(m.demand_errors, 0, "soak demand must never error");
    InprocRun {
        sessions,
        rounds,
        churn,
        requests,
        demand_errors: errors,
        prefetch_shed: m.prefetch_shed,
        sessions_opened: m.sessions_opened,
        probe: summarize(&probes),
        burst_req_per_s: burst_reqs as f64 / burst_wall.max(1e-9),
        rss_per_session_kb: rss_during.saturating_sub(rss_before) as f64 / sessions as f64,
        threads_during,
        wall_s,
    }
}

fn tcp_json(r: &TcpRun) -> String {
    format!(
        r#"    {{
      "backend": "{backend}",
      "sessions": {n},
      "requests": {reqs},
      "demand_errors": {errs},
      "demand_ms": {{ "p50": {p50:.3}, "p99": {p99:.3}, "mean": {mean:.3} }},
      "rss_per_session_kb": {rss:.1},
      "process_threads": {threads},
      "wall_s": {wall:.3}
    }}"#,
        backend = r.backend,
        n = r.sessions,
        reqs = r.requests,
        errs = r.demand_errors,
        p50 = r.lat.p50_ms,
        p99 = r.lat.p99_ms,
        mean = r.lat.mean_ms,
        rss = r.rss_per_session_kb,
        threads = r.threads_during,
        wall = r.wall_s,
    )
}

fn inproc_json(r: &InprocRun) -> String {
    format!(
        r#"    {{
      "sessions": {n},
      "rounds": {rounds},
      "churn_per_round": {churn},
      "requests": {reqs},
      "demand_errors": {errs},
      "prefetch_shed": {shed},
      "sessions_opened_total": {opened},
      "probe_ms": {{ "p50": {p50:.3}, "p99": {p99:.3}, "mean": {mean:.3} }},
      "burst_requests_per_s": {brps:.0},
      "rss_per_session_kb": {rss:.2},
      "process_threads": {threads},
      "wall_s": {wall:.3}
    }}"#,
        n = r.sessions,
        rounds = r.rounds,
        churn = r.churn,
        reqs = r.requests,
        errs = r.demand_errors,
        shed = r.prefetch_shed,
        opened = r.sessions_opened,
        p50 = r.probe.p50_ms,
        p99 = r.probe.p99_ms,
        mean = r.probe.mean_ms,
        brps = r.burst_req_per_s,
        rss = r.rss_per_session_kb,
        threads = r.threads_during,
        wall = r.wall_s,
    )
}

fn main() {
    let args = parse_args();
    let (tcp_n, tcp_rounds, soak_counts, soak_rounds) =
        if args.fast { (16, 4, vec![500], 3) } else { (64, 20, vec![1_000, 4_000, 10_000], 5) };

    eprintln!("soak: {STORE_KEYS} blocks x {BLOCK_LEN} f32, 100 us reads");
    let threads_tcp = run_tcp(IoBackend::Threads, tcp_n, tcp_rounds);
    eprintln!(
        "  threads-tcp N={}: demand p50 {:.2} ms p99 {:.2} ms, {:.1} kB/session, {} threads",
        threads_tcp.sessions,
        threads_tcp.lat.p50_ms,
        threads_tcp.lat.p99_ms,
        threads_tcp.rss_per_session_kb,
        threads_tcp.threads_during
    );
    let reactor_tcp = run_tcp(IoBackend::Reactor, tcp_n, tcp_rounds);
    eprintln!(
        "  reactor-tcp N={}: demand p50 {:.2} ms p99 {:.2} ms, {:.1} kB/session, {} threads",
        reactor_tcp.sessions,
        reactor_tcp.lat.p50_ms,
        reactor_tcp.lat.p99_ms,
        reactor_tcp.rss_per_session_kb,
        reactor_tcp.threads_during
    );
    assert_eq!(threads_tcp.demand_errors, 0);
    assert_eq!(reactor_tcp.demand_errors, 0);

    let mut soaks = Vec::new();
    for &n in &soak_counts {
        let r = run_inproc(n, soak_rounds);
        eprintln!(
            "  reactor-soak N={}: probe p50 {:.3} ms p99 {:.3} ms, {:.0} burst req/s, \
             {:.2} kB/session, {} threads, {} opened",
            r.sessions,
            r.probe.p50_ms,
            r.probe.p99_ms,
            r.burst_req_per_s,
            r.rss_per_session_kb,
            r.threads_during,
            r.sessions_opened
        );
        assert_eq!(r.demand_errors, 0, "soak demand errors at N={n}");
        assert_eq!(r.prefetch_shed, 0, "soak prefetch shed at N={n}");
        soaks.push(r);
    }

    // Acceptance gates (full run only): the reactor sustains >= 1k
    // sessions with demand p99 within 2x of the 64-session thread-model
    // figure, on strictly fewer threads and less memory per session.
    if !args.fast {
        let base_p99 = threads_tcp.lat.p99_ms;
        let big = &soaks[0]; // N = 1000
        assert!(
            big.probe.p99_ms <= base_p99 * 2.0,
            "1k-session reactor probe p99 {:.3} ms blew past 2x the 64-session \
             thread-model p99 {base_p99:.3} ms",
            big.probe.p99_ms
        );
        assert!(
            reactor_tcp.lat.p99_ms <= base_p99 * 2.0,
            "reactor TCP p99 {:.3} ms lost parity with the thread model's {base_p99:.3} ms",
            reactor_tcp.lat.p99_ms
        );
        for r in &soaks {
            assert!(
                r.threads_during < threads_tcp.threads_during,
                "reactor at N={} used {} threads, thread model used {}",
                r.sessions,
                r.threads_during,
                threads_tcp.threads_during
            );
            if r.rss_per_session_kb > 0.0 && threads_tcp.rss_per_session_kb > 0.0 {
                assert!(
                    r.rss_per_session_kb < threads_tcp.rss_per_session_kb,
                    "reactor at N={} used {:.2} kB/session, thread model {:.2}",
                    r.sessions,
                    r.rss_per_session_kb,
                    threads_tcp.rss_per_session_kb
                );
            }
        }
        assert!(
            reactor_tcp.threads_during < threads_tcp.threads_during,
            "the reactor TCP front end must run on fewer threads"
        );
    }

    let json = format!(
        r#"{{
  "bench": "reactor_soak",
  "provenance": "Measured on a shared container by building this file and the real workspace sources directly with rustc against offline dependency shims (cargo cannot reach a registry there). TCP stages run {tcp_n} sequential localhost clients against each front end (identical wire workload; per-request latency is a full round trip); soak stages run the deterministic in-process reactor with 10% session churn per round, individually-timed probe round-trips, and RSS/thread figures read from /proc/self/status. Absolute times carry scheduler noise; ratios (p99 scaling, threads, kB/session) are representative. Regenerate with `cargo run --release -p viz-bench --bin soak`.",
  "operating_point": {{
    "store_keys": {keys},
    "block_len_f32": {bl},
    "read_delay_us": 100,
    "tcp_sessions": {tcp_n},
    "tcp_rounds": {tcp_rounds},
    "soak_rounds": {soak_rounds},
    "engine_workers_tcp": 4,
    "soak_batch_max": 8
  }},
  "tcp": [
{tcp_entries}
  ],
  "reactor_soak": [
{soak_entries}
  ]
}}
"#,
        keys = STORE_KEYS,
        bl = BLOCK_LEN,
        tcp_n = tcp_n,
        tcp_rounds = tcp_rounds,
        soak_rounds = soak_rounds,
        tcp_entries = [tcp_json(&threads_tcp), tcp_json(&reactor_tcp)].join(",\n"),
        soak_entries = soaks.iter().map(inproc_json).collect::<Vec<_>>().join(",\n"),
    );
    std::fs::write(&args.out, &json).expect("write results");
    println!("{json}");
    eprintln!("wrote {}", args.out);
}
