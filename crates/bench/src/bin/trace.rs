//! Distributed-tracing benchmark: the price of trace-context propagation
//! on the fetch hot path, and the cost of scraping a 4-node cluster's
//! telemetry over the wire.
//!
//! Three parts:
//!
//! 1. **Per-event cost**: the resident-request microbench from the
//!    telemetry bench, timed three ways — gate off, gate on, and gate on
//!    with a client trace context set ([`viz_telemetry::with_trace`]
//!    around every request). Gate-off must stay at the one-relaxed-load
//!    baseline whether or not a trace context is set; the traced on-path
//!    must stay within 1.2x of the untraced on-path.
//! 2. **Cluster scrape**: a 4-node deterministic [`TestCluster`] under
//!    the chaos workload (slow + crash windows, flight recorder armed);
//!    each rep routes one demand frame and then drains all four nodes
//!    with `TelemetryGet` through [`Router::scrape`]. Reports p50 scrape
//!    latency and events per scrape, plus the chaos run's trigger/dump
//!    counts and the zero-demand-errors invariant.
//! 3. **Merged trace artifact**: one traced window — a routed frame plus
//!    a direct client fetch that peer-forwards — merged with
//!    [`viz_telemetry::collect::cluster_chrome_trace`] into
//!    `trace_cluster.json`: clock-aligned, structurally validated, with
//!    router / owner / peer spans sharing trace ids.
//!
//! Results go to `BENCH_trace.json` (`--out PATH` overrides, `--trace
//! PATH` moves the merged trace, `--fast` shrinks reps for smoke runs).

use std::sync::Arc;
use std::time::Instant;
use viz_cluster::chaos::run_plan;
use viz_cluster::{
    ChaosAction, ChaosEvent, ChaosOptions, ChaosPlan, NodeId, Router, ShardStrategy, TestCluster,
};
use viz_fetch::{BlockPool, FetchConfig, FetchEngine};
use viz_serve::TraceCtx;
use viz_telemetry::{collect, json, EventKind};
use viz_volume::{BlockId, BlockKey, BlockSource, MemBlockStore};

struct Args {
    fast: bool,
    out: String,
    trace_out: String,
}

fn parse_args() -> Args {
    let mut a = Args {
        fast: false,
        out: "BENCH_trace.json".to_string(),
        trace_out: "trace_cluster.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fast" => a.fast = true,
            "--out" => {
                if let Some(p) = it.next() {
                    a.out = p;
                }
            }
            "--trace" => {
                if let Some(p) = it.next() {
                    a.trace_out = p;
                }
            }
            "--help" | "-h" => {
                eprintln!("options: --fast  --out PATH  --trace PATH");
                std::process::exit(0);
            }
            other => eprintln!("ignoring unknown option {other:?}"),
        }
    }
    a
}

fn key(i: u32) -> BlockKey {
    BlockKey::scalar(BlockId(i))
}

/// Time `reps` repetitions of `n` resident demand requests — the
/// cheapest engine operation, so per-op deltas expose per-event costs.
/// `trace` wraps every request in a client trace context.
fn resident_reps(reps: usize, n: usize, trace: bool) -> Vec<u64> {
    let blocks = 64u32;
    let store = MemBlockStore::new();
    for i in 0..blocks {
        store.insert(key(i), vec![i as f32; 256]);
    }
    let source: Arc<dyn BlockSource> = Arc::new(store);
    let pool = Arc::new(BlockPool::new());
    let engine = FetchEngine::spawn(source, pool, FetchConfig::deterministic());
    for i in 0..blocks {
        engine.prefetch(key(i), 1.0);
    }
    engine.run_until_idle();

    let mut times = Vec::with_capacity(reps);
    for rep in 0..reps {
        let run = |engine: &FetchEngine| {
            for j in 0..n {
                let t = engine.request(key(j as u32 % blocks));
                t.try_wait()
                    .unwrap_or_else(|_| panic!("resident block resolves immediately"))
                    .expect("read ok");
            }
        };
        let t0 = Instant::now();
        if trace {
            viz_telemetry::with_trace(0x1000 + rep as u64, || run(&engine));
        } else {
            run(&engine);
        }
        times.push(t0.elapsed().as_nanos() as u64);
        if viz_telemetry::enabled() {
            viz_telemetry::drain();
        }
    }
    engine.shutdown();
    times.sort_unstable();
    times
}

fn p50(sorted: &[u64]) -> u64 {
    sorted[sorted.len() / 2]
}

/// One traced cluster window for the merged artifact: clock sync, a
/// routed frame, and a direct client fetch that peer-forwards, then a
/// full scrape merged into one Perfetto document.
fn merged_trace_window(cluster: &TestCluster, router: &mut Router, keys: &[BlockKey]) -> String {
    viz_telemetry::reset();
    let synced = router.sync_clocks();
    assert_eq!(synced, cluster.live_nodes().len(), "every node answered the clock probe");
    let reply = router.fetch(keys.to_vec(), vec![]);
    assert!(reply.blocks.iter().all(|b| b.result.is_ok()));

    // A client asks node 0 for a block node 1 owns: node 0's engine
    // peer-forwards, so the window holds router, owner, and peer spans.
    let remote = *keys
        .iter()
        .find(|&&k| cluster.map().owner(k) == Some(NodeId(1)))
        .expect("some key lands on node 1");
    let mut client = cluster.client(NodeId(0));
    client.open("tracer").unwrap();
    client.set_trace_ctx(TraceCtx { trace: 0x7ACE, span: 1 });
    // Evict nothing: the key is warm on node 1 but cold on node 0, so
    // the forward still happens unless node 0 already holds it.
    let out = client.fetch(vec![remote], vec![]).unwrap();
    assert!(out.blocks[0].result.is_ok());

    let drains = router.scrape();
    let all: Vec<_> = drains.iter().flat_map(|d| d.events.iter().cloned()).collect();
    let has = |k: EventKind| all.iter().any(|e| e.kind == k);
    assert!(has(EventKind::RouterFetch), "router span present");
    assert!(has(EventKind::RpcServe), "node serve spans present");
    assert!(has(EventKind::PeerFetch), "peer forward span present");
    let ids = collect::trace_ids(&all);
    assert!(ids.contains(&0x7ACE), "the client's trace id survived the forward");
    assert!(collect::traces_connected(&all, &ids), "traces form connected trees");
    let doc = collect::cluster_chrome_trace(&drains);
    json::validate(&doc).expect("merged cluster trace must be valid JSON");
    doc
}

fn main() {
    let args = parse_args();
    let (reps, n) = if args.fast { (30, 2_000) } else { (200, 10_000) };

    // Part 1: per-event cost, off / off+ctx / on / on+ctx.
    eprintln!("trace: per-event cost, {reps} reps x {n} resident requests");
    viz_telemetry::set_enabled(false);
    viz_telemetry::reset();
    let off = resident_reps(reps, n, false);
    let off_traced = resident_reps(reps, n, true);
    viz_telemetry::set_enabled(true);
    let on = resident_reps(reps, n, false);
    let on_traced = resident_reps(reps, n, true);
    viz_telemetry::set_enabled(false);
    viz_telemetry::reset();

    let per_op = |sorted: &[u64]| p50(sorted) as f64 / n as f64;
    let (off_ns, off_traced_ns) = (per_op(&off), per_op(&off_traced));
    let (on_ns, on_traced_ns) = (per_op(&on), per_op(&on_traced));
    let event_cost = (on_ns - off_ns).max(0.0);
    let event_cost_traced = (on_traced_ns - off_ns).max(0.0);
    let gate_off_ratio = off_traced_ns / off_ns.max(1e-9);
    let traced_ratio = on_traced_ns / on_ns.max(1e-9);
    eprintln!(
        "  off {off_ns:.1} ns/op (traced {off_traced_ns:.1}), on {on_ns:.1} ns/op (traced {on_traced_ns:.1})"
    );
    eprintln!(
        "  ~{event_cost:.1} ns/event untraced, ~{event_cost_traced:.1} ns/event traced, on-path ratio {traced_ratio:.3}"
    );

    // Part 2: 4-node chaos run with the flight recorder armed, then
    // scrape reps under the live workload.
    eprintln!("trace: 4-node chaos run + TelemetryGet scrape");
    viz_telemetry::set_enabled(true);
    viz_telemetry::reset();
    viz_telemetry::flight::configure(viz_telemetry::flight::FlightConfig {
        slo_ns: 100_000,
        slo_burn: 0.1,
        slo_min_count: 16,
        ..viz_telemetry::flight::FlightConfig::default()
    });
    let mut cluster = TestCluster::new(4, ShardStrategy::Ring);
    let mut router = cluster.router("chaos");
    let plan = ChaosPlan {
        events: vec![
            ChaosEvent { step: 2, action: ChaosAction::Slow(NodeId(1), 1_500) },
            ChaosEvent { step: 3, action: ChaosAction::Crash(NodeId(3)) },
            ChaosEvent { step: 6, action: ChaosAction::Restart(NodeId(3)) },
            ChaosEvent { step: 8, action: ChaosAction::Unslow(NodeId(1)) },
        ],
    };
    let dump_path = std::env::temp_dir().join("viz_bench_trace_flight.vfdr");
    let _ = std::fs::remove_file(&dump_path);
    let opts = ChaosOptions { flight_dump: Some(dump_path.clone()), ..ChaosOptions::default() };
    let report = run_plan(&mut cluster, &mut router, &plan, &opts);
    assert_eq!(report.demand_errors, 0, "chaos must never cost a demand block");
    assert!(report.triggers >= 1, "the fault window fired a flight trigger");
    assert!(report.dump_events > 0, "the trigger cut a flight dump");
    let dump_sections = viz_cluster::read_flight_dump(&dump_path).expect("dump reads back");
    let dump_has_fault = dump_sections
        .iter()
        .flat_map(|s| s.events.iter())
        .any(|e| e.kind == EventKind::FaultInjected);
    assert!(dump_has_fault, "the dump holds the injection timeline");
    let _ = std::fs::remove_file(&dump_path);
    eprintln!(
        "  chaos: {} demand blocks, 0 errors, {} triggers, {} dump events",
        report.demand_blocks, report.triggers, report.dump_events
    );

    let keys: Vec<BlockKey> = (0..opts.key_space).map(key).collect();
    let scrape_reps = if args.fast { 10 } else { 50 };
    let mut scrape_ns: Vec<u64> = Vec::with_capacity(scrape_reps);
    let mut scrape_events = 0u64;
    for _ in 0..scrape_reps {
        let frame: Vec<BlockKey> = keys.iter().take(16).copied().collect();
        let _ = router.fetch(frame, vec![]);
        let t0 = Instant::now();
        let drains = router.scrape();
        scrape_ns.push(t0.elapsed().as_nanos() as u64);
        scrape_events += drains.iter().map(|d| d.events.len() as u64).sum::<u64>();
    }
    scrape_ns.sort_unstable();
    let scrape_p50 = p50(&scrape_ns);
    let events_per_scrape = scrape_events as f64 / scrape_reps as f64;
    eprintln!(
        "  scrape: p50 {} us over {scrape_reps} reps, {events_per_scrape:.0} events/scrape",
        scrape_p50 / 1_000
    );

    // Part 3: the checked-in merged trace artifact.
    let doc = merged_trace_window(&cluster, &mut router, &keys);
    std::fs::write(&args.trace_out, &doc).expect("write merged trace");
    eprintln!("  wrote {} ({} bytes, Perfetto-loadable)", args.trace_out, doc.len());
    viz_telemetry::flight::configure(viz_telemetry::flight::FlightConfig::default());
    viz_telemetry::set_enabled(false);
    viz_telemetry::reset();

    let json_out = format!(
        r#"{{
  "bench": "trace",
  "provenance": "Measured on a shared container by building this file and the real workspace sources directly with rustc against minimal shims (cargo cannot reach a registry there); absolute ns values are noisy there, the ratios are the signal. Regenerate in a normal environment with `cargo run --release -p viz-bench --bin trace`.",
  "per_event": {{
    "reps": {reps},
    "requests_per_rep": {n},
    "off_p50_ns_per_op": {off_ns:.2},
    "off_traced_p50_ns_per_op": {off_traced_ns:.2},
    "on_p50_ns_per_op": {on_ns:.2},
    "on_traced_p50_ns_per_op": {on_traced_ns:.2},
    "event_cost_ns": {event_cost:.2},
    "event_cost_traced_ns": {event_cost_traced:.2},
    "gate_off_traced_ratio": {gate_off_ratio:.4},
    "on_path_traced_ratio": {traced_ratio:.4}
  }},
  "chaos_4node": {{
    "demand_blocks": {demand_blocks},
    "demand_errors": {demand_errors},
    "flight_triggers": {triggers},
    "flight_dump_events": {dump_events}
  }},
  "scrape": {{
    "nodes": 4,
    "reps": {scrape_reps},
    "p50_ns": {scrape_p50},
    "events_per_scrape": {events_per_scrape:.1}
  }},
  "merged_trace_bytes": {trace_bytes}
}}
"#,
        demand_blocks = report.demand_blocks,
        demand_errors = report.demand_errors,
        triggers = report.triggers,
        dump_events = report.dump_events,
        trace_bytes = doc.len(),
    );
    std::fs::write(&args.out, &json_out).expect("write results");
    println!("{json_out}");
    eprintln!("wrote {}", args.out);

    // The contract the issue sets: a trace context must not disturb the
    // gate-off path, and must stay within 1.2x on the gate-on path.
    // Bounds are loose for noisy shared machines; the JSON records the
    // precise numbers.
    assert!(gate_off_ratio < 1.15, "gate-off cost moved with trace ctx: {gate_off_ratio:.3}");
    assert!(traced_ratio < 1.2, "traced on-path exceeded 1.2x: {traced_ratio:.3}");
}
