//! Reuse-distance analysis of the exploration workloads (extension):
//! Observation 1 made quantitative. Computes the Mattson profile of each
//! path family's demand trace and prints the LRU miss curve — the exact
//! miss rate for EVERY cache size from one pass — which is how the
//! cache-ratio choices of §V-A can be derived from a trace instead of
//! guessed.

use viz_bench::{Env, Opts};
use viz_core::{demand_trace, ReuseProfile, Table};
use viz_volume::DatasetKind;

fn main() {
    let opts = Opts::from_env();
    let env = Env::new(DatasetKind::Ball3d, opts.scale, 2048, opts.seed);
    let nb = env.layout.num_blocks();

    let workloads: Vec<(String, Vec<viz_geom::CameraPose>)> = vec![
        ("spherical 1deg".into(), env.spherical_path(1.0, opts.steps)),
        ("spherical 10deg".into(), env.spherical_path(10.0, opts.steps)),
        ("random 5-10deg".into(), env.random_path(5.0, 10.0, opts.steps, opts.seed ^ 0x5)),
        ("random 25-30deg".into(), env.random_path(25.0, 30.0, opts.steps, opts.seed ^ 0x5)),
    ];

    let mut t = Table::new(
        "reuse",
        "Reuse-distance profiles of exploration traces (3d_ball, 2048 blocks)",
        "cache size (fraction of blocks)",
        "LRU miss rate",
    );
    let fractions = [0.05, 0.1, 0.15, 0.2, 0.25, 0.35, 0.5, 0.75, 1.0];

    let mut summaries = Vec::new();
    let mut rows: Vec<Vec<(String, f64)>> = vec![Vec::new(); fractions.len()];
    for (name, poses) in &workloads {
        let trace = demand_trace(&env.layout, poses);
        let profile = ReuseProfile::compute(&trace);
        for (i, &f) in fractions.iter().enumerate() {
            let cap = ((nb as f64 * f).round() as usize).max(1);
            rows[i].push((name.clone(), profile.lru_miss_rate(cap)));
        }
        summaries.push(format!(
            "{name}: {} accesses, {} distinct blocks, mean reuse distance {:.1}",
            profile.total,
            profile.cold,
            profile.mean_distance().unwrap_or(0.0)
        ));
        eprintln!("reuse: {name} done");
    }
    for (i, &f) in fractions.iter().enumerate() {
        t.push(format!("{f:.2}"), rows[i].clone());
    }
    opts.emit(&t);
    println!();
    for s in summaries {
        println!("{s}");
    }
    println!(
        "\nThe knee of each curve is the working-set size; the paper's DRAM tier\n\
         (25% of blocks at ratio 0.5) sits near the knee of the small-step paths —\n\
         exactly the regime where prediction pays."
    );
}
