//! Telemetry benchmark: trace a deterministic storm run end-to-end and
//! measure the tracing overhead on the fetch hot path.
//!
//! Two parts:
//!
//! 1. **Trace**: a 100-step storm run — demand fetches under a frame
//!    budget through the real [`viz_fetch::FetchEngine`] over a seeded
//!    [`viz_fetch::FaultInjectingSource`], prefetch of the predicted next
//!    window, and a simulated DRAM/SSD hierarchy walk — with telemetry
//!    enabled. The drained trace is exported as Chrome trace-event JSON
//!    (loadable in Perfetto / `chrome://tracing`), validated with the
//!    crate's own JSON checker, and required to contain `source_read`,
//!    `fetch_retry`, `cache_evict` and `frame` events.
//! 2. **Overhead**: the same fetch hot paths timed with the global gate
//!    off and on; the p50 delta is the price of tracing.
//!
//! Results are printed and written as JSON (default `BENCH_telemetry.json`;
//! `--out PATH` overrides, `--trace PATH` moves the Chrome trace, `--fast`
//! shrinks the overhead reps for smoke runs).

use std::sync::Arc;
use std::time::{Duration, Instant};
use viz_cache::{AccessClass, Hierarchy, PolicyKind};
use viz_core::degraded::fetch_frame;
use viz_fetch::{
    BlockPool, FaultConfig, FaultInjectingSource, FetchConfig, FetchEngine, InstrumentedSource,
};
use viz_volume::{BlockId, BlockKey, BlockSource, MemBlockStore};

struct Args {
    fast: bool,
    out: String,
    trace_out: String,
}

fn parse_args() -> Args {
    let mut a = Args {
        fast: false,
        out: "BENCH_telemetry.json".to_string(),
        trace_out: "trace_telemetry.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fast" => a.fast = true,
            "--out" => {
                if let Some(p) = it.next() {
                    a.out = p;
                }
            }
            "--trace" => {
                if let Some(p) = it.next() {
                    a.trace_out = p;
                }
            }
            "--help" | "-h" => {
                eprintln!("options: --fast  --out PATH  --trace PATH");
                std::process::exit(0);
            }
            other => eprintln!("ignoring unknown option {other:?}"),
        }
    }
    a
}

fn key(i: usize) -> BlockKey {
    BlockKey::scalar(BlockId(i as u32))
}

fn store_with(blocks: usize, block_len: usize) -> Arc<MemBlockStore> {
    let s = MemBlockStore::new();
    for i in 0..blocks {
        s.insert(key(i), vec![i as f32; block_len]);
    }
    Arc::new(s)
}

/// The 100-step storm run, traced. Returns the drained trace.
fn storm_trace_run(frames: usize) -> viz_telemetry::Trace {
    let window = 6usize;
    let blocks = frames + 2 * window;
    let slow: Arc<dyn BlockSource> =
        Arc::new(InstrumentedSource::new(store_with(blocks, 512), Duration::from_micros(120)));
    let faulty = Arc::new(FaultInjectingSource::new(slow, FaultConfig::storm(0x7E1E_5EED)));
    let pool = Arc::new(BlockPool::new());
    let engine = FetchEngine::spawn(
        faulty,
        pool,
        FetchConfig { workers: 2, queue_cap: blocks * 2, ..FetchConfig::default() },
    );

    // A small simulated DRAM/SSD hierarchy rides along so the trace also
    // carries the cache side of the lifecycle (hits, misses, evictions).
    let mut hier: Hierarchy<BlockId> = Hierarchy::paper_default(blocks, 0.3, PolicyKind::Lru, 4096);

    viz_telemetry::reset();
    viz_telemetry::set_enabled(true);
    for f in 0..frames {
        engine.bump_generation();
        let ks: Vec<BlockKey> = (f..f + window).map(key).collect();
        let report = fetch_frame(&engine, &ks, Duration::from_millis(10));
        assert_eq!(report.requested, window);
        for i in f + window..f + 2 * window {
            engine.prefetch(key(i), (blocks - i) as f64);
        }
        for i in f..f + window {
            hier.fetch(BlockId(i as u32), AccessClass::Demand);
        }
    }
    engine.sync();
    engine.shutdown();
    viz_telemetry::set_enabled(false);
    viz_telemetry::drain()
}

/// Time `reps` repetitions of a fetch workload; returns the sorted per-rep
/// durations in nanoseconds.
///
/// `service == false`: `n` demand requests for resident blocks per rep —
/// the cheapest operation the engine has (one pool probe), so the measured
/// on/off delta is the *per-event* cost of tracing, the worst possible
/// relative case.
///
/// `service == true`: clear the pool and service all `blocks` prefetches
/// through the deterministic engine per rep — the realistic fetch path
/// (queue, dispatch, source read, publish) over a source with a modest
/// 10 µs read latency, where tracing cost should disappear into the work
/// (`n` is ignored).
fn hot_path_reps(reps: usize, n: usize, service: bool) -> Vec<u64> {
    let blocks = 64usize;
    let pool = Arc::new(BlockPool::new());
    let source: Arc<dyn BlockSource> = if service {
        Arc::new(InstrumentedSource::new(store_with(blocks, 256), Duration::from_micros(10)))
    } else {
        store_with(blocks, 256)
    };
    let engine = FetchEngine::spawn(source, pool.clone(), FetchConfig::deterministic());
    // Make everything resident once.
    for i in 0..blocks {
        engine.prefetch(key(i), 1.0);
    }
    engine.run_until_idle();

    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = if service {
            pool.clear();
            let t0 = Instant::now();
            for i in 0..blocks {
                engine.prefetch(key(i), 1.0);
            }
            engine.run_until_idle();
            t0
        } else {
            let t0 = Instant::now();
            for j in 0..n {
                let t = engine.request(key(j % blocks));
                t.try_wait()
                    .unwrap_or_else(|_| panic!("resident block resolves immediately"))
                    .expect("read ok");
            }
            t0
        };
        times.push(t0.elapsed().as_nanos() as u64);
        // Keep the rings fresh so ring-full drops never skew a rep.
        if viz_telemetry::enabled() {
            viz_telemetry::drain();
        }
    }
    engine.shutdown();
    times.sort_unstable();
    times
}

fn p50(sorted: &[u64]) -> u64 {
    sorted[sorted.len() / 2]
}

fn main() {
    let args = parse_args();
    let frames = 100usize;
    let (reps, n) = if args.fast { (30, 2_000) } else { (200, 10_000) };

    eprintln!("telemetry: tracing a {frames}-step storm run");
    let trace = storm_trace_run(frames);
    let chrome = trace.chrome_trace_json();
    viz_telemetry::json::validate(&chrome).expect("chrome trace must be valid JSON");
    let summary = trace.summary_json();
    viz_telemetry::json::validate(&summary).expect("summary must be valid JSON");

    let count_of = |label: &str| trace.events.iter().filter(|e| e.kind.label() == label).count();
    let (reads, retries, evicts, frames_seen) = (
        count_of("source_read"),
        count_of("fetch_retry"),
        count_of("cache_evict"),
        count_of("frame"),
    );
    eprintln!(
        "  {} events ({} dropped): {reads} source reads, {retries} retries, {evicts} evictions, {frames_seen} frames",
        trace.events.len(),
        trace.dropped
    );
    assert!(reads > 0, "trace must contain source_read spans");
    assert!(retries > 0, "storm run must contain fetch_retry events");
    assert!(evicts > 0, "trace must contain cache_evict events");
    assert!(frames_seen >= frames, "one frame span per step");

    std::fs::write(&args.trace_out, &chrome).expect("write chrome trace");
    eprintln!("  wrote {} ({} bytes, Perfetto-loadable)", args.trace_out, chrome.len());

    // Worst case: resident requests are ~tens of ns each, so the on/off p50
    // delta divided by n is the absolute per-event cost of tracing.
    eprintln!("telemetry: per-event cost, {reps} reps x {n} resident requests");
    viz_telemetry::set_enabled(false);
    viz_telemetry::reset();
    let off = hot_path_reps(reps, n, false);
    viz_telemetry::set_enabled(true);
    let on = hot_path_reps(reps, n, false);
    viz_telemetry::set_enabled(false);
    viz_telemetry::reset();

    let (off_p50, on_p50) = (p50(&off), p50(&on));
    let per_op_off = off_p50 as f64 / n as f64;
    let per_op_on = on_p50 as f64 / n as f64;
    let per_event_ns = (per_op_on - per_op_off).max(0.0);
    eprintln!(
        "  off p50 {per_op_off:.1} ns/op, on p50 {per_op_on:.1} ns/op, ~{per_event_ns:.1} ns/event"
    );

    // Realistic case: full service of 64 cold prefetches per rep. Tracing
    // should vanish into the queue/dispatch/read/publish work here.
    eprintln!("telemetry: service-path overhead, {reps} reps x 64 cold prefetches");
    viz_telemetry::set_enabled(false);
    viz_telemetry::reset();
    let off_svc = hot_path_reps(reps, 0, true);
    viz_telemetry::set_enabled(true);
    let on_svc = hot_path_reps(reps, 0, true);
    viz_telemetry::set_enabled(false);
    viz_telemetry::reset();

    let (off_svc_p50, on_svc_p50) = (p50(&off_svc), p50(&on_svc));
    let svc_ratio = on_svc_p50 as f64 / off_svc_p50.max(1) as f64;
    eprintln!("  off p50 {off_svc_p50} ns/rep, on p50 {on_svc_p50} ns/rep, ratio {svc_ratio:.3}");

    let json = format!(
        r#"{{
  "bench": "telemetry",
  "provenance": "Measured on a shared container by building this file and the real workspace sources directly with rustc against minimal shims (cargo cannot reach a registry there); absolute ns/op values are noisy there, the on/off ratio is the signal. Regenerate in a normal environment with `cargo run --release -p viz-bench --bin telemetry`.",
  "storm_trace": {{
    "frames": {frames},
    "events": {events},
    "dropped": {dropped},
    "source_reads": {reads},
    "retries": {retries},
    "cache_evicts": {evicts},
    "frame_spans": {frames_seen},
    "chrome_trace_bytes": {chrome_bytes}
  }},
  "per_event": {{
    "reps": {reps},
    "requests_per_rep": {n},
    "off_p50_ns_per_op": {per_op_off:.2},
    "on_p50_ns_per_op": {per_op_on:.2},
    "event_cost_ns": {per_event_ns:.2}
  }},
  "service_path": {{
    "reps": {reps},
    "blocks_per_rep": 64,
    "off_p50_ns_per_rep": {off_svc_p50},
    "on_p50_ns_per_rep": {on_svc_p50},
    "on_off_ratio_p50": {svc_ratio:.4}
  }}
}}
"#,
        events = trace.events.len(),
        dropped = trace.dropped,
        chrome_bytes = chrome.len(),
    );
    std::fs::write(&args.out, &json).expect("write results");
    println!("{json}");
    eprintln!("wrote {}", args.out);

    // Tracing must stay cheap. A single event push is bounded (no bound on
    // the microbench *ratio* — a resident probe is only ~tens of ns, so any
    // event push looks huge relatively), and on the realistic service path
    // the on/off ratio must be near 1. Bounds are deliberately loose for
    // noisy shared machines; the JSON records the precise numbers.
    assert!(per_event_ns < 2_000.0, "per-event tracing cost ballooned: {per_event_ns:.1} ns");
    assert!(svc_ratio < 1.25, "telemetry-on service path regressed: ratio {svc_ratio:.3}");
}
