//! Chaos benchmark: seeded fault schedules driven through the
//! deterministic in-process [`TestCluster`], reporting the two numbers
//! the resilience layer is judged on — how fast failures are *detected*
//! (router down-mark or peer suspicion) and how fast demand latency
//! *recovers* once the fault is repaired.
//!
//! A steady run with no faults first establishes the baseline frame
//! latency over the identical rotating demand window. Then, for each
//! seed, [`ChaosPlan::seeded`] generates a survivable schedule of
//! crashes, restarts, fabric partitions, slow storage, and corrupted
//! reply frames, and [`run_plan`] drives it step by step (one membership
//! round plus one routed demand frame per step). The acceptance bars:
//! zero demand errors under every schedule, every fault detected within
//! a few steps, and the quiet-tail demand latency back within 2x of the
//! steady baseline.
//!
//! Results print and land as JSON (default `BENCH_chaos.json`; `--out
//! PATH` overrides, `--fast` shrinks steps and seeds for CI smoke runs).

use std::time::Instant;
use viz_cluster::chaos::run_plan;
use viz_cluster::{
    ChaosAction, ChaosEvent, ChaosOptions, ChaosPlan, NodeId, ShardStrategy, TestCluster,
};

struct Args {
    fast: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut a = Args { fast: false, out: "BENCH_chaos.json".to_string() };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fast" => a.fast = true,
            "--out" => {
                if let Some(p) = it.next() {
                    a.out = p;
                }
            }
            "--help" | "-h" => {
                eprintln!("options: --fast  --out PATH");
                std::process::exit(0);
            }
            other => eprintln!("ignoring unknown option {other:?}"),
        }
    }
    a
}

const NODES: u32 = 4;
/// Below this the "steady baseline" is an in-process no-op measured in
/// single-digit microseconds, and a 2x ratio measures scheduler noise
/// rather than recovery; the bar uses `max(steady_p99, floor)`.
const STEADY_FLOOR_MS: f64 = 0.25;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct Summary {
    p50_ms: f64,
    p99_ms: f64,
}

fn summarize(times_s: &[f64]) -> Summary {
    let mut sorted = times_s.to_vec();
    sorted.sort_by(f64::total_cmp);
    Summary { p50_ms: percentile(&sorted, 0.50) * 1e3, p99_ms: percentile(&sorted, 0.99) * 1e3 }
}

fn steps_summary(steps: &[u32]) -> (f64, f64, u32) {
    let mut sorted: Vec<f64> = steps.iter().map(|&s| f64::from(s)).collect();
    sorted.sort_by(f64::total_cmp);
    let max = steps.iter().copied().max().unwrap_or(0);
    (percentile(&sorted, 0.50), percentile(&sorted, 0.99), max)
}

fn join(v: &[u32]) -> String {
    v.iter().map(u32::to_string).collect::<Vec<_>>().join(", ")
}

/// The no-fault baseline: the same driver loop (membership round plus
/// one routed demand frame per step) with an empty schedule. A single
/// `Unslow` no-op pins the step count; the first half of the run warms
/// the block pools, the second half is the measured steady state.
fn run_steady(steps: u32, opts: &ChaosOptions) -> Summary {
    let plan = ChaosPlan {
        events: vec![ChaosEvent { step: steps - 9, action: ChaosAction::Unslow(NodeId(0)) }],
    };
    let mut cluster = TestCluster::new(NODES, ShardStrategy::Ring);
    let mut router = cluster.router("chaos-steady");
    let report = run_plan(&mut cluster, &mut router, &plan, opts);
    assert_eq!(report.demand_errors, 0, "steady run must not see demand errors");
    summarize(&report.frame_wall_s[report.frame_wall_s.len() / 2..])
}

struct SeedRun {
    seed: u64,
    steps: u32,
    wall_s: f64,
    demand_blocks: u64,
    demand_errors: u64,
    detections: Vec<u32>,
    recoveries: Vec<u32>,
    tail: Summary,
}

/// One seeded schedule against a fresh cluster. The last 8 steps are the
/// plan's quiet tail — every repair has landed, so their latency is the
/// "recovered" number the 2x bar compares against steady state.
fn run_seed(seed: u64, steps: u32, opts: &ChaosOptions) -> SeedRun {
    let plan = ChaosPlan::seeded(seed, NODES, steps);
    let faults = plan
        .events
        .iter()
        .filter(|e| {
            matches!(
                e.action,
                ChaosAction::Crash(_) | ChaosAction::Isolate(_) | ChaosAction::Corrupt(_)
            )
        })
        .count();
    let repairs = plan.events.len()
        - faults
        - plan
            .events
            .iter()
            .filter(|e| matches!(e.action, ChaosAction::Slow(..) | ChaosAction::Unslow(_)))
            .count();
    let mut cluster = TestCluster::new(NODES, ShardStrategy::Ring);
    let mut router = cluster.router("chaos");
    let t0 = Instant::now();
    let report = run_plan(&mut cluster, &mut router, &plan, opts);
    let wall_s = t0.elapsed().as_secs_f64();
    assert_eq!(report.demand_errors, 0, "seed {seed}: chaos demand must always deliver");
    assert_eq!(
        report.detections.len(),
        faults,
        "seed {seed}: every unreachability fault must be detected"
    );
    assert_eq!(
        report.recoveries.len(),
        repairs,
        "seed {seed}: every repaired node must be re-admitted"
    );
    let tail = summarize(&report.frame_wall_s[report.frame_wall_s.len().saturating_sub(8)..]);
    SeedRun {
        seed,
        steps: report.steps,
        wall_s,
        demand_blocks: report.demand_blocks,
        demand_errors: report.demand_errors,
        detections: report.detections,
        recoveries: report.recoveries,
        tail,
    }
}

fn main() {
    let args = parse_args();
    let seeds: &[u64] = if args.fast { &[11] } else { &[11, 17, 23] };
    let steps: u32 = if args.fast { 40 } else { 120 };
    let steady_steps: u32 = if args.fast { 24 } else { 48 };
    let opts = ChaosOptions::default();
    eprintln!(
        "chaos: {NODES} nodes, {} seeds x {steps} steps, {} keys x {} demand/step",
        seeds.len(),
        opts.key_space,
        opts.demand_per_step
    );

    let steady = run_steady(steady_steps, &opts);
    eprintln!(
        "  steady baseline: p50 {:.3} ms p99 {:.3} ms per frame",
        steady.p50_ms, steady.p99_ms
    );

    let runs: Vec<SeedRun> = seeds.iter().map(|&s| run_seed(s, steps, &opts)).collect();
    let mut all_detections = Vec::new();
    let mut all_recoveries = Vec::new();
    let mut tails_ms = Vec::new();
    for r in &runs {
        eprintln!(
            "  seed {}: {} steps ({:.2} s), {} blocks 0 errors, detections [{}] recoveries [{}], \
             tail p99 {:.3} ms",
            r.seed,
            r.steps,
            r.wall_s,
            r.demand_blocks,
            join(&r.detections),
            join(&r.recoveries),
            r.tail.p99_ms
        );
        all_detections.extend_from_slice(&r.detections);
        all_recoveries.extend_from_slice(&r.recoveries);
        tails_ms.push(r.tail.p99_ms);
    }
    let (det_p50, det_p99, det_max) = steps_summary(&all_detections);
    let (rec_p50, rec_p99, rec_max) = steps_summary(&all_recoveries);
    // The asserted recovery number is the *median* per-seed tail p99 —
    // one scheduler spike in one seed's 8-frame tail must not flap the
    // run — with the per-seed values all in the JSON.
    tails_ms.sort_by(f64::total_cmp);
    let recovered_p99_ms = tails_ms[tails_ms.len() / 2];
    let recovered_worst_ms = tails_ms[tails_ms.len() - 1];
    eprintln!(
        "  detection steps p50 {det_p50:.1} p99 {det_p99:.1} max {det_max}; re-admission steps \
         p50 {rec_p50:.1} p99 {rec_p99:.1} max {rec_max}; recovered p99 {recovered_p99_ms:.3} ms \
         (worst seed {recovered_worst_ms:.3} ms)"
    );

    assert!(!all_detections.is_empty(), "plans must inject unreachability faults");
    assert!(det_max <= 3, "failure detection took {det_max} steps (bar: 3)");
    assert!(rec_max <= 4, "re-admission took {rec_max} steps (bar: 4)");
    if !args.fast {
        // The recovery bar: once every fault is repaired, demand latency
        // must be back within 2x of the no-fault baseline.
        let bar = 2.0 * steady.p99_ms.max(STEADY_FLOOR_MS);
        assert!(
            recovered_p99_ms <= bar,
            "recovered tail p99 {recovered_p99_ms:.3} ms blew past the bar {bar:.3} ms"
        );
    }

    let entries: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                r#"    {{
      "seed": {seed},
      "steps": {steps},
      "wall_s": {wall:.3},
      "demand_blocks": {blocks},
      "demand_errors": {errs},
      "detection_steps": [{det}],
      "recovery_steps": [{rec}],
      "tail_ms": {{ "p50": {tp50:.3}, "p99": {tp99:.3} }}
    }}"#,
                seed = r.seed,
                steps = r.steps,
                wall = r.wall_s,
                blocks = r.demand_blocks,
                errs = r.demand_errors,
                det = join(&r.detections),
                rec = join(&r.recoveries),
                tp50 = r.tail.p50_ms,
                tp99 = r.tail.p99_ms,
            )
        })
        .collect();

    let json = format!(
        r#"{{
  "bench": "chaos",
  "provenance": "Measured on a shared container by building this file and the real workspace sources directly with rustc against offline dependency shims (cargo cannot reach a registry there). The cluster is the deterministic in-process TestCluster (synchronous transports, virtual clock for suspicion deadlines); each step runs one membership round and one routed demand frame, so detection and re-admission are in *steps* (one heartbeat interval each) — the deterministic unit — while frame latencies are wall-clock and carry scheduler noise. A no-fault steady run over the identical demand window sets the baseline; each seeded schedule must deliver every demand block, detect every unreachability fault, re-admit every repaired node, and end its quiet tail within 2x of steady-state p99 (floored at {floor} ms: below that both sides are in-process no-ops and the ratio measures noise). Regenerate with `cargo run --release -p viz-bench --bin chaos`.",
  "operating_point": {{
    "nodes": {nodes},
    "steps_per_seed": {steps},
    "seeds": [{seeds}],
    "demand_per_step": {dps},
    "key_space": {ks},
    "ticks_per_step": {tps},
    "strategy": "ring"
  }},
  "steady_ms": {{ "p50": {sp50:.3}, "p99": {sp99:.3} }},
  "detection_steps": {{ "p50": {det_p50:.1}, "p99": {det_p99:.1}, "max": {det_max} }},
  "recovery_steps": {{ "p50": {rec_p50:.1}, "p99": {rec_p99:.1}, "max": {rec_max} }},
  "recovered_tail_p99_ms": {{ "median_seed": {rec_ms:.3}, "worst_seed": {rec_worst:.3} }},
  "runs": [
{entries}
  ]
}}
"#,
        floor = STEADY_FLOOR_MS,
        nodes = NODES,
        steps = steps,
        seeds = seeds.iter().map(u64::to_string).collect::<Vec<_>>().join(", "),
        dps = opts.demand_per_step,
        ks = opts.key_space,
        tps = opts.ticks_per_step,
        sp50 = steady.p50_ms,
        sp99 = steady.p99_ms,
        rec_ms = recovered_p99_ms,
        rec_worst = recovered_worst_ms,
        entries = entries.join(",\n"),
    );
    std::fs::write(&args.out, &json).expect("write results");
    println!("{json}");
    eprintln!("wrote {}", args.out);
}
