//! Fault-path benchmark: frame times over a camera-path-like demand/
//! prefetch workload, with and without a seeded fault storm.
//!
//! Two identical runs over a latency-injected source: a healthy baseline,
//! and one wrapped in a [`viz_fetch::FaultInjectingSource`] storm (10%
//! transient errors, 5% latency spikes). Each frame demand-fetches its
//! window under a deadline (missing it degrades the frame instead of
//! stalling), prefetches the predicted next window, and bumps the
//! cancellation generation. Reported per run: frame-time p50/p99/mean,
//! degraded-frame count, and the engine's fault counters — the price of
//! the storm is the delta between the two runs.
//!
//! Uses only `viz-fetch` + `viz-volume` + `std` so it can also be built
//! standalone. Results are printed and written as JSON (default
//! `BENCH_faults.json`; `--out PATH` overrides, `--fast` shrinks the
//! workload for smoke runs).

use std::sync::Arc;
use std::time::{Duration, Instant};
use viz_fetch::{
    BlockPool, FaultConfig, FaultInjectingSource, FetchConfig, FetchEngine, FetchMetrics,
    InstrumentedSource,
};
use viz_volume::{BlockId, BlockKey, BlockSource, MemBlockStore};

struct Args {
    fast: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut a = Args { fast: false, out: "BENCH_faults.json".to_string() };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fast" => a.fast = true,
            "--out" => {
                if let Some(p) = it.next() {
                    a.out = p;
                }
            }
            "--help" | "-h" => {
                eprintln!("options: --fast  --out PATH");
                std::process::exit(0);
            }
            other => eprintln!("ignoring unknown option {other:?}"),
        }
    }
    a
}

fn key(i: usize) -> BlockKey {
    BlockKey::scalar(BlockId(i as u32))
}

fn store_with(blocks: usize, block_len: usize) -> Arc<MemBlockStore> {
    let s = MemBlockStore::new();
    for i in 0..blocks {
        s.insert(key(i), vec![i as f32; block_len]);
    }
    Arc::new(s)
}

struct Workload {
    frames: usize,
    window: usize,
    block_len: usize,
    read_delay: Duration,
    frame_budget: Duration,
    /// Simulated render phase; prefetch for the next window overlaps it,
    /// exactly as rendering overlaps I/O in the real pipeline.
    render_time: Duration,
}

struct RunResult {
    frame_times_s: Vec<f64>,
    degraded_frames: usize,
    source_reads: u64,
    injected_errors: u64,
    injected_spikes: u64,
    metrics: FetchMetrics,
}

/// Walk the synthetic camera path once. Per frame: cancel stale
/// predictions, demand-fetch the visible window under the frame budget
/// (deadline misses degrade the frame, they never stall it), prefetch the
/// predicted next window, and time the demand phase.
fn run_path(w: &Workload, storm: Option<FaultConfig>) -> RunResult {
    let blocks = w.frames + 2 * w.window;
    let slow: Arc<dyn BlockSource> =
        Arc::new(InstrumentedSource::new(store_with(blocks, w.block_len), w.read_delay));
    let faulty = storm.map(|cfg| Arc::new(FaultInjectingSource::new(slow.clone(), cfg)));
    let source: Arc<dyn BlockSource> = match &faulty {
        Some(f) => f.clone(),
        None => slow,
    };
    let pool = Arc::new(BlockPool::new());
    let engine = FetchEngine::spawn(
        source,
        pool.clone(),
        FetchConfig { workers: 4, queue_cap: blocks * 2, ..FetchConfig::default() },
    );

    let mut frame_times_s = Vec::with_capacity(w.frames);
    let mut degraded_frames = 0usize;
    for f in 0..w.frames {
        engine.bump_generation();
        let t0 = Instant::now();
        let mut degraded = false;
        for i in f..f + w.window {
            let remaining = w.frame_budget.saturating_sub(t0.elapsed());
            if engine.get_deadline(key(i), remaining).is_err() {
                // Deadline miss or exhausted retries: the frame renders
                // without this block; its read stays in flight and lands
                // for a later frame.
                degraded = true;
            }
        }
        degraded_frames += usize::from(degraded);
        for i in f + w.window..f + 2 * w.window {
            engine.prefetch(key(i), (blocks - i) as f64);
        }
        // "Render" while the workers pull the next window in the background.
        std::thread::sleep(w.render_time);
        frame_times_s.push(t0.elapsed().as_secs_f64());
    }

    // Zero engine stalls: the queue drains and in-flight reads finish.
    engine.sync();
    let metrics = engine.shutdown();
    assert_eq!(metrics.queue_depth, 0, "queue must drain");
    assert_eq!(metrics.inflight, 0, "no reads stuck in flight");

    let (injected_errors, injected_spikes, source_reads) = match &faulty {
        Some(f) => (f.injected_errors(), f.injected_spikes(), f.reads()),
        None => (0, 0, 0),
    };
    RunResult { frame_times_s, degraded_frames, source_reads, injected_errors, injected_spikes, metrics }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct Summary {
    p50_ms: f64,
    p99_ms: f64,
    mean_ms: f64,
    max_ms: f64,
}

fn summarize(times: &[f64]) -> Summary {
    let mut sorted = times.to_vec();
    sorted.sort_by(f64::total_cmp);
    Summary {
        p50_ms: percentile(&sorted, 0.50) * 1e3,
        p99_ms: percentile(&sorted, 0.99) * 1e3,
        mean_ms: sorted.iter().sum::<f64>() / sorted.len() as f64 * 1e3,
        max_ms: sorted.last().copied().unwrap_or(0.0) * 1e3,
    }
}

fn main() {
    let args = parse_args();
    let w = if args.fast {
        Workload {
            frames: 60,
            window: 8,
            block_len: 512,
            read_delay: Duration::from_micros(150),
            frame_budget: Duration::from_millis(25),
            render_time: Duration::from_millis(1),
        }
    } else {
        Workload {
            frames: 200,
            window: 8,
            block_len: 4096,
            read_delay: Duration::from_micros(300),
            frame_budget: Duration::from_millis(50),
            render_time: Duration::from_millis(2),
        }
    };
    eprintln!(
        "faults: {} frames x {}-block window, {} us reads, {} ms render, {} ms frame budget",
        w.frames,
        w.window,
        w.read_delay.as_micros(),
        w.render_time.as_millis(),
        w.frame_budget.as_millis()
    );

    let base = run_path(&w, None);
    let bs = summarize(&base.frame_times_s);
    eprintln!(
        "  baseline: p50 {:.2} ms, p99 {:.2} ms, mean {:.2} ms, {} degraded frames",
        bs.p50_ms, bs.p99_ms, bs.mean_ms, base.degraded_frames
    );

    let storm = run_path(&w, Some(FaultConfig::storm(0xBADD_5EED)));
    let ss = summarize(&storm.frame_times_s);
    eprintln!(
        "  storm:    p50 {:.2} ms, p99 {:.2} ms, mean {:.2} ms, {} degraded frames",
        ss.p50_ms, ss.p99_ms, ss.mean_ms, storm.degraded_frames
    );
    eprintln!(
        "  storm faults: {} errors + {} spikes injected over {} reads -> {} retries, {} surfaced errors, {} deadline misses, breaker {:?}",
        storm.injected_errors,
        storm.injected_spikes,
        storm.source_reads,
        storm.metrics.retries,
        storm.metrics.errors,
        storm.metrics.deadline_misses,
        storm.metrics.breaker_state,
    );

    let p50_overhead = if bs.p50_ms > 0.0 { ss.p50_ms / bs.p50_ms } else { 0.0 };
    let json = format!(
        r#"{{
  "bench": "faults",
  "provenance": "Measured on a single-core container by building this file and the real crates/fetch sources directly with rustc against a minimal viz-volume shim (cargo cannot reach a registry there); workers overlap injected sleep latency, so relative storm overhead is representative. Regenerate in a normal environment with `cargo run --release -p viz-bench --bin faults`.",
  "operating_point": {{
    "frames": {frames},
    "window": {window},
    "block_len_f32": {block_len},
    "read_delay_us": {delay_us},
    "render_time_ms": {render_ms},
    "frame_budget_ms": {budget_ms},
    "storm": {{ "error_rate": 0.10, "spike_rate": 0.05, "spike_us": 500 }}
  }},
  "baseline_frame_ms": {{
    "p50": {b50:.3}, "p99": {b99:.3}, "mean": {bmean:.3}, "max": {bmax:.3},
    "degraded_frames": {bdeg}
  }},
  "storm_frame_ms": {{
    "p50": {s50:.3}, "p99": {s99:.3}, "mean": {smean:.3}, "max": {smax:.3},
    "degraded_frames": {sdeg}
  }},
  "storm_faults": {{
    "source_reads": {sreads},
    "injected_errors": {serr},
    "injected_spikes": {sspikes},
    "retries": {retries},
    "surfaced_errors": {surfaced},
    "deadline_misses": {dmiss},
    "breaker_opens": {bopens}
  }},
  "p50_overhead_storm_vs_baseline": {p50_overhead:.3}
}}
"#,
        frames = w.frames,
        window = w.window,
        block_len = w.block_len,
        delay_us = w.read_delay.as_micros(),
        render_ms = w.render_time.as_millis(),
        budget_ms = w.frame_budget.as_millis(),
        b50 = bs.p50_ms,
        b99 = bs.p99_ms,
        bmean = bs.mean_ms,
        bmax = bs.max_ms,
        bdeg = base.degraded_frames,
        s50 = ss.p50_ms,
        s99 = ss.p99_ms,
        smean = ss.mean_ms,
        smax = ss.max_ms,
        sdeg = storm.degraded_frames,
        sreads = storm.source_reads,
        serr = storm.injected_errors,
        sspikes = storm.injected_spikes,
        retries = storm.metrics.retries,
        surfaced = storm.metrics.errors,
        dmiss = storm.metrics.deadline_misses,
        bopens = storm.metrics.breaker_opens,
    );
    std::fs::write(&args.out, &json).expect("write results");
    println!("{json}");
    eprintln!("wrote {}", args.out);

    // The storm must degrade gracefully, not collapse: every frame
    // completed (the loop above ran to the end), the retry layer absorbed
    // injected faults, and no frame blew past its budget by more than one
    // in-flight read abandonment.
    assert!(storm.injected_errors > 0, "storm must inject faults");
    assert!(storm.metrics.retries > 0, "retries must absorb transient faults");
    let cap_ms = (w.frame_budget + w.render_time).as_secs_f64() * 1e3;
    assert!(
        ss.max_ms <= cap_ms * 2.0,
        "a frame stalled far past its budget: {:.2} ms vs {cap_ms:.2} ms cap",
        ss.max_ms
    );
}
