//! Structural check for checked-in Chrome-trace artifacts: each file
//! named on the command line must parse under the exporters' own JSON
//! validator and look like a trace-event document. Exits non-zero on
//! the first failure, so CI catches a hand-edited or truncated artifact.

fn main() {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: validate_traces FILE.json [FILE.json ...]");
        std::process::exit(2);
    }
    for path in &files {
        let doc = match std::fs::read_to_string(path) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("{path}: unreadable: {e}");
                std::process::exit(1);
            }
        };
        if let Err(e) = viz_telemetry::json::validate(&doc) {
            eprintln!("{path}: invalid JSON: {e}");
            std::process::exit(1);
        }
        if !doc.contains("\"traceEvents\"") {
            eprintln!("{path}: not a Chrome trace-event document");
            std::process::exit(1);
        }
        println!("{path}: ok ({} bytes)", doc.len());
    }
}
