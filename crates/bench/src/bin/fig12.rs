//! Figure 12 — miss rate of FIFO, LRU and the app-aware policy (OPT)
//! across (a) a spherical camera path and (b) a random camera path.
//!
//! Paper setup: `3d_ball` divided into 2048 blocks, 400 camera positions.
//! Expected shape: OPT ≈ ¼ of the baselines' miss rate at 1° (a); on
//! random paths OPT ≈ ⅓ of FIFO and ½ of LRU (b); miss rates grow with the
//! per-step view change for every policy.

use viz_bench::{Env, Opts};
use viz_cache::PolicyKind;
use viz_core::{run_session, AppAwareConfig, Strategy, Table};
use viz_volume::DatasetKind;

fn main() {
    let opts = Opts::from_env();
    let env = Env::new(DatasetKind::Ball3d, opts.scale, 2048, opts.seed);
    let cfg = env.session_config(0.5);
    let tv = env.visible_table(opts.samples, 0.25);
    let sigma = env.sigma();

    let strategies = [
        Strategy::Baseline(PolicyKind::Fifo),
        Strategy::Baseline(PolicyKind::Lru),
        Strategy::AppAware(AppAwareConfig::paper(sigma)),
    ];

    // (a) spherical path sweep.
    let mut a = Table::new(
        "fig12a",
        "Fig. 12(a): miss rate across a spherical path (3d_ball, 2048 blocks)",
        "deg/step",
        "miss rate",
    );
    for &deg in &[1.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 45.0] {
        let path = env.spherical_path(deg, opts.steps);
        let mut vals = Vec::new();
        for s in &strategies {
            let tables = matches!(s, Strategy::AppAware(_)).then_some((&tv, &env.importance));
            let r = run_session(&cfg, &env.layout, s, &path, tables);
            vals.push((r.strategy.clone(), r.miss_rate));
        }
        eprintln!("fig12a {deg}deg done");
        a.push(format!("{deg}"), vals);
    }

    // (b) random path sweep.
    let mut b = Table::new(
        "fig12b",
        "Fig. 12(b): miss rate across a random path (3d_ball, 2048 blocks)",
        "deg range",
        "miss rate",
    );
    for &(lo, hi) in &[
        (0.0, 5.0),
        (5.0, 10.0),
        (10.0, 15.0),
        (15.0, 20.0),
        (20.0, 25.0),
        (25.0, 30.0),
        (30.0, 35.0),
    ] {
        let path = env.random_path(lo, hi, opts.steps, opts.seed ^ 0x12);
        let mut vals = Vec::new();
        for s in &strategies {
            let tables = matches!(s, Strategy::AppAware(_)).then_some((&tv, &env.importance));
            let r = run_session(&cfg, &env.layout, s, &path, tables);
            vals.push((r.strategy.clone(), r.miss_rate));
        }
        eprintln!("fig12b {lo}-{hi}deg done");
        b.push(format!("{lo}-{hi}"), vals);
    }

    opts.emit(&a);
    println!();
    opts.emit(&b);
}
