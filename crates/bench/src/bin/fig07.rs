//! Figure 7 — miss rate (a) and I/O time (b) vs. the number of camera
//! sampling positions, on all four datasets.
//!
//! Paper setup: random camera path with view-direction changes of 10–15°,
//! 400 positions; sampling budgets swept over {3240, 8640, 25920, 72000,
//! 108000}. Expected shape: miss rate monotonically decreases with more
//! samples (7a) while I/O(+lookup) time is U-shaped with its minimum at
//! 25,920 (7b) because look-up overhead grows with table size.

use viz_bench::{Env, Opts};
use viz_core::{run_session, AppAwareConfig, Metric, Strategy, Table};
use viz_volume::DatasetKind;

fn main() {
    let opts = Opts::from_env();
    // The paper's sweep, scaled down proportionally when --samples shrinks
    // the budget (e.g. --fast).
    let full = [3_240usize, 8_640, 25_920, 72_000, 108_000];
    let budgets: Vec<usize> = if opts.samples >= 3_240 {
        full.to_vec()
    } else {
        full.iter().map(|s| (s * opts.samples / 25_920).max(16)).collect()
    };

    let mut miss = Table::new(
        "fig7a",
        "Fig. 7(a): miss rate vs sampling positions (random path 10-15 deg)",
        "samples",
        "miss rate",
    );
    let mut io = Table::new(
        "fig7b",
        "Fig. 7(b): I/O time vs sampling positions (random path 10-15 deg)",
        "samples",
        "I/O + lookup time (s)",
    );

    for kind in DatasetKind::ALL {
        let env = Env::new(kind, opts.scale, 1024, opts.seed);
        let path = env.random_path(10.0, 15.0, opts.steps, opts.seed ^ 0x7);
        let cfg = env.session_config(0.5);
        let strategy = Strategy::AppAware(AppAwareConfig::paper(env.sigma()));
        for (bi, &budget) in budgets.iter().enumerate() {
            let tv = env.visible_table(budget, 0.25);
            let r = run_session(&cfg, &env.layout, &strategy, &path, Some((&tv, &env.importance)));
            let x = budget.to_string();
            let series = kind.name().to_string();
            if bi >= miss.rows.len() {
                miss.push(x.clone(), vec![]);
                io.push(x.clone(), vec![]);
            }
            miss.rows[bi].values.push((series.clone(), Metric::MissRate.of(&r)));
            io.rows[bi].values.push((series, r.io_s + r.lookup_s));
            eprintln!(
                "fig07: {} samples={budget} miss={:.4} io+lookup={:.3}s",
                kind.name(),
                r.miss_rate,
                r.io_s + r.lookup_s
            );
        }
    }

    opts.emit(&miss);
    println!();
    opts.emit(&io);
}
