//! Extensions from the paper's §VI future work plus the §III-B
//! multi-resolution discussion, measured rather than speculated:
//!
//! 1. **Parallel fetching with importance-aware distribution** — blocks
//!    striped across K devices; per-frame fetch latency = slowest device.
//!    Compares round-robin vs entropy-balanced (greedy LPT) placement.
//! 2. **LOD baseline** — the conventional view-dependent multi-resolution
//!    strategy: lower I/O, but quantified loss of full-resolution coverage
//!    (which data-dependent operations require).

use viz_bench::{Env, Opts};
use viz_cache::TierCost;
use viz_core::{
    compute_visibility, parallel_fetch_time, run_lod_session, serial_fetch_time, Distribution,
    LodPolicy, Table,
};
use viz_volume::DatasetKind;

fn main() {
    let opts = Opts::from_env();
    let env = Env::new(DatasetKind::LiftedRr, opts.scale, 1024, opts.seed);
    let path = env.random_path(5.0, 10.0, opts.steps, opts.seed ^ 0xF0);
    let visibility = compute_visibility(&env.layout, &path);
    let cost = TierCost::hdd();
    let bytes = env.block_bytes;

    // 1. Parallel fetching: total fetch latency of every frame's visible
    //    set under each placement and device count.
    let mut t1 = Table::new(
        "futurework-parallel",
        "Future work: parallel fetch latency across striped devices (lifted_rr, 1024 blocks)",
        "devices",
        "sum of per-frame fetch latency (s)",
    );
    for &k in &[1u16, 2, 4, 8] {
        let rr = Distribution::round_robin(env.layout.num_blocks(), k);
        let bal = Distribution::importance_balanced(&env.importance, k);
        let serial: f64 = visibility.iter().map(|v| serial_fetch_time(v, cost, bytes)).sum();
        let t_rr: f64 = visibility.iter().map(|v| parallel_fetch_time(v, &rr, cost, bytes)).sum();
        let t_bal: f64 = visibility.iter().map(|v| parallel_fetch_time(v, &bal, cost, bytes)).sum();
        t1.push(
            k.to_string(),
            vec![
                ("serial".to_string(), serial),
                ("round-robin".to_string(), t_rr),
                ("importance-LPT".to_string(), t_bal),
            ],
        );
        eprintln!("futurework: k={k} done");
    }
    opts.emit(&t1);
    println!();

    // The app-aware policy's actual device traffic is the entropy-filtered
    // prediction set (Algorithm 1 line 22) — the workload importance-aware
    // placement is designed for.
    let sigma = env.sigma();
    let hot_sets: Vec<Vec<viz_volume::BlockId>> = visibility
        .iter()
        .map(|v| v.iter().copied().filter(|&b| env.importance.entropy(b) > sigma).collect())
        .collect();
    let mut t1b = Table::new(
        "futurework-parallel-hot",
        "Parallel fetch latency of the entropy-filtered (prefetch) working set",
        "devices",
        "sum of per-frame fetch latency (s)",
    );
    for &k in &[2u16, 4, 8] {
        let rr = Distribution::round_robin(env.layout.num_blocks(), k);
        let bal = Distribution::importance_balanced(&env.importance, k);
        let t_rr: f64 = hot_sets.iter().map(|v| parallel_fetch_time(v, &rr, cost, bytes)).sum();
        let t_bal: f64 = hot_sets.iter().map(|v| parallel_fetch_time(v, &bal, cost, bytes)).sum();
        t1b.push(
            k.to_string(),
            vec![("round-robin".to_string(), t_rr), ("importance-LPT".to_string(), t_bal)],
        );
    }
    opts.emit(&t1b);
    println!();

    // Placement balance diagnostics.
    let mut t2 = Table::new(
        "futurework-balance",
        "Entropy-load imbalance (max/mean) per placement",
        "devices",
        "imbalance factor",
    );
    for &k in &[2u16, 4, 8] {
        let rr = Distribution::round_robin(env.layout.num_blocks(), k);
        let bal = Distribution::importance_balanced(&env.importance, k);
        t2.push(
            k.to_string(),
            vec![
                (
                    "round-robin".to_string(),
                    Distribution::imbalance(&rr.entropy_loads(&env.importance)),
                ),
                (
                    "importance-LPT".to_string(),
                    Distribution::imbalance(&bal.entropy_loads(&env.importance)),
                ),
            ],
        );
    }
    opts.emit(&t2);
    println!();

    // 2. LOD baseline vs full resolution: the §III-B fidelity trade-off.
    let cfg = env.session_config(0.5);
    let mut t3 = Table::new(
        "futurework-lod",
        "View-dependent LOD baseline: I/O saved vs full-resolution coverage lost",
        "LOD aggressiveness",
        "metric",
    );
    for (label, policy) in [
        ("full-res", LodPolicy::new(1e9, 1.0, 0)),
        ("mild (near=2.5)", LodPolicy::new(2.5, 0.5, 2)),
        ("aggressive (near=1.5)", LodPolicy::new(1.5, 0.4, 3)),
    ] {
        let r = run_lod_session(&cfg, &env.layout, &policy, &path);
        t3.push(
            label,
            vec![
                ("io (s)".to_string(), r.io_s),
                ("full-res coverage".to_string(), r.full_res_coverage),
                ("miss rate".to_string(), r.miss_rate),
            ],
        );
        eprintln!("futurework: lod {label} done");
    }
    opts.emit(&t3);
    println!(
        "\nLOD cuts I/O but starves data-dependent analysis of full-resolution\n\
         data — the paper's argument (Section III-B) for app-aware placement instead."
    );
}
