//! # viz-bench — experiment harnesses
//!
//! Shared plumbing for the figure/table regeneration binaries (one binary
//! per table or figure of the paper; see DESIGN.md for the index) and
//! the criterion micro-benchmarks.

#![warn(missing_docs)]

pub mod env;
pub mod hostile;
pub mod opts;
pub mod replay;

pub use env::{Env, D_MAX, D_MIN, PATH_STEPS, VIEW_ANGLE_DEG};
pub use hostile::{ClientOp, ScenarioConfig, ScenarioKind, Schedule, SplitMix64};
pub use opts::Opts;
pub use replay::{run_schedule, simulate_cache, ReplayOptions, ReplayReport, SimReport};
