//! Replay a hostile [`Schedule`] against a real deterministic server,
//! with or without the closed-loop control plane — the measurement side
//! of the adaptive benchmark, and the harness the safety regression test
//! drives.
//!
//! One replay is fully in-process: a `workers = 0` engine stepped to
//! idle after every schedule step, so the only nondeterminism left is
//! the wall-clock RTT measurement itself (which the safety tests avoid
//! by running over a [`viz_fetch::VirtualClockSource`], and the bench
//! embraces by injecting a fixed per-read latency — the I/O cost model
//! the controller is supposed to manage).

use crate::hostile::{ClientOp, Schedule};
use serde::Serialize;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use viz_adapt::{ControlPlane, ControlPlaneConfig, PolicySelector, PolicySelectorConfig};
use viz_cache::{CacheLevel, Lookup, PolicyKind};
use viz_fetch::{
    BlockPool, FetchConfig, FetchEngine, InstrumentedSource, VirtualClock, VirtualClockSource,
};
use viz_serve::{ServeConfig, Server, SessionId};
use viz_volume::{BlockId, BlockKey, MemBlockStore};

/// How to run a replay.
#[derive(Debug, Clone)]
pub struct ReplayOptions {
    /// `Some(slo)` attaches a [`ControlPlane`] chasing that demand-p99
    /// SLO (ns), ticked once per schedule step; `None` is the fixed
    /// baseline.
    pub slo_p99_ns: Option<u64>,
    /// Wall latency injected per source read (the I/O cost model).
    pub read_delay: Duration,
    /// Read through a [`VirtualClockSource`] instead — no real time
    /// anywhere, for determinism-critical tests.
    pub virtual_clock: bool,
}

impl ReplayOptions {
    /// Fixed defaults with `delay` per read.
    pub fn fixed(delay: Duration) -> Self {
        ReplayOptions { slo_p99_ns: None, read_delay: delay, virtual_clock: false }
    }

    /// Closed loop at `slo` ns with `delay` per read.
    pub fn adaptive(slo: u64, delay: Duration) -> Self {
        ReplayOptions { slo_p99_ns: Some(slo), read_delay: delay, virtual_clock: false }
    }
}

/// What one replay saw (serialized into `BENCH_adaptive.json`).
#[derive(Debug, Clone, Default, Serialize)]
pub struct ReplayReport {
    /// Frames executed.
    pub frames: u64,
    /// Demand keys submitted.
    pub demand_keys: u64,
    /// Demand replies that came back `Ok`.
    pub demand_ok: u64,
    /// Demand replies that came back `Err` — must be 0, always.
    pub demand_errors: u64,
    /// `serve_demand_admitted` at the end — must equal `demand_keys`:
    /// demand is never shed, so every submitted key was admitted.
    pub demand_admitted: u64,
    /// Prefetch entries shed (any rung).
    pub prefetch_shed: u64,
    /// Final per-reason shed totals, only reasons that fired.
    pub shed_by_reason: Vec<(String, u64)>,
    /// Source reads actually performed (coalescing + pool hits absorb
    /// the rest). Virtual-clock replays report 0.
    pub source_reads: u64,
    /// Steady-state (second-half) frame p99, milliseconds.
    pub p99_ms: f64,
    /// Steady-state frame p50, milliseconds.
    pub p50_ms: f64,
    /// Ladder scale after each control tick (empty when fixed).
    pub scale_per_tick: Vec<f64>,
    /// Window demand p99 (ms) seen by each control tick (empty when fixed).
    pub p99_ms_per_tick: Vec<f64>,
    /// Final ladder scale (1.0 when fixed).
    pub final_scale: f64,
}

fn percentile_ms(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)] * 1e3
}

/// Run `schedule` against a fresh deterministic server.
pub fn run_schedule(schedule: &Schedule, opts: &ReplayOptions) -> ReplayReport {
    let store = MemBlockStore::new();
    for i in 0..schedule.cfg.keyspace {
        store.insert(BlockKey::scalar(BlockId(i)), vec![i as f32; 32]);
    }
    // Keep a typed handle to the instrumented source for its read counter.
    let mut instrumented: Option<Arc<InstrumentedSource>> = None;
    let src: Arc<dyn viz_volume::BlockSource> = if opts.virtual_clock {
        let clock = Arc::new(VirtualClock::new());
        Arc::new(VirtualClockSource::uniform(Arc::new(store), clock, 3))
    } else {
        let s = Arc::new(InstrumentedSource::new(Arc::new(store), opts.read_delay));
        instrumented = Some(s.clone());
        s
    };
    let engine = FetchEngine::spawn(
        src,
        Arc::new(BlockPool::new()),
        FetchConfig { workers: 0, ..FetchConfig::default() },
    );
    // The default watermarks are sized for real deployments and sit far
    // above what a replay step can offer — every rung of a 1/16-scaled
    // ladder would still admit everything and the two arms could never
    // diverge. Seed the per-session entry quota just above the per-frame
    // prefetch burst instead, so the scaled ladder is the thing that
    // decides how much prefetch a hostile frame gets to keep.
    let serve_cfg = ServeConfig { per_client_queue: 16, ..ServeConfig::default() };
    let server = Server::new(Arc::new(engine), serve_cfg);
    let mut plane = opts.slo_p99_ns.map(|slo| {
        let mut cfg = ControlPlaneConfig::for_slo(slo);
        cfg.gauge_prefix = "replay_".to_string();
        ControlPlane::new(server.clone(), cfg)
    });

    let mut sessions: HashMap<u32, SessionId> = HashMap::new();
    let mut report = ReplayReport { final_scale: 1.0, ..ReplayReport::default() };
    let mut frame_s: Vec<f64> = Vec::new();
    for step in &schedule.steps {
        let mut pending = Vec::new();
        for op in step {
            match op {
                ClientOp::Open { client } => {
                    let id = server.open_session(&format!("c{client}")).expect("open");
                    sessions.insert(*client, id);
                }
                ClientOp::Close { client } => {
                    let id = sessions.remove(client).expect("close of open session");
                    server.close_session(id);
                }
                ClientOp::Frame { client, demand, prefetch } => {
                    let id = sessions[client];
                    let d: Vec<BlockKey> =
                        demand.iter().map(|&k| BlockKey::scalar(BlockId(k))).collect();
                    let p: Vec<(BlockKey, f64)> = prefetch
                        .iter()
                        .enumerate()
                        .map(|(i, &k)| (BlockKey::scalar(BlockId(k)), 1.0 / (i + 1) as f64))
                        .collect();
                    report.frames += 1;
                    report.demand_keys += d.len() as u64;
                    let t0 = Instant::now();
                    let sub = server.submit(id, 0, d, p).expect("submit");
                    pending.push((t0, sub));
                }
            }
        }
        server.pump();
        server.engine().run_until_idle();
        for (t0, sub) in pending {
            for reply in sub.collect_ready(&server) {
                if reply.result.is_ok() {
                    report.demand_ok += 1;
                } else {
                    report.demand_errors += 1;
                }
            }
            frame_s.push(t0.elapsed().as_secs_f64());
        }
        if let Some(plane) = &mut plane {
            let tick = plane.tick();
            report.scale_per_tick.push(tick.scale);
            report.p99_ms_per_tick.push(tick.window_p99_ns as f64 / 1e6);
            report.final_scale = tick.scale;
        }
    }

    // Steady state = the second half of frames, after warmup and (for the
    // adaptive arm) after the controller has had time to settle.
    let mut tail: Vec<f64> = frame_s[frame_s.len() / 2..].to_vec();
    tail.sort_by(f64::total_cmp);
    report.p99_ms = percentile_ms(&tail, 0.99);
    report.p50_ms = percentile_ms(&tail, 0.50);

    let stats = server.wire_counters();
    let counter = |name: &str| stats.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0);
    report.demand_admitted = counter("serve_demand_admitted");
    report.prefetch_shed = counter("serve_prefetch_shed");
    for reason in [
        "serve_shed_draining",
        "serve_shed_stale_gen",
        "serve_shed_entry_quota",
        "serve_shed_byte_quota",
        "serve_shed_breaker",
        "serve_shed_queue_depth",
        "serve_shed_pool_pressure",
    ] {
        let v = counter(reason);
        if v > 0 {
            report.shed_by_reason.push((reason.to_string(), v));
        }
    }
    report.source_reads = instrumented.map(|i| i.reads()).unwrap_or(0);
    viz_telemetry::stats::clear_gauges();
    report
}

/// Cache-policy simulation over a schedule's demand trace.
#[derive(Debug, Clone, Default, Serialize)]
pub struct SimReport {
    /// Steady-state (second-half) hit rate.
    pub hit_rate: f64,
    /// Policy switches the selector took (0 when fixed).
    pub switches: u64,
    /// The policy in force at the end.
    pub final_policy: String,
}

/// Drive the schedule's demand keys (in issue order) through one
/// [`CacheLevel`], optionally letting a [`PolicySelector`] retune it.
pub fn simulate_cache(schedule: &Schedule, capacity: usize, adaptive: bool) -> SimReport {
    let mut cache: CacheLevel<u32> = CacheLevel::new(PolicyKind::Lru, capacity);
    let mut sel = adaptive.then(|| {
        PolicySelector::new(
            PolicyKind::Lru,
            PolicyKind::ALL,
            capacity,
            PolicySelectorConfig::default(),
        )
    });
    let total = schedule.demand_keys() as usize;
    let mut seen = 0usize;
    let (mut tail_hits, mut tail_accesses) = (0u64, 0u64);
    for step in &schedule.steps {
        for op in step {
            let ClientOp::Frame { demand, .. } = op else { continue };
            for &k in demand {
                let hit = cache.access(k) == Lookup::Hit;
                if !hit {
                    cache.insert(k);
                }
                seen += 1;
                if seen > total / 2 {
                    tail_accesses += 1;
                    tail_hits += u64::from(hit);
                }
                if let Some(sel) = &mut sel {
                    if let Some(kind) = sel.observe_access(k) {
                        cache.set_policy(kind);
                    }
                }
            }
        }
    }
    SimReport {
        hit_rate: tail_hits as f64 / tail_accesses.max(1) as f64,
        switches: sel.as_ref().map(|s| s.switches()).unwrap_or(0),
        final_policy: cache.policy_name().to_string(),
    }
}
