//! Shared experiment environment: dataset + layout + tables + paths,
//! configured the way the paper's §V-A describes.

use viz_core::{
    ImportanceTable, RadiusModel, RadiusRule, SamplingConfig, SessionConfig, VisibleTable,
};
use viz_geom::angle::deg_to_rad;
use viz_geom::{CameraPath, CameraPose, ExplorationDomain, RandomWalkPath, SphericalPath, Vec3};
use viz_volume::{BrickLayout, DatasetKind, DatasetSpec, Dims3};

/// Camera positions per path, as in §V-A ("the total number of sampling
/// positions along a camera path is 400").
pub const PATH_STEPS: usize = 400;

/// Frustum view angle used throughout the experiments (degrees).
pub const VIEW_ANGLE_DEG: f64 = 15.0;

/// Camera distance range of the exploration domain Ω (normalized units;
/// the volume's bounding radius is √3 ≈ 1.73).
pub const D_MIN: f64 = 2.0;
/// Upper end of the camera distance range.
pub const D_MAX: f64 = 3.2;

/// A prepared experiment environment for one dataset/partition.
pub struct Env {
    /// Dataset descriptor.
    pub spec: DatasetSpec,
    /// The block partition under test.
    pub layout: BrickLayout,
    /// `T_important` for variable 0 at t = 0.
    pub importance: ImportanceTable,
    /// Bytes of one nominal block (drives the I/O cost model).
    pub block_bytes: usize,
}

impl Env {
    /// Build an environment for `kind` at `scale`, partitioned into
    /// approximately `target_blocks` blocks.
    pub fn new(kind: DatasetKind, scale: usize, target_blocks: usize, seed: u64) -> Self {
        let spec = DatasetSpec::new(kind, scale, seed);
        let layout = BrickLayout::with_target_blocks(spec.resolution(), target_blocks);
        Self::with_layout(spec, layout)
    }

    /// Build with an explicit block size (for the Fig. 9 block-size sweep).
    pub fn with_block_dims(kind: DatasetKind, scale: usize, block: Dims3, seed: u64) -> Self {
        let spec = DatasetSpec::new(kind, scale, seed);
        let layout = BrickLayout::new(spec.resolution(), block);
        Self::with_layout(spec, layout)
    }

    fn with_layout(spec: DatasetSpec, layout: BrickLayout) -> Self {
        let field = spec.materialize(0, 0.0);
        let importance = ImportanceTable::from_field(&layout, &field, 64);
        let block_bytes = layout.nominal_block_bytes();
        Env { spec, layout, importance, block_bytes }
    }

    /// The exploration domain Ω used by every experiment.
    pub fn domain() -> ExplorationDomain {
        ExplorationDomain::new(Vec3::ZERO, D_MIN, D_MAX)
    }

    /// Frustum view angle in radians.
    pub fn view_angle() -> f64 {
        deg_to_rad(VIEW_ANGLE_DEG)
    }

    /// Session configuration at a cache ratio.
    pub fn session_config(&self, cache_ratio: f64) -> SessionConfig {
        SessionConfig::paper(cache_ratio, self.block_bytes)
    }

    /// A spherical path with `step_deg` view change per position.
    pub fn spherical_path(&self, step_deg: f64, steps: usize) -> Vec<CameraPose> {
        SphericalPath::new(Self::domain(), 2.5, step_deg, Self::view_angle())
            .with_precession(step_deg * 0.2)
            .generate(steps)
    }

    /// A random path with per-step view change in `[lo, hi]` degrees and
    /// varying distance (the paper's random paths have "randomly different
    /// d and l values").
    pub fn random_path(&self, lo: f64, hi: f64, steps: usize, seed: u64) -> Vec<CameraPose> {
        RandomWalkPath::new(Self::domain(), 2.5, lo, hi, Self::view_angle(), seed)
            .with_distance_jitter(0.05)
            .generate(steps)
    }

    /// A random path with per-step view change in `[lo, hi]` degrees and a
    /// strong zoom component: the distance jitter sweeps the whole shell
    /// (used where adaptive-radius behaviour matters, e.g. Fig. 11).
    pub fn zooming_random_path(
        &self,
        lo: f64,
        hi: f64,
        steps: usize,
        seed: u64,
    ) -> Vec<CameraPose> {
        RandomWalkPath::new(Self::domain(), 2.5, lo, hi, Self::view_angle(), seed)
            .with_distance_jitter(0.4)
            .generate(steps)
    }

    /// Build `T_visible` with roughly `target_samples` positions using the
    /// optimal-radius rule at `cache_ratio`.
    pub fn visible_table(&self, target_samples: usize, cache_ratio: f64) -> VisibleTable {
        let model = RadiusModel::new(cache_ratio, Self::view_angle());
        self.visible_table_with_rule(target_samples, RadiusRule::Optimal(model))
    }

    /// Build `T_visible` with an explicit radius rule (Fig. 11's fixed-r
    /// baselines).
    pub fn visible_table_with_rule(&self, target_samples: usize, rule: RadiusRule) -> VisibleTable {
        let cfg = SamplingConfig::paper_default(D_MIN, D_MAX, Self::view_angle())
            .with_target_samples(target_samples);
        // Cap entries at the DRAM capacity for a 0.25-of-dataset cache so a
        // single prediction can never flush the whole fast tier (the §IV-C
        // over-prediction guard).
        let cap = (self.layout.num_blocks() / 4).max(1);
        VisibleTable::build(cfg, &self.layout, rule, Some((&self.importance, cap)))
    }

    /// A sensible entropy threshold σ: the value above which the top 50% of
    /// blocks lie (the paper does not publish its σ; half the blocks being
    /// "important" matches its combustion/climate narratives).
    pub fn sigma(&self) -> f64 {
        self.importance.sigma_for_fraction(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_builds_for_every_dataset() {
        for kind in DatasetKind::ALL {
            let env = Env::new(kind, 16, 64, 1);
            assert!(env.layout.num_blocks() >= 32, "{kind:?}");
            assert_eq!(env.importance.len(), env.layout.num_blocks());
            assert!(env.block_bytes > 0);
        }
    }

    #[test]
    fn paths_have_requested_length() {
        let env = Env::new(DatasetKind::Ball3d, 16, 64, 1);
        assert_eq!(env.spherical_path(5.0, 50).len(), 50);
        assert_eq!(env.random_path(10.0, 15.0, 50, 2).len(), 50);
    }

    #[test]
    fn visible_table_has_capped_entries() {
        let env = Env::new(DatasetKind::Ball3d, 16, 64, 1);
        let tv = env.visible_table(720, 0.5);
        let cap = env.layout.num_blocks() / 4;
        for i in 0..tv.len() {
            assert!(tv.entry(i).len() <= cap);
        }
    }

    #[test]
    fn sigma_splits_blocks_in_half() {
        let env = Env::new(DatasetKind::LiftedRr, 16, 64, 1);
        let sigma = env.sigma();
        let above = env.importance.above_threshold(sigma).count();
        let n = env.layout.num_blocks();
        assert!(above >= n / 4 && above <= 3 * n / 4, "{above}/{n}");
    }
}
