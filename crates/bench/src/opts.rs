//! Minimal command-line options shared by every experiment binary.

/// Parsed command-line options.
///
/// Every binary accepts:
///
/// - `--scale N` — per-axis dataset resolution divisor (default 4; 1 is
///   paper scale).
/// - `--steps N` — camera positions per path (default 400, as the paper).
/// - `--samples N` — `T_visible` sampling-position budget where relevant.
/// - `--seed N` — master RNG seed.
/// - `--fast` — shrink everything for a quick smoke run (CI).
/// - `--csv` — emit CSV instead of aligned text.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Per-axis resolution divisor for dataset generation.
    pub scale: usize,
    /// Camera positions per path.
    pub steps: usize,
    /// Sampling-position budget for `T_visible`.
    pub samples: usize,
    /// Master seed.
    pub seed: u64,
    /// CSV output instead of the aligned text table.
    pub csv: bool,
}

impl Default for Opts {
    fn default() -> Self {
        Opts { scale: 4, steps: 400, samples: 3240, seed: 0xC0DE, csv: false }
    }
}

impl Opts {
    /// Parse from an iterator of argument strings (skip `argv[0]` first).
    pub fn parse<I: Iterator<Item = String>>(mut args: I) -> Self {
        let mut o = Opts::default();
        while let Some(a) = args.next() {
            let mut take = |o: &mut usize| {
                if let Some(v) = args.next().and_then(|s| s.parse::<usize>().ok()) {
                    *o = v.max(1);
                }
            };
            match a.as_str() {
                "--scale" => take(&mut o.scale),
                "--steps" => take(&mut o.steps),
                "--samples" => take(&mut o.samples),
                "--seed" => {
                    if let Some(v) = args.next().and_then(|s| s.parse::<u64>().ok()) {
                        o.seed = v;
                    }
                }
                "--fast" => {
                    o.scale = o.scale.max(8);
                    o.steps = o.steps.min(60);
                    o.samples = o.samples.min(720);
                }
                "--csv" => o.csv = true,
                "--help" | "-h" => {
                    eprintln!(
                        "options: --scale N  --steps N  --samples N  --seed N  --fast  --csv"
                    );
                }
                other => eprintln!("ignoring unknown option {other:?}"),
            }
        }
        o
    }

    /// Parse from the process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Print a table in the selected format.
    pub fn emit(&self, table: &viz_core::Table) {
        if self.csv {
            println!("# {} — {}", table.id, table.title);
            print!("{}", table.to_csv());
        } else {
            print!("{}", table.to_text());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Opts {
        Opts::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]);
        assert_eq!(o.scale, 4);
        assert_eq!(o.steps, 400);
        assert!(!o.csv);
    }

    #[test]
    fn parses_values() {
        let o =
            parse(&["--scale", "2", "--steps", "100", "--samples", "8640", "--seed", "7", "--csv"]);
        assert_eq!(o.scale, 2);
        assert_eq!(o.steps, 100);
        assert_eq!(o.samples, 8640);
        assert_eq!(o.seed, 7);
        assert!(o.csv);
    }

    #[test]
    fn fast_mode_shrinks() {
        let o = parse(&["--fast"]);
        assert!(o.steps <= 60);
        assert!(o.samples <= 720);
        assert!(o.scale >= 8);
    }

    #[test]
    fn unknown_options_are_ignored() {
        let o = parse(&["--bogus", "--steps", "10"]);
        assert_eq!(o.steps, 10);
    }

    #[test]
    fn zero_values_clamp_to_one() {
        let o = parse(&["--steps", "0"]);
        assert_eq!(o.steps, 1);
    }
}
