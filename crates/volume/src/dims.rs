//! Grid dimensions and voxel index arithmetic.

use serde::{Deserialize, Serialize};

/// Dimensions of a 3D voxel grid (x fastest-varying in memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dims3 {
    /// Voxels along x (fastest-varying).
    pub nx: usize,
    /// Voxels along y.
    pub ny: usize,
    /// Voxels along z (slowest-varying).
    pub nz: usize,
}

impl Dims3 {
    /// Construct from per-axis voxel counts.
    pub const fn new(nx: usize, ny: usize, nz: usize) -> Self {
        Dims3 { nx, ny, nz }
    }

    /// Cubic grid `n × n × n`.
    pub const fn cube(n: usize) -> Self {
        Dims3 { nx: n, ny: n, nz: n }
    }

    /// Total voxel count.
    #[inline]
    pub const fn count(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Linear index of voxel `(x, y, z)`; x fastest.
    #[inline]
    pub const fn index(&self, x: usize, y: usize, z: usize) -> usize {
        (z * self.ny + y) * self.nx + x
    }

    /// Inverse of [`Self::index`].
    #[inline]
    pub const fn coords(&self, idx: usize) -> (usize, usize, usize) {
        let x = idx % self.nx;
        let y = (idx / self.nx) % self.ny;
        let z = idx / (self.nx * self.ny);
        (x, y, z)
    }

    /// `true` when `(x, y, z)` addresses a voxel of this grid.
    #[inline]
    pub const fn contains(&self, x: usize, y: usize, z: usize) -> bool {
        x < self.nx && y < self.ny && z < self.nz
    }

    /// Number of blocks per axis when tiling with `block` (last block may be
    /// partial): ceil-division per axis.
    pub const fn blocks_for(&self, block: Dims3) -> Dims3 {
        Dims3 {
            nx: self.nx.div_ceil(block.nx),
            ny: self.ny.div_ceil(block.ny),
            nz: self.nz.div_ceil(block.nz),
        }
    }

    /// Longest edge, used to normalize world coordinates.
    pub fn max_edge(&self) -> usize {
        self.nx.max(self.ny).max(self.nz)
    }

    /// Size in bytes of an `f32` grid with these dimensions.
    pub const fn bytes_f32(&self) -> usize {
        self.count() * 4
    }
}

impl std::fmt::Display for Dims3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}", self.nx, self.ny, self.nz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_and_bytes() {
        let d = Dims3::new(4, 5, 6);
        assert_eq!(d.count(), 120);
        assert_eq!(d.bytes_f32(), 480);
    }

    #[test]
    fn index_coords_roundtrip() {
        let d = Dims3::new(7, 5, 3);
        for idx in 0..d.count() {
            let (x, y, z) = d.coords(idx);
            assert!(d.contains(x, y, z));
            assert_eq!(d.index(x, y, z), idx);
        }
    }

    #[test]
    fn x_is_fastest_varying() {
        let d = Dims3::new(10, 10, 10);
        assert_eq!(d.index(1, 0, 0), 1);
        assert_eq!(d.index(0, 1, 0), 10);
        assert_eq!(d.index(0, 0, 1), 100);
    }

    #[test]
    fn blocks_for_exact_and_partial() {
        let d = Dims3::new(64, 64, 64);
        assert_eq!(d.blocks_for(Dims3::cube(32)), Dims3::cube(2));
        let e = Dims3::new(65, 64, 63);
        assert_eq!(e.blocks_for(Dims3::cube(32)), Dims3::new(3, 2, 2));
    }

    #[test]
    fn contains_boundaries() {
        let d = Dims3::new(2, 3, 4);
        assert!(d.contains(1, 2, 3));
        assert!(!d.contains(2, 2, 3));
        assert!(!d.contains(1, 3, 3));
        assert!(!d.contains(1, 2, 4));
    }

    #[test]
    fn display_format() {
        assert_eq!(Dims3::new(800, 686, 215).to_string(), "800x686x215");
    }
}
