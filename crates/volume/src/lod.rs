//! Level-of-detail (multi-resolution) pyramid.
//!
//! §III-B discusses the conventional *view-dependent* alternative to the
//! paper's approach: keep a multi-resolution representation and load
//! coarser levels for distant regions. The paper argues this defeats
//! data-dependent analysis (statistics need full resolution); this module
//! implements the baseline so the claim can be measured rather than
//! asserted (see `viz-core::lod` and the `ablation` bench).

use crate::dims::Dims3;
use crate::field::VolumeField;
use serde::{Deserialize, Serialize};

/// A mip-style pyramid: level 0 is the native field, each further level
/// halves every axis (rounding up) by box-filter averaging.
#[derive(Debug, Clone, PartialEq)]
pub struct LodPyramid {
    levels: Vec<VolumeField>,
}

/// Identifier of a pyramid level (0 = full resolution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LodLevel(pub u8);

impl LodPyramid {
    /// Build a pyramid with at most `max_levels` levels (at least 1);
    /// construction stops early when every axis reaches 1 voxel.
    pub fn build(base: VolumeField, max_levels: usize) -> Self {
        assert!(max_levels >= 1, "need at least the base level");
        let mut levels = vec![base];
        while levels.len() < max_levels {
            let prev = levels.last().unwrap();
            if prev.dims.nx <= 1 && prev.dims.ny <= 1 && prev.dims.nz <= 1 {
                break;
            }
            levels.push(downsample(prev));
        }
        LodPyramid { levels }
    }

    /// Number of levels actually built.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Access a level (0 = native resolution).
    pub fn level(&self, l: LodLevel) -> &VolumeField {
        &self.levels[l.0 as usize]
    }

    /// The coarsest available level.
    pub fn coarsest(&self) -> LodLevel {
        LodLevel((self.levels.len() - 1) as u8)
    }

    /// Bytes of one voxel payload at level `l` relative to level 0:
    /// approximately `8^-l` (each level halves three axes).
    pub fn relative_bytes(&self, l: LodLevel) -> f64 {
        let base = self.levels[0].dims.count() as f64;
        self.levels[l.0 as usize].dims.count() as f64 / base
    }

    /// Clamp a requested level to what exists.
    pub fn clamp(&self, l: LodLevel) -> LodLevel {
        LodLevel(l.0.min((self.levels.len() - 1) as u8))
    }
}

/// Box-filter 2× downsample (each output voxel averages its ≤ 8 parents).
fn downsample(src: &VolumeField) -> VolumeField {
    let d = src.dims;
    let nd = Dims3::new(d.nx.div_ceil(2).max(1), d.ny.div_ceil(2).max(1), d.nz.div_ceil(2).max(1));
    let mut out = vec![0.0f32; nd.count()];
    for z in 0..nd.nz {
        for y in 0..nd.ny {
            for x in 0..nd.nx {
                let (mut sum, mut n) = (0.0f64, 0u32);
                for dz in 0..2 {
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let (sx, sy, sz) = (2 * x + dx, 2 * y + dy, 2 * z + dz);
                            if d.contains(sx, sy, sz) {
                                sum += src.get(sx, sy, sz) as f64;
                                n += 1;
                            }
                        }
                    }
                }
                out[nd.index(x, y, z)] = (sum / n.max(1) as f64) as f32;
            }
        }
    }
    VolumeField::from_vec(nd, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> VolumeField {
        let dims = Dims3::cube(n);
        let data: Vec<f32> = (0..dims.count()).map(|i| i as f32).collect();
        VolumeField::from_vec(dims, data)
    }

    #[test]
    fn pyramid_halves_dimensions() {
        let p = LodPyramid::build(ramp(16), 4);
        assert_eq!(p.num_levels(), 4);
        assert_eq!(p.level(LodLevel(0)).dims, Dims3::cube(16));
        assert_eq!(p.level(LodLevel(1)).dims, Dims3::cube(8));
        assert_eq!(p.level(LodLevel(2)).dims, Dims3::cube(4));
        assert_eq!(p.level(LodLevel(3)).dims, Dims3::cube(2));
    }

    #[test]
    fn build_stops_at_single_voxel() {
        let p = LodPyramid::build(ramp(4), 10);
        assert!(p.num_levels() <= 4);
        let c = p.level(p.coarsest());
        assert!(c.dims.nx >= 1);
    }

    #[test]
    fn odd_dimensions_round_up() {
        let dims = Dims3::new(5, 3, 1);
        let f = VolumeField::from_vec(dims, vec![1.0; dims.count()]);
        let p = LodPyramid::build(f, 2);
        assert_eq!(p.level(LodLevel(1)).dims, Dims3::new(3, 2, 1));
    }

    #[test]
    fn downsampling_preserves_constant_fields() {
        let dims = Dims3::cube(8);
        let f = VolumeField::from_vec(dims, vec![3.25; dims.count()]);
        let p = LodPyramid::build(f, 3);
        for l in 0..p.num_levels() {
            for &v in p.level(LodLevel(l as u8)).data() {
                assert_eq!(v, 3.25);
            }
        }
    }

    #[test]
    fn downsampling_preserves_mean() {
        let f = ramp(8);
        let mean0: f64 = f.data().iter().map(|&v| v as f64).sum::<f64>() / f.data().len() as f64;
        let p = LodPyramid::build(f, 2);
        let l1 = p.level(LodLevel(1));
        let mean1: f64 = l1.data().iter().map(|&v| v as f64).sum::<f64>() / l1.data().len() as f64;
        assert!((mean0 - mean1).abs() < 1e-3, "{mean0} vs {mean1}");
    }

    #[test]
    fn downsampling_smooths_entropy() {
        // Coarser levels lose information: histogram entropy must not grow.
        use crate::stats::Histogram;
        let dims = Dims3::cube(16);
        let data: Vec<f32> = (0..dims.count()).map(|i| ((i * 2654435761) % 997) as f32).collect();
        let p = LodPyramid::build(VolumeField::from_vec(dims, data), 3);
        let h0 = Histogram::from_data(p.level(LodLevel(0)).data(), 64).entropy();
        let h2 = Histogram::from_data(p.level(LodLevel(2)).data(), 64).entropy();
        assert!(h2 <= h0 + 1e-9, "coarse level gained entropy: {h2} > {h0}");
    }

    #[test]
    fn relative_bytes_shrink_roughly_8x() {
        let p = LodPyramid::build(ramp(32), 3);
        let r1 = p.relative_bytes(LodLevel(1));
        assert!((r1 - 0.125).abs() < 0.01, "level 1 ratio {r1}");
        assert_eq!(p.relative_bytes(LodLevel(0)), 1.0);
    }

    #[test]
    fn clamp_caps_at_coarsest() {
        let p = LodPyramid::build(ramp(8), 2);
        assert_eq!(p.clamp(LodLevel(9)), LodLevel(1));
        assert_eq!(p.clamp(LodLevel(0)), LodLevel(0));
    }
}
