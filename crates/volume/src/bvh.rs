//! Spatial index over a layout's block AABBs.
//!
//! [`BlockBvh`] wraps [`viz_geom::Bvh`] with [`BlockId`]-typed queries; the
//! accelerated visible set is **identical** to the brute-force Eq. 1 scan
//! over [`BrickLayout::all_block_bounds`] (subtrees certainly outside the
//! cone are pruned, subtrees certainly inside are emitted wholesale, and
//! the exact corner test runs at every boundary leaf).
//! [`BrickLayout::block_bvh`] builds one lazily and caches it per layout.

use crate::layout::{BlockId, BrickLayout};
use viz_geom::{Bvh, ConeFrustum};

/// A BVH over every block of one [`BrickLayout`].
#[derive(Debug, Clone)]
pub struct BlockBvh {
    bvh: Bvh,
}

impl BlockBvh {
    /// Build the index over all blocks of `layout`.
    pub fn new(layout: &BrickLayout) -> Self {
        BlockBvh { bvh: Bvh::build(&layout.all_block_bounds()) }
    }

    /// Number of blocks indexed.
    pub fn num_blocks(&self) -> usize {
        self.bvh.len()
    }

    /// `true` when no blocks are indexed.
    pub fn is_empty(&self) -> bool {
        self.bvh.is_empty()
    }

    /// Approximate in-memory footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.bvh.approx_bytes()
    }

    /// Ids of every block whose Eq. 1 corner test passes against `cone`,
    /// sorted ascending — exactly the brute-force scan's result.
    pub fn visible_blocks(&self, cone: &ConeFrustum) -> Vec<BlockId> {
        self.bvh.cone_query(cone).into_iter().map(BlockId).collect()
    }

    /// Append the raw ids of every cone-visible block to `out`, in traversal
    /// order (unsorted). The allocation-free hot path for callers that mark
    /// a bitmap or reuse a scratch vector across many queries.
    pub fn visible_into(&self, cone: &ConeFrustum, out: &mut Vec<u32>) {
        self.bvh.cone_query_into(cone, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dims::Dims3;
    use viz_geom::angle::deg_to_rad;
    use viz_geom::{CameraPose, Vec3};

    fn layout() -> BrickLayout {
        BrickLayout::new(Dims3::cube(64), Dims3::cube(16)) // 64 blocks
    }

    fn brute(cone: &ConeFrustum, l: &BrickLayout) -> Vec<BlockId> {
        l.block_ids().filter(|&id| cone.intersects_block_corners(&l.block_bounds(id))).collect()
    }

    #[test]
    fn matches_brute_force_scan() {
        let l = layout();
        let bvh = BlockBvh::new(&l);
        assert_eq!(bvh.num_blocks(), l.num_blocks());
        for (theta, phi, ang) in [(10.0, 0.0, 15.0), (80.0, 30.0, 30.0), (170.0, 250.0, 60.0)] {
            let pose = CameraPose::orbit(theta, phi, 2.5, ang);
            let cone = ConeFrustum::from_pose(&pose);
            assert_eq!(bvh.visible_blocks(&cone), brute(&cone, &l), "{theta},{phi},{ang}");
        }
    }

    #[test]
    fn cached_accessor_builds_once_and_agrees() {
        let l = layout();
        let a = l.block_bvh() as *const BlockBvh;
        let b = l.block_bvh() as *const BlockBvh;
        assert_eq!(a, b, "accessor must cache");
        let pose = CameraPose::new(Vec3::new(0.0, 0.0, 2.5), Vec3::ZERO, deg_to_rad(25.0));
        let cone = ConeFrustum::from_pose(&pose);
        assert_eq!(l.block_bvh().visible_blocks(&cone), brute(&cone, &l));
    }

    #[test]
    fn unsorted_query_covers_same_set() {
        let l = layout();
        let pose = CameraPose::orbit(60.0, 120.0, 2.2, 40.0);
        let cone = ConeFrustum::from_pose(&pose);
        let mut raw = Vec::new();
        l.block_bvh().visible_into(&cone, &mut raw);
        raw.sort_unstable();
        let sorted: Vec<u32> = l.block_bvh().visible_blocks(&cone).iter().map(|b| b.0).collect();
        assert_eq!(raw, sorted);
    }
}
