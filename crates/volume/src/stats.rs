//! Per-block statistics: histograms and the Shannon-entropy importance
//! measure of the paper's §IV-C (Eq. 2).

use serde::{Deserialize, Serialize};

/// A fixed-bin histogram over a value range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Inclusive lower edge of the first bin.
    pub lo: f32,
    /// Inclusive upper edge of the last bin.
    pub hi: f32,
    /// Bin counts.
    pub counts: Vec<u64>,
    /// Total number of samples accumulated (excludes NaNs).
    pub total: u64,
}

impl Histogram {
    /// An empty histogram with `bins` bins over `[lo, hi]`. When
    /// `lo == hi` (constant data) everything lands in bin 0.
    pub fn new(lo: f32, hi: f32, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo <= hi, "invalid histogram range");
        Histogram { lo, hi, counts: vec![0; bins], total: 0 }
    }

    /// Bin index for a value (clamped into range; NaN → None).
    #[inline]
    pub fn bin_of(&self, v: f32) -> Option<usize> {
        if v.is_nan() {
            return None;
        }
        let n = self.counts.len();
        if self.hi <= self.lo {
            return Some(0);
        }
        let t = ((v - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0);
        Some(((t * n as f32) as usize).min(n - 1))
    }

    /// Accumulate one sample.
    #[inline]
    pub fn add(&mut self, v: f32) {
        if let Some(b) = self.bin_of(v) {
            self.counts[b] += 1;
            self.total += 1;
        }
    }

    /// Accumulate a slice of samples.
    pub fn add_all(&mut self, vs: &[f32]) {
        for &v in vs {
            self.add(v);
        }
    }

    /// Build directly from data with the range taken from the data itself.
    pub fn from_data(vs: &[f32], bins: usize) -> Self {
        let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
        for &v in vs {
            if !v.is_nan() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        if !lo.is_finite() || !hi.is_finite() {
            // All-NaN or empty input: degenerate empty histogram.
            return Histogram::new(0.0, 0.0, bins);
        }
        let mut h = Histogram::new(lo, hi, bins);
        h.add_all(vs);
        h
    }

    /// Probability mass function `p(x)` over the bins (empty bins excluded
    /// implicitly: their probability is 0).
    pub fn pmf(&self) -> impl Iterator<Item = f64> + '_ {
        let total = self.total.max(1) as f64;
        self.counts.iter().map(move |&c| c as f64 / total)
    }

    /// Shannon entropy `H = -Σ p(x) log2 p(x)` (Eq. 2), in bits.
    ///
    /// `0 log 0 = 0` by convention: empty bins contribute nothing. The
    /// entropy of constant data is exactly 0; the maximum is `log2(bins)`.
    pub fn entropy(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let total = self.total as f64;
        let h: f64 = self
            .counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / total;
                -p * p.log2()
            })
            .sum();
        // A single occupied bin sums to exactly -1·log2(1) = -0.0; clamp so
        // constant blocks report a clean 0 rather than negative zero.
        h.max(0.0)
    }

    /// Merge another histogram with identical binning into this one.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.counts.len(), other.counts.len(), "bin count mismatch");
        assert!(
            (self.lo - other.lo).abs() < 1e-12 && (self.hi - other.hi).abs() < 1e-12,
            "range mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }
}

/// Summary statistics of one data block, used to build `T_important`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockStats {
    /// Minimum value in the block.
    pub min: f32,
    /// Maximum value in the block.
    pub max: f32,
    /// Mean value in the block.
    pub mean: f32,
    /// Shannon entropy (bits) of the block's value histogram — the paper's
    /// importance measure.
    pub entropy: f64,
}

impl BlockStats {
    /// Compute stats over a block's voxels with `bins` histogram bins
    /// spanning `[range_lo, range_hi]` (use the *global* variable range so
    /// entropies are comparable across blocks).
    pub fn compute(values: &[f32], range_lo: f32, range_hi: f32, bins: usize) -> Self {
        let mut h = Histogram::new(range_lo, range_hi, bins);
        let (mut lo, mut hi, mut sum, mut n) = (f32::INFINITY, f32::NEG_INFINITY, 0.0f64, 0u64);
        for &v in values {
            if v.is_nan() {
                continue;
            }
            lo = lo.min(v);
            hi = hi.max(v);
            sum += v as f64;
            n += 1;
            h.add(v);
        }
        if n == 0 {
            return BlockStats { min: 0.0, max: 0.0, mean: 0.0, entropy: 0.0 };
        }
        BlockStats { min: lo, max: hi, mean: (sum / n as f64) as f32, entropy: h.entropy() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_data_has_zero_entropy() {
        let h = Histogram::from_data(&[3.5; 100], 64);
        assert_eq!(h.entropy(), 0.0);
    }

    #[test]
    fn uniform_data_has_max_entropy() {
        // One sample per bin → H = log2(bins).
        let bins = 16;
        let mut h = Histogram::new(0.0, 1.0, bins);
        for i in 0..bins {
            h.add((i as f32 + 0.5) / bins as f32);
        }
        assert!((h.entropy() - (bins as f64).log2()).abs() < 1e-12);
    }

    #[test]
    fn entropy_is_between_zero_and_log_bins() {
        let data: Vec<f32> = (0..1000).map(|i| ((i * i) % 97) as f32).collect();
        let h = Histogram::from_data(&data, 32);
        let e = h.entropy();
        assert!(e >= 0.0 && e <= 32f64.log2() + 1e-12);
    }

    #[test]
    fn two_value_data_entropy_is_one_bit() {
        let mut data = vec![0.0f32; 500];
        data.extend(vec![1.0f32; 500]);
        let h = Histogram::from_data(&data, 8);
        assert!((h.entropy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skewed_distribution_has_lower_entropy_than_uniform() {
        let mut skewed = vec![0.1f32; 900];
        skewed.extend((0..100).map(|i| i as f32 / 100.0));
        let uniform: Vec<f32> = (0..1000).map(|i| i as f32 / 1000.0).collect();
        let hs = Histogram::from_data(&skewed, 32);
        let hu = Histogram::from_data(&uniform, 32);
        assert!(hs.entropy() < hu.entropy());
    }

    #[test]
    fn nan_samples_are_ignored() {
        let data = [1.0f32, f32::NAN, 2.0, f32::NAN];
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.add_all(&data);
        assert_eq!(h.total, 2);
    }

    #[test]
    fn all_nan_data_is_degenerate_but_finite() {
        let h = Histogram::from_data(&[f32::NAN; 10], 8);
        assert_eq!(h.total, 0);
        assert_eq!(h.entropy(), 0.0);
    }

    #[test]
    fn bin_of_clamps_out_of_range() {
        let h = Histogram::new(0.0, 1.0, 10);
        assert_eq!(h.bin_of(-5.0), Some(0));
        assert_eq!(h.bin_of(5.0), Some(9));
        assert_eq!(h.bin_of(f32::NAN), None);
    }

    #[test]
    fn top_edge_value_lands_in_last_bin() {
        let h = Histogram::new(0.0, 1.0, 10);
        assert_eq!(h.bin_of(1.0), Some(9));
    }

    #[test]
    fn merge_sums_counts() {
        let mut a = Histogram::new(0.0, 1.0, 4);
        a.add_all(&[0.1, 0.9]);
        let mut b = Histogram::new(0.0, 1.0, 4);
        b.add_all(&[0.1, 0.5]);
        a.merge(&b);
        assert_eq!(a.total, 4);
        assert_eq!(a.counts[0], 2);
    }

    #[test]
    #[should_panic]
    fn merge_rejects_mismatched_bins() {
        let mut a = Histogram::new(0.0, 1.0, 4);
        a.merge(&Histogram::new(0.0, 1.0, 8));
    }

    #[test]
    fn block_stats_basic() {
        let s = BlockStats::compute(&[1.0, 2.0, 3.0, 4.0], 0.0, 4.0, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.mean - 2.5).abs() < 1e-6);
        assert!(s.entropy > 0.0);
    }

    #[test]
    fn block_stats_empty_is_zeroed() {
        let s = BlockStats::compute(&[], 0.0, 1.0, 4);
        assert_eq!(s.entropy, 0.0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn ambient_block_less_important_than_feature_block() {
        // The paper's Observation 2: ambient (near-constant) regions get low
        // entropy, feature-rich regions high entropy.
        let ambient = vec![0.001f32; 4096];
        let feature: Vec<f32> = (0..4096).map(|i| ((i * 31) % 256) as f32 / 255.0).collect();
        let sa = BlockStats::compute(&ambient, 0.0, 1.0, 64);
        let sf = BlockStats::compute(&feature, 0.0, 1.0, 64);
        assert!(sf.entropy > sa.entropy + 1.0);
    }
}
