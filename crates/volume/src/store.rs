//! On-disk block store.
//!
//! The paper streams blocks from HDD → SSD → DRAM. This module provides the
//! "resident on storage" end of that pipeline: each block is a framed binary
//! file (magic + dims + CRC-32 + f32 payload), written once during
//! pre-processing and random-accessed during visualization. The checksum
//! turns on-disk bit-rot into an `InvalidData` error at decode time instead
//! of NaN frames downstream; pre-checksum v1/v2 frames still decode. An
//! in-memory implementation backs tests and pure simulations.

use crate::dims::Dims3;
use crate::field::VolumeField;
use crate::layout::{BlockId, BrickLayout};
use bytes::{Buf, BufMut};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Addresses one cached unit: a block of one variable at one timestep.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct BlockKey {
    /// Variable index.
    pub var: u16,
    /// Timestep index.
    pub time: u16,
    /// Block within the layout.
    pub block: BlockId,
}

impl BlockKey {
    /// Address block `block` of variable `var` at timestep `time`.
    pub fn new(var: u16, time: u16, block: BlockId) -> Self {
        BlockKey { var, time, block }
    }

    /// Single-variable static datasets address blocks directly.
    pub fn scalar(block: BlockId) -> Self {
        BlockKey { var: 0, time: 0, block }
    }
}

/// Source of block payloads. Implementations must be safe to call from
/// multiple threads (the prefetcher reads concurrently with the renderer).
pub trait BlockSource: Send + Sync {
    /// Read the full voxel payload of a block.
    fn read_block(&self, key: BlockKey) -> io::Result<Vec<f32>>;

    /// Payload size in bytes without reading it.
    fn block_bytes(&self, key: BlockKey) -> io::Result<usize>;

    /// Batching extension: read several blocks in one call, returning one
    /// result per key **in request order**. The fetch engine submits a
    /// whole visible-set delta through this so sources can amortize
    /// per-key overhead — grouped/sorted file access on disk, one lock
    /// acquisition in memory, one round trip over a network. Per-key
    /// failures are independent: one missing block must not fail its
    /// batch siblings. The default forwards to [`BlockSource::read_block`]
    /// key by key.
    fn read_blocks(&self, keys: &[BlockKey]) -> Vec<io::Result<Vec<f32>>> {
        keys.iter().map(|&k| self.read_block(k)).collect()
    }
}

const MAGIC: &[u8; 4] = b"VBLK";
const VERSION: u16 = 1;
const VERSION_CODEC: u16 = 2;
const VERSION_CRC: u16 = 3;
const VERSION_CODEC_CRC: u16 = 4;

/// Serialize one block payload with its self-describing frame (v3: raw +
/// CRC-32 of the payload, so bit-rot surfaces as `InvalidData` at decode
/// instead of NaN frames downstream).
pub fn encode_block(dims: Dims3, data: &[f32]) -> Vec<u8> {
    assert_eq!(dims.count(), data.len(), "dims/payload mismatch");
    let mut buf = Vec::with_capacity(4 + 2 + 12 + 4 + data.len() * 4);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION_CRC);
    buf.put_u32_le(dims.nx as u32);
    buf.put_u32_le(dims.ny as u32);
    buf.put_u32_le(dims.nz as u32);
    let crc_at = buf.len();
    buf.put_u32_le(0); // crc placeholder
    for &v in data {
        buf.put_f32_le(v);
    }
    let crc = crate::checksum::crc32(&buf[crc_at + 4..]);
    buf[crc_at..crc_at + 4].copy_from_slice(&crc.to_le_bytes());
    buf
}

/// Serialize with an explicit codec (v4 frame: codec tag + length-prefixed
/// compressed payload + CRC-32 of the compressed bytes). [`decode_block`]
/// reads every frame version, including the pre-checksum v1/v2.
pub fn encode_block_with(codec: crate::codec::Codec, dims: Dims3, data: &[f32]) -> Vec<u8> {
    assert_eq!(dims.count(), data.len(), "dims/payload mismatch");
    let payload = codec.compress(data);
    let mut buf = Vec::with_capacity(4 + 2 + 1 + 12 + 4 + 4 + payload.len());
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION_CODEC_CRC);
    buf.put_u8(codec.tag());
    buf.put_u32_le(dims.nx as u32);
    buf.put_u32_le(dims.ny as u32);
    buf.put_u32_le(dims.nz as u32);
    buf.put_u32_le(payload.len() as u32);
    buf.put_u32_le(crate::checksum::crc32(&payload));
    buf.put_slice(&payload);
    buf
}

/// Parse a frame produced by [`encode_block`] or [`encode_block_with`].
pub fn decode_block(mut buf: &[u8]) -> io::Result<(Dims3, Vec<f32>)> {
    let err = |m: String| io::Error::new(io::ErrorKind::InvalidData, m);
    if buf.len() < 18 {
        return Err(err("block frame too short".into()));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(err("bad magic".into()));
    }
    let version = buf.get_u16_le();
    match version {
        VERSION | VERSION_CRC => {
            let dims = Dims3::new(
                buf.get_u32_le() as usize,
                buf.get_u32_le() as usize,
                buf.get_u32_le() as usize,
            );
            if version == VERSION_CRC {
                if buf.remaining() < 4 {
                    return Err(err("crc frame too short".into()));
                }
                let want = buf.get_u32_le();
                let got = crate::checksum::crc32(buf);
                if got != want {
                    return Err(err(format!(
                        "block payload checksum mismatch (stored {want:#010x}, computed {got:#010x})"
                    )));
                }
            }
            let n = dims.count();
            if buf.remaining() != n * 4 {
                return Err(err("payload length mismatch".into()));
            }
            let mut data = Vec::with_capacity(n);
            for _ in 0..n {
                data.push(buf.get_f32_le());
            }
            Ok((dims, data))
        }
        VERSION_CODEC | VERSION_CODEC_CRC => {
            let crc_len = if version == VERSION_CODEC_CRC { 4 } else { 0 };
            if buf.remaining() < 1 + 12 + 4 + crc_len {
                return Err(err("codec frame too short".into()));
            }
            let codec = crate::codec::Codec::from_tag(buf.get_u8())
                .ok_or_else(|| err("unknown codec tag".into()))?;
            let dims = Dims3::new(
                buf.get_u32_le() as usize,
                buf.get_u32_le() as usize,
                buf.get_u32_le() as usize,
            );
            let len = buf.get_u32_le() as usize;
            let want = (version == VERSION_CODEC_CRC).then(|| buf.get_u32_le());
            if buf.remaining() != len {
                return Err(err("compressed payload length mismatch".into()));
            }
            if let Some(want) = want {
                let got = crate::checksum::crc32(&buf[..len]);
                if got != want {
                    return Err(err(format!(
                        "block payload checksum mismatch (stored {want:#010x}, computed {got:#010x})"
                    )));
                }
            }
            let data = codec.decompress(&buf[..len], dims.count()).map_err(err)?;
            Ok((dims, data))
        }
        _ => Err(err("unsupported block version".into())),
    }
}

/// File-per-block store rooted at a directory.
///
/// Layout: `<root>/v<var>_t<time>_b<block>.vblk`.
#[derive(Debug)]
pub struct DiskBlockStore {
    root: PathBuf,
    codec: crate::codec::Codec,
}

impl DiskBlockStore {
    /// Open (creating the directory if needed), writing raw frames.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        Self::with_codec(root, crate::codec::Codec::Raw)
    }

    /// Open with a write codec (reads auto-detect per frame).
    pub fn with_codec(root: impl Into<PathBuf>, codec: crate::codec::Codec) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(DiskBlockStore { root, codec })
    }

    fn path_of(&self, key: BlockKey) -> PathBuf {
        self.root.join(format!("v{}_t{}_b{}.vblk", key.var, key.time, key.block.0))
    }

    /// Write one block using the store's codec.
    ///
    /// The frame is staged in a uniquely named `.tmp` sibling, fsynced,
    /// then atomically renamed over the final path: a crash mid-write can
    /// only leave stray `.tmp` litter (never read back), not a truncated
    /// frame that would surface later as a CRC `InvalidData` miss. Unique
    /// staging names (pid + per-process counter) also keep concurrent
    /// writers of the same key from interleaving into one temp file.
    /// After the rename the parent directory is fsynced too — the rename
    /// itself lives in directory metadata, and without that sync a power
    /// loss could silently roll a key back to its previous frame.
    pub fn write_block(&self, key: BlockKey, dims: Dims3, data: &[f32]) -> io::Result<()> {
        static WRITE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let bytes = match self.codec {
            crate::codec::Codec::Raw => encode_block(dims, data),
            c => encode_block_with(c, dims, data),
        };
        let path = self.path_of(key);
        let seq = WRITE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = path.with_extension(format!("{}.{}.tmp", std::process::id(), seq));
        let staged = (|| {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()
        })();
        let res = staged
            .and_then(|()| fs::rename(&tmp, &path))
            .and_then(|()| fs::File::open(&self.root)?.sync_all());
        if res.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        res
    }

    /// Write every block of a materialized field (pre-processing step).
    pub fn write_field(
        &self,
        layout: &BrickLayout,
        field: &VolumeField,
        var: u16,
        time: u16,
    ) -> io::Result<()> {
        for id in layout.block_ids() {
            let data = field.extract_block(layout, id);
            self.write_block(BlockKey::new(var, time, id), layout.block_dims(id), &data)?;
        }
        Ok(())
    }

    /// Root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }
}

impl BlockSource for DiskBlockStore {
    fn read_block(&self, key: BlockKey) -> io::Result<Vec<f32>> {
        let mut buf = Vec::new();
        fs::File::open(self.path_of(key))?.read_to_end(&mut buf)?;
        decode_block(&buf).map(|(_, data)| data)
    }

    fn block_bytes(&self, key: BlockKey) -> io::Result<usize> {
        // On-disk payload size (what a fetch actually moves); headers are
        // 22 bytes (v3 raw + crc) or 31 bytes (v4 codec + crc).
        let meta = fs::metadata(self.path_of(key))?;
        let header = match self.codec {
            crate::codec::Codec::Raw => 22,
            _ => 31,
        };
        Ok((meta.len() as usize).saturating_sub(header))
    }

    fn read_blocks(&self, keys: &[BlockKey]) -> Vec<io::Result<Vec<f32>>> {
        // Grouped read: visit files in (var, time, block) order so the
        // directory walk and read-ahead stay sequential even when the
        // caller's priority order hops around the volume, then hand the
        // results back in request order.
        let mut order: Vec<usize> = (0..keys.len()).collect();
        order.sort_by_key(|&i| keys[i]);
        let mut out: Vec<Option<io::Result<Vec<f32>>>> = Vec::new();
        out.resize_with(keys.len(), || None);
        for i in order {
            out[i] = Some(self.read_block(keys[i]));
        }
        out.into_iter().map(|r| r.expect("every slot filled")).collect()
    }
}

/// In-memory store for tests and pure simulation runs.
#[derive(Debug, Default)]
pub struct MemBlockStore {
    blocks: RwLock<HashMap<BlockKey, Vec<f32>>>,
}

impl MemBlockStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) one block payload.
    pub fn insert(&self, key: BlockKey, data: Vec<f32>) {
        self.blocks.write().insert(key, data);
    }

    /// Load every block of a field.
    pub fn insert_field(&self, layout: &BrickLayout, field: &VolumeField, var: u16, time: u16) {
        let mut map = self.blocks.write();
        for id in layout.block_ids() {
            map.insert(BlockKey::new(var, time, id), field.extract_block(layout, id));
        }
    }

    /// Number of stored blocks.
    pub fn len(&self) -> usize {
        self.blocks.read().len()
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.blocks.read().is_empty()
    }
}

impl BlockSource for MemBlockStore {
    fn read_block(&self, key: BlockKey) -> io::Result<Vec<f32>> {
        self.blocks
            .read()
            .get(&key)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("{key:?} not in store")))
    }

    fn block_bytes(&self, key: BlockKey) -> io::Result<usize> {
        self.blocks
            .read()
            .get(&key)
            .map(|d| d.len() * 4)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("{key:?} not in store")))
    }

    fn read_blocks(&self, keys: &[BlockKey]) -> Vec<io::Result<Vec<f32>>> {
        // One lock acquisition for the whole batch.
        let map = self.blocks.read();
        keys.iter()
            .map(|key| {
                map.get(key).cloned().ok_or_else(|| {
                    io::Error::new(io::ErrorKind::NotFound, format!("{key:?} not in store"))
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("viz_store_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn encode_decode_roundtrip() {
        let dims = Dims3::new(3, 2, 2);
        let data: Vec<f32> = (0..12).map(|i| i as f32 * 0.5).collect();
        let buf = encode_block(dims, &data);
        let (d2, v2) = decode_block(&buf).unwrap();
        assert_eq!(d2, dims);
        assert_eq!(v2, data);
    }

    #[test]
    fn decode_rejects_bad_magic() {
        let mut buf = encode_block(Dims3::new(1, 1, 1), &[1.0]);
        buf[0] = b'X';
        assert!(decode_block(&buf).is_err());
    }

    #[test]
    fn decode_rejects_truncated_payload() {
        let buf = encode_block(Dims3::new(2, 2, 2), &[0.0; 8]);
        assert!(decode_block(&buf[..buf.len() - 4]).is_err());
        assert!(decode_block(&buf[..10]).is_err());
    }

    #[test]
    fn decode_rejects_wrong_version() {
        let mut buf = encode_block(Dims3::new(1, 1, 1), &[1.0]);
        buf[4] = 99;
        assert!(decode_block(&buf).is_err());
    }

    #[test]
    fn disk_store_roundtrip() {
        let dir = tmpdir("roundtrip");
        let store = DiskBlockStore::open(&dir).unwrap();
        let key = BlockKey::new(1, 2, BlockId(7));
        let data = vec![1.5f32, -2.5, 0.0];
        store.write_block(key, Dims3::new(3, 1, 1), &data).unwrap();
        assert_eq!(store.read_block(key).unwrap(), data);
        assert_eq!(store.block_bytes(key).unwrap(), 12);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batched_reads_return_request_order_with_independent_failures() {
        let dir = tmpdir("batch");
        let store = DiskBlockStore::open(&dir).unwrap();
        for i in 0..4u32 {
            let key = BlockKey::scalar(BlockId(i));
            store.write_block(key, Dims3::new(1, 1, 1), &[i as f32]).unwrap();
        }
        // Deliberately shuffled request order, with a missing key inside.
        let keys = [
            BlockKey::scalar(BlockId(3)),
            BlockKey::scalar(BlockId(0)),
            BlockKey::scalar(BlockId(99)),
            BlockKey::scalar(BlockId(2)),
        ];
        let got = store.read_blocks(&keys);
        assert_eq!(got.len(), 4);
        assert_eq!(got[0].as_ref().unwrap(), &vec![3.0]);
        assert_eq!(got[1].as_ref().unwrap(), &vec![0.0]);
        assert_eq!(got[2].as_ref().unwrap_err().kind(), io::ErrorKind::NotFound);
        assert_eq!(got[3].as_ref().unwrap(), &vec![2.0]);

        // The in-memory store honors the same contract.
        let mem = MemBlockStore::new();
        mem.insert(keys[0], vec![3.0]);
        mem.insert(keys[1], vec![0.0]);
        mem.insert(keys[3], vec![2.0]);
        let got = mem.read_blocks(&keys);
        assert!(got[0].is_ok() && got[1].is_ok() && got[3].is_ok());
        assert!(got[2].is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_store_missing_block_errors() {
        let dir = tmpdir("missing");
        let store = DiskBlockStore::open(&dir).unwrap();
        assert!(store.read_block(BlockKey::scalar(BlockId(0))).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_field_then_read_all_blocks() {
        let dir = tmpdir("field");
        let store = DiskBlockStore::open(&dir).unwrap();
        let dims = Dims3::new(8, 8, 4);
        let field =
            VolumeField::from_function(dims, &|x: f64, y: f64, z: f64, _| (x + y + z) as f32, 0.0);
        let layout = BrickLayout::new(dims, Dims3::cube(4));
        store.write_field(&layout, &field, 0, 0).unwrap();
        for id in layout.block_ids() {
            let got = store.read_block(BlockKey::scalar(id)).unwrap();
            assert_eq!(got, field.extract_block(&layout, id));
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crashed_write_leaves_no_truncated_frame() {
        let dir = tmpdir("crash");
        let store = DiskBlockStore::open(&dir).unwrap();
        let key = BlockKey::scalar(BlockId(3));
        let data = vec![4.0f32, 5.0, 6.0];
        store.write_block(key, Dims3::new(3, 1, 1), &data).unwrap();

        // Simulate a writer that died mid-stage: a partial temp file next
        // to the good frame. It must never shadow the committed data.
        let good = decode_block(&{
            let mut buf = Vec::new();
            fs::File::open(dir.join("v0_t0_b3.vblk")).unwrap().read_to_end(&mut buf).unwrap();
            buf
        })
        .unwrap();
        fs::write(dir.join("v0_t0_b3.9999.0.tmp"), &[0x56, 0x42, 0x4c]).unwrap();
        assert_eq!(store.read_block(key).unwrap(), data);
        assert_eq!(good.1, data);

        // A fresh write still commits atomically over the final name and
        // ignores the stale litter.
        let data2 = vec![7.0f32, 8.0, 9.0];
        store.write_block(key, Dims3::new(3, 1, 1), &data2).unwrap();
        assert_eq!(store.read_block(key).unwrap(), data2);

        // A never-written key with only temp litter reports NotFound, not
        // InvalidData: litter is invisible to readers.
        fs::write(dir.join("v0_t0_b4.1234.0.tmp"), &[0u8; 5]).unwrap();
        let err = store.read_block(BlockKey::scalar(BlockId(4))).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_overwrite_commits_and_leaves_no_staging_litter() {
        let dir = tmpdir("durable");
        let store = DiskBlockStore::open(&dir).unwrap();
        let key = BlockKey::scalar(BlockId(11));
        store.write_block(key, Dims3::new(2, 1, 1), &[1.0, 2.0]).unwrap();
        // Overwriting the same key exercises the full stage → fsync →
        // rename → parent-dir fsync path with a pre-existing final file.
        store.write_block(key, Dims3::new(2, 1, 1), &[3.0, 4.0]).unwrap();
        assert_eq!(store.read_block(key).unwrap(), vec![3.0, 4.0]);
        // Successful writes clean up after themselves: only the committed
        // frame remains, no `.tmp` staging litter.
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(names, vec!["v0_t0_b11.vblk".to_string()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_writers_of_one_key_never_interleave() {
        let dir = tmpdir("racewrite");
        let store = std::sync::Arc::new(DiskBlockStore::open(&dir).unwrap());
        let key = BlockKey::scalar(BlockId(0));
        let dims = Dims3::new(64, 1, 1);
        let handles: Vec<_> = (0..4u32)
            .map(|w| {
                let s = store.clone();
                std::thread::spawn(move || {
                    for _ in 0..25 {
                        s.write_block(key, dims, &vec![w as f32; 64]).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Whatever write won, the frame decodes cleanly and is one
        // writer's payload, not a mix.
        let got = store.read_block(key).unwrap();
        assert_eq!(got.len(), 64);
        assert!(got.iter().all(|&v| v == got[0]), "interleaved frame: {got:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mem_store_roundtrip_and_len() {
        let store = MemBlockStore::new();
        assert!(store.is_empty());
        store.insert(BlockKey::scalar(BlockId(3)), vec![9.0]);
        assert_eq!(store.len(), 1);
        assert_eq!(store.read_block(BlockKey::scalar(BlockId(3))).unwrap(), vec![9.0]);
        assert!(store.read_block(BlockKey::scalar(BlockId(4))).is_err());
    }

    #[test]
    fn mem_store_insert_field() {
        let dims = Dims3::cube(8);
        let field =
            VolumeField::from_function(dims, &|x: f64, _y: f64, _z: f64, _t: f64| x as f32, 0.0);
        let layout = BrickLayout::new(dims, Dims3::cube(4));
        let store = MemBlockStore::new();
        store.insert_field(&layout, &field, 0, 0);
        assert_eq!(store.len(), layout.num_blocks());
        let id = layout.block_at(1, 1, 1);
        assert_eq!(
            store.read_block(BlockKey::scalar(id)).unwrap(),
            field.extract_block(&layout, id)
        );
    }

    #[test]
    fn compressed_store_roundtrips_and_shrinks() {
        use crate::codec::Codec;
        let dir = tmpdir("codec");
        let raw = DiskBlockStore::open(dir.join("raw")).unwrap();
        let rle = DiskBlockStore::with_codec(dir.join("rle"), Codec::PlaneRle).unwrap();
        let dims = Dims3::cube(16);
        let ambient = vec![0.0f32; dims.count()];
        let key = BlockKey::scalar(BlockId(0));
        raw.write_block(key, dims, &ambient).unwrap();
        rle.write_block(key, dims, &ambient).unwrap();
        assert_eq!(rle.read_block(key).unwrap(), ambient);
        assert!(
            rle.block_bytes(key).unwrap() * 20 < raw.block_bytes(key).unwrap(),
            "ambient block should shrink >20x"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v2_frame_roundtrip_via_encode_decode() {
        use crate::codec::Codec;
        let dims = Dims3::new(5, 3, 2);
        let data: Vec<f32> = (0..30).map(|i| (i % 4) as f32).collect();
        let buf = encode_block_with(Codec::PlaneRle, dims, &data);
        let (d2, v2) = decode_block(&buf).unwrap();
        assert_eq!(d2, dims);
        assert_eq!(v2, data);
        // Corrupt the codec tag.
        let mut bad = buf.clone();
        bad[6] = 99;
        assert!(decode_block(&bad).is_err());
    }

    #[test]
    fn bit_rot_in_raw_frame_surfaces_as_invalid_data() {
        let dims = Dims3::new(4, 2, 1);
        let data: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let buf = encode_block(dims, &data);
        assert!(decode_block(&buf).is_ok());
        // Flip one payload bit: dims and length stay plausible, only the
        // checksum can catch it.
        let mut rotted = buf.clone();
        let last = rotted.len() - 1;
        rotted[last] ^= 0x40;
        let err = decode_block(&rotted).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "got: {err}");
    }

    #[test]
    fn bit_rot_in_codec_frame_surfaces_as_invalid_data() {
        use crate::codec::Codec;
        let dims = Dims3::cube(8);
        let data = vec![1.0f32; dims.count()];
        let buf = encode_block_with(Codec::PlaneRle, dims, &data);
        assert!(decode_block(&buf).is_ok());
        let mut rotted = buf.clone();
        let last = rotted.len() - 1;
        rotted[last] ^= 0x01;
        let err = decode_block(&rotted).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "got: {err}");
    }

    #[test]
    fn pre_checksum_v1_frames_still_decode() {
        // Hand-build a v1 frame (no crc) the way old stores wrote it.
        let data = [1.5f32, -2.0, 3.25];
        let mut buf = Vec::new();
        buf.put_slice(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u32_le(3);
        buf.put_u32_le(1);
        buf.put_u32_le(1);
        for &v in &data {
            buf.put_f32_le(v);
        }
        let (dims, got) = decode_block(&buf).unwrap();
        assert_eq!(dims, Dims3::new(3, 1, 1));
        assert_eq!(got, data);
    }

    #[test]
    fn block_key_ordering_is_stable() {
        let a = BlockKey::new(0, 0, BlockId(1));
        let b = BlockKey::new(0, 1, BlockId(0));
        let c = BlockKey::new(1, 0, BlockId(0));
        assert!(a < b && b < c);
    }
}
