//! Gradient fields.
//!
//! Gradient magnitude is the classic visualization importance measure
//! (boundary emphasis) and the standard alternative to the paper's
//! entropy-based block importance; the ablation bench compares both. The
//! paper's own motivation — "regions of which values have greatest changes
//! tends to be the most interesting part" (§IV-C) — is literally a gradient
//! statement, so the comparison is a natural one.

use crate::dims::Dims3;
use crate::field::VolumeField;
use rayon::prelude::*;

/// Central-difference gradient magnitude of a scalar field, same grid.
/// One-sided differences at the boundary; spacing = 1 voxel.
pub fn gradient_magnitude(field: &VolumeField) -> VolumeField {
    let d = field.dims;
    let mut out = vec![0.0f32; d.count()];
    let slab = d.nx * d.ny;
    out.par_chunks_mut(slab).enumerate().for_each(|(z, chunk)| {
        for y in 0..d.ny {
            for x in 0..d.nx {
                let g = gradient_at(field, x, y, z);
                chunk[y * d.nx + x] = (g[0] * g[0] + g[1] * g[1] + g[2] * g[2]).sqrt();
            }
        }
    });
    VolumeField::from_vec(d, out)
}

/// Central-difference gradient vector at a voxel (one-sided at the edges).
pub fn gradient_at(field: &VolumeField, x: usize, y: usize, z: usize) -> [f32; 3] {
    let d = field.dims;
    let diff = |lo: f32, hi: f32, span: f32| (hi - lo) / span;
    let gx = {
        let (x0, x1) = (x.saturating_sub(1), (x + 1).min(d.nx - 1));
        diff(field.get(x0, y, z), field.get(x1, y, z), (x1 - x0).max(1) as f32)
    };
    let gy = {
        let (y0, y1) = (y.saturating_sub(1), (y + 1).min(d.ny - 1));
        diff(field.get(x, y0, z), field.get(x, y1, z), (y1 - y0).max(1) as f32)
    };
    let gz = {
        let (z0, z1) = (z.saturating_sub(1), (z + 1).min(d.nz - 1));
        diff(field.get(x, y, z0), field.get(x, y, z1), (z1 - z0).max(1) as f32)
    };
    [gx, gy, gz]
}

/// Mean gradient magnitude per block of `layout` — a drop-in alternative
/// importance vector (`by_block[i]` = block i's mean |∇f|).
pub fn block_mean_gradient(field: &VolumeField, layout: &crate::layout::BrickLayout) -> Vec<f64> {
    assert_eq!(field.dims, layout.volume, "layout does not match field");
    let gm = gradient_magnitude(field);
    let ids: Vec<crate::layout::BlockId> = layout.block_ids().collect();
    ids.par_iter()
        .map(|&id| {
            let data = gm.extract_block(layout, id);
            if data.is_empty() {
                0.0
            } else {
                data.iter().map(|&v| v as f64).sum::<f64>() / data.len() as f64
            }
        })
        .collect()
}

/// Dimensions helper re-export used by downstream tests.
pub fn dims_of(field: &VolumeField) -> Dims3 {
    field.dims
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::BrickLayout;

    fn linear_field() -> VolumeField {
        // f = 2x + 3y + 6z  ⇒ |∇f| = 7 everywhere (interior).
        VolumeField::from_function(
            Dims3::cube(8),
            &|x: f64, y: f64, z: f64, _t: f64| {
                // Coordinates are normalized; scale to voxel units: d/dvoxel =
                // (coefficient / n).
                (16.0 * x + 24.0 * y + 48.0 * z) as f32
            },
            0.0,
        )
    }

    #[test]
    fn gradient_of_linear_field_is_constant() {
        let f = linear_field();
        let g = gradient_magnitude(&f);
        // Interior voxels: per-voxel steps are 2, 3, 6 ⇒ |∇| = 7.
        for z in 1..7 {
            for y in 1..7 {
                for x in 1..7 {
                    let v = g.get(x, y, z);
                    assert!((v - 7.0).abs() < 1e-3, "({x},{y},{z}) = {v}");
                }
            }
        }
    }

    #[test]
    fn gradient_of_constant_field_is_zero() {
        let f = VolumeField::from_vec(Dims3::cube(6), vec![5.0; 216]);
        let g = gradient_magnitude(&f);
        assert!(g.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn boundary_gradients_are_finite() {
        let f = linear_field();
        let g = gradient_magnitude(&f);
        for &v in g.data() {
            assert!(v.is_finite());
        }
        // One-sided boundary estimate still close for a linear field.
        assert!((g.get(0, 0, 0) - 7.0).abs() < 1.0);
    }

    #[test]
    fn gradient_vector_components() {
        let f = linear_field();
        let [gx, gy, gz] = gradient_at(&f, 4, 4, 4);
        assert!((gx - 2.0).abs() < 1e-3);
        assert!((gy - 3.0).abs() < 1e-3);
        assert!((gz - 6.0).abs() < 1e-3);
    }

    #[test]
    fn block_gradient_ranks_edge_blocks_high() {
        // A step function: gradient concentrated at the x = 0.5 plane.
        let f = VolumeField::from_function(
            Dims3::cube(16),
            &|x: f64, _y: f64, _z: f64, _t: f64| {
                if x < 0.5 {
                    0.0
                } else {
                    1.0
                }
            },
            0.0,
        );
        let layout = BrickLayout::new(f.dims, Dims3::cube(8));
        let g = block_mean_gradient(&f, &layout);
        // Blocks straddle the step at bx ∈ {0, 1}; all blocks touch it only
        // via the boundary column x=7|8: blocks with bx=0 contain x=7
        // (one-sided diff sees the step). Both halves see some gradient,
        // but corner blocks away from the plane see none… with 8-wide
        // blocks every block touches the step plane, so instead check the
        // total is positive and symmetric.
        assert!(g.iter().sum::<f64>() > 0.0);
        let (b0, b1) = (layout.block_at(0, 0, 0).index(), layout.block_at(1, 0, 0).index());
        assert!((g[b0] - g[b1]).abs() < 1e-6, "step is symmetric");
    }

    #[test]
    fn mean_gradient_matches_manual_average() {
        let f = linear_field();
        let layout = BrickLayout::new(f.dims, Dims3::cube(4));
        let g = block_mean_gradient(&f, &layout);
        let gm = gradient_magnitude(&f);
        let id = layout.block_at(1, 1, 1);
        let data = gm.extract_block(&layout, id);
        let manual: f64 = data.iter().map(|&v| v as f64).sum::<f64>() / data.len() as f64;
        assert!((g[id.index()] - manual).abs() < 1e-9);
    }
}
