//! Materialized scalar fields and the generator interface.

use crate::dims::Dims3;
use crate::layout::{BlockId, BrickLayout};
use rayon::prelude::*;

/// A procedural scalar field evaluated in normalized coordinates:
/// `x, y, z` in `[0, 1]` over the volume, `t` in `[0, 1]` over the dataset's
/// time span (generators for static datasets ignore `t`).
pub trait ScalarFunction: Sync {
    /// Evaluate the field.
    fn eval(&self, x: f64, y: f64, z: f64, t: f64) -> f32;
}

impl<F> ScalarFunction for F
where
    F: Fn(f64, f64, f64, f64) -> f32 + Sync,
{
    fn eval(&self, x: f64, y: f64, z: f64, t: f64) -> f32 {
        self(x, y, z, t)
    }
}

/// A fully materialized voxel grid of `f32` samples (one variable at one
/// timestep), the in-memory form the renderer and entropy pass consume.
#[derive(Debug, Clone, PartialEq)]
pub struct VolumeField {
    /// Grid dimensions.
    pub dims: Dims3,
    data: Vec<f32>,
}

impl VolumeField {
    /// Wrap an existing grid. `data.len()` must equal `dims.count()`.
    pub fn from_vec(dims: Dims3, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), dims.count(), "grid size mismatch");
        VolumeField { dims, data }
    }

    /// Evaluate `f` at every voxel center, in parallel over z-slabs.
    pub fn from_function<F: ScalarFunction + ?Sized>(dims: Dims3, f: &F, t: f64) -> Self {
        let (nx, ny, nz) = (dims.nx, dims.ny, dims.nz);
        let inv = (1.0 / nx.max(1) as f64, 1.0 / ny.max(1) as f64, 1.0 / nz.max(1) as f64);
        let mut data = vec![0.0f32; dims.count()];
        let slab = nx * ny;
        data.par_chunks_mut(slab).enumerate().for_each(|(z, chunk)| {
            let zc = (z as f64 + 0.5) * inv.2;
            for y in 0..ny {
                let yc = (y as f64 + 0.5) * inv.1;
                let row = &mut chunk[y * nx..(y + 1) * nx];
                for (x, out) in row.iter_mut().enumerate() {
                    let xc = (x as f64 + 0.5) * inv.0;
                    *out = f.eval(xc, yc, zc, t);
                }
            }
        });
        VolumeField { dims, data }
    }

    /// Raw sample at voxel `(x, y, z)`.
    #[inline]
    pub fn get(&self, x: usize, y: usize, z: usize) -> f32 {
        debug_assert!(self.dims.contains(x, y, z));
        self.data[self.dims.index(x, y, z)]
    }

    /// The underlying grid, x fastest.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Trilinear interpolation at fractional voxel coordinates; clamps to
    /// the grid edge (samples live at voxel centers).
    pub fn sample_trilinear(&self, x: f64, y: f64, z: f64) -> f32 {
        let cx = (x - 0.5).clamp(0.0, (self.dims.nx - 1) as f64);
        let cy = (y - 0.5).clamp(0.0, (self.dims.ny - 1) as f64);
        let cz = (z - 0.5).clamp(0.0, (self.dims.nz - 1) as f64);
        let (x0, y0, z0) = (cx.floor() as usize, cy.floor() as usize, cz.floor() as usize);
        let x1 = (x0 + 1).min(self.dims.nx - 1);
        let y1 = (y0 + 1).min(self.dims.ny - 1);
        let z1 = (z0 + 1).min(self.dims.nz - 1);
        let (fx, fy, fz) = (cx - x0 as f64, cy - y0 as f64, cz - z0 as f64);
        let g = |x: usize, y: usize, z: usize| self.get(x, y, z) as f64;
        let lerp = |a: f64, b: f64, t: f64| a + (b - a) * t;
        let c00 = lerp(g(x0, y0, z0), g(x1, y0, z0), fx);
        let c10 = lerp(g(x0, y1, z0), g(x1, y1, z0), fx);
        let c01 = lerp(g(x0, y0, z1), g(x1, y0, z1), fx);
        let c11 = lerp(g(x0, y1, z1), g(x1, y1, z1), fx);
        lerp(lerp(c00, c10, fy), lerp(c01, c11, fy), fz) as f32
    }

    /// Copy out the voxels of one block of `layout` (which must describe
    /// this field's dims), in block-local x-fastest order.
    pub fn extract_block(&self, layout: &BrickLayout, id: BlockId) -> Vec<f32> {
        assert_eq!(layout.volume, self.dims, "layout does not match field");
        let (s, e) = layout.voxel_range(id);
        let mut out = Vec::with_capacity((e.nx - s.nx) * (e.ny - s.ny) * (e.nz - s.nz));
        for z in s.nz..e.nz {
            for y in s.ny..e.ny {
                let base = self.dims.index(s.nx, y, z);
                out.extend_from_slice(&self.data[base..base + (e.nx - s.nx)]);
            }
        }
        out
    }

    /// Global minimum and maximum (NaN-free fields assumed; NaNs are
    /// propagated into the result deterministically as "ignored").
    pub fn min_max(&self) -> (f32, f32) {
        self.data
            .par_iter()
            .fold(|| (f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)))
            .reduce(|| (f32::INFINITY, f32::NEG_INFINITY), |a, b| (a.0.min(b.0), a.1.max(b.1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> VolumeField {
        // f = x index, so values 0..nx-1 repeated.
        let dims = Dims3::new(8, 4, 2);
        let mut data = vec![0.0; dims.count()];
        for z in 0..2 {
            for y in 0..4 {
                for x in 0..8 {
                    data[dims.index(x, y, z)] = x as f32;
                }
            }
        }
        VolumeField::from_vec(dims, data)
    }

    #[test]
    #[should_panic]
    fn from_vec_size_mismatch_panics() {
        VolumeField::from_vec(Dims3::cube(4), vec![0.0; 3]);
    }

    #[test]
    fn from_function_evaluates_at_voxel_centers() {
        let f = |x: f64, _y: f64, _z: f64, _t: f64| x as f32;
        let vf = VolumeField::from_function(Dims3::new(4, 1, 1), &f, 0.0);
        // Centers at 0.125, 0.375, 0.625, 0.875.
        assert!((vf.get(0, 0, 0) - 0.125).abs() < 1e-6);
        assert!((vf.get(3, 0, 0) - 0.875).abs() < 1e-6);
    }

    #[test]
    fn from_function_passes_time() {
        let f = |_x: f64, _y: f64, _z: f64, t: f64| t as f32;
        let vf = VolumeField::from_function(Dims3::cube(2), &f, 0.75);
        assert_eq!(vf.get(1, 1, 1), 0.75);
    }

    #[test]
    fn trilinear_matches_exact_on_linear_field() {
        let vf = ramp();
        // At fractional voxel coordinate x the linear ramp interpolates to
        // x - 0.5 (samples at centers).
        let v = vf.sample_trilinear(3.0, 2.0, 1.0);
        assert!((v - 2.5).abs() < 1e-6);
    }

    #[test]
    fn trilinear_clamps_at_edges() {
        let vf = ramp();
        assert_eq!(vf.sample_trilinear(-5.0, 0.0, 0.0), 0.0);
        assert_eq!(vf.sample_trilinear(100.0, 3.0, 1.0), 7.0);
    }

    #[test]
    fn extract_block_matches_get() {
        let vf = ramp();
        let layout = BrickLayout::new(vf.dims, Dims3::new(4, 2, 2));
        for id in layout.block_ids() {
            let blk = vf.extract_block(&layout, id);
            let (s, e) = layout.voxel_range(id);
            let mut i = 0;
            for z in s.nz..e.nz {
                for y in s.ny..e.ny {
                    for x in s.nx..e.nx {
                        assert_eq!(blk[i], vf.get(x, y, z));
                        i += 1;
                    }
                }
            }
            assert_eq!(i, blk.len());
        }
    }

    #[test]
    fn extract_partial_edge_block() {
        let dims = Dims3::new(5, 3, 2);
        let data: Vec<f32> = (0..dims.count()).map(|i| i as f32).collect();
        let vf = VolumeField::from_vec(dims, data);
        let layout = BrickLayout::new(dims, Dims3::new(4, 4, 4));
        // Second x-block is 1 voxel wide.
        let id = layout.block_at(1, 0, 0);
        let blk = vf.extract_block(&layout, id);
        assert_eq!(blk.len(), 1 * 3 * 2);
        assert_eq!(blk[0], vf.get(4, 0, 0));
    }

    #[test]
    fn min_max_of_ramp() {
        let (lo, hi) = ramp().min_max();
        assert_eq!(lo, 0.0);
        assert_eq!(hi, 7.0);
    }
}
