//! Lossless block compression.
//!
//! Out-of-core visualization is bandwidth-bound, and simulation volumes
//! compress well: ambient regions are near-constant and smooth fields have
//! highly repetitive upper bytes. This codec splits the f32 payload into
//! its four byte planes (all sign/exponent bytes together, etc.) and
//! run-length encodes each plane — zero-dependency, deterministic, and
//! exactly lossless, so data-dependent analytics are unaffected.
//!
//! The paper's cost model charges I/O by bytes moved, so compressed blocks
//! directly shrink simulated (and real) fetch times for ambient regions.

use serde::{Deserialize, Serialize};

/// Available block codecs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Codec {
    /// No compression: 4 bytes per voxel.
    #[default]
    Raw,
    /// Byte-plane split + per-plane run-length encoding.
    PlaneRle,
}

impl Codec {
    /// Wire tag stored in block frames.
    pub fn tag(self) -> u8 {
        match self {
            Codec::Raw => 0,
            Codec::PlaneRle => 1,
        }
    }

    /// Codec from a wire tag.
    pub fn from_tag(tag: u8) -> Option<Codec> {
        match tag {
            0 => Some(Codec::Raw),
            1 => Some(Codec::PlaneRle),
            _ => None,
        }
    }

    /// Compress a voxel payload.
    pub fn compress(self, data: &[f32]) -> Vec<u8> {
        match self {
            Codec::Raw => raw_bytes(data),
            Codec::PlaneRle => plane_rle_compress(data),
        }
    }

    /// Decompress back into voxels; `count` is the expected voxel count.
    pub fn decompress(self, bytes: &[u8], count: usize) -> Result<Vec<f32>, String> {
        match self {
            Codec::Raw => raw_floats(bytes, count),
            Codec::PlaneRle => plane_rle_decompress(bytes, count),
        }
    }
}

fn raw_bytes(data: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * 4);
    for v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn raw_floats(bytes: &[u8], count: usize) -> Result<Vec<f32>, String> {
    if bytes.len() != count * 4 {
        return Err(format!("raw payload length {} != {}", bytes.len(), count * 4));
    }
    Ok(bytes.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect())
}

/// RLE of one byte plane: pairs `(run_len_u8, value)`, runs capped at 255.
fn rle_encode(plane: impl Iterator<Item = u8>, out: &mut Vec<u8>) {
    let mut run: Option<(u8, u32)> = None;
    for b in plane {
        match run {
            Some((v, n)) if v == b && n < 255 => run = Some((v, n + 1)),
            Some((v, n)) => {
                out.push(n as u8);
                out.push(v);
                run = Some((b, 1));
                let _ = n;
            }
            None => run = Some((b, 1)),
        }
    }
    if let Some((v, n)) = run {
        out.push(n as u8);
        out.push(v);
    }
}

fn plane_rle_compress(data: &[f32]) -> Vec<u8> {
    let n = data.len();
    let mut out = Vec::new();
    // Per-plane sections, each prefixed by its encoded length (u32 LE).
    for plane_idx in 0..4usize {
        let mut section = Vec::new();
        rle_encode(data.iter().map(|v| v.to_le_bytes()[plane_idx]), &mut section);
        out.extend_from_slice(&(section.len() as u32).to_le_bytes());
        out.extend_from_slice(&section);
    }
    let _ = n;
    out
}

fn plane_rle_decompress(bytes: &[u8], count: usize) -> Result<Vec<f32>, String> {
    let mut planes: Vec<Vec<u8>> = Vec::with_capacity(4);
    let mut cursor = 0usize;
    for plane_idx in 0..4 {
        if cursor + 4 > bytes.len() {
            return Err(format!("truncated plane {plane_idx} header"));
        }
        let len = u32::from_le_bytes([
            bytes[cursor],
            bytes[cursor + 1],
            bytes[cursor + 2],
            bytes[cursor + 3],
        ]) as usize;
        cursor += 4;
        if cursor + len > bytes.len() {
            return Err(format!("truncated plane {plane_idx} body"));
        }
        let section = &bytes[cursor..cursor + len];
        cursor += len;
        if !section.len().is_multiple_of(2) {
            return Err(format!("odd RLE section in plane {plane_idx}"));
        }
        let mut plane = Vec::with_capacity(count);
        for pair in section.chunks_exact(2) {
            let (n, v) = (pair[0] as usize, pair[1]);
            if n == 0 {
                return Err("zero-length run".to_string());
            }
            plane.resize(plane.len() + n, v);
        }
        if plane.len() != count {
            return Err(format!(
                "plane {plane_idx} decoded {} voxels, expected {count}",
                plane.len()
            ));
        }
        planes.push(plane);
    }
    if cursor != bytes.len() {
        return Err("trailing bytes after final plane".to_string());
    }
    Ok((0..count)
        .map(|i| f32::from_le_bytes([planes[0][i], planes[1][i], planes[2][i], planes[3][i]]))
        .collect())
}

/// Compression ratio achieved on a payload (`raw bytes / encoded bytes`).
pub fn compression_ratio(codec: Codec, data: &[f32]) -> f64 {
    if data.is_empty() {
        return 1.0;
    }
    let encoded = codec.compress(data).len().max(1);
    (data.len() * 4) as f64 / encoded as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(codec: Codec, data: &[f32]) {
        let bytes = codec.compress(data);
        let back = codec.decompress(&bytes, data.len()).unwrap();
        assert_eq!(back.len(), data.len());
        for (a, b) in data.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits(), "bit-exact roundtrip required");
        }
    }

    #[test]
    fn raw_roundtrip() {
        roundtrip(Codec::Raw, &[1.0, -2.5, 0.0, f32::MIN_POSITIVE, 1e30]);
    }

    #[test]
    fn rle_roundtrip_constant() {
        roundtrip(Codec::PlaneRle, &[3.25; 1000]);
    }

    #[test]
    fn rle_roundtrip_varied() {
        let data: Vec<f32> = (0..4097).map(|i| (i as f32 * 0.37).sin() * 1000.0).collect();
        roundtrip(Codec::PlaneRle, &data);
    }

    #[test]
    fn rle_roundtrip_special_values() {
        roundtrip(
            Codec::PlaneRle,
            &[0.0, -0.0, f32::INFINITY, f32::NEG_INFINITY, f32::MIN_POSITIVE, 1.0],
        );
    }

    #[test]
    fn nan_payload_roundtrips_bitwise() {
        let nan1 = f32::from_bits(0x7FC0_0001);
        let nan2 = f32::from_bits(0xFFC0_0002);
        let data = vec![nan1, 1.0, nan2];
        let bytes = Codec::PlaneRle.compress(&data);
        let back = Codec::PlaneRle.decompress(&bytes, 3).unwrap();
        assert_eq!(back[0].to_bits(), nan1.to_bits());
        assert_eq!(back[2].to_bits(), nan2.to_bits());
    }

    #[test]
    fn empty_payload() {
        roundtrip(Codec::PlaneRle, &[]);
        roundtrip(Codec::Raw, &[]);
    }

    #[test]
    fn ambient_blocks_compress_massively() {
        let r = compression_ratio(Codec::PlaneRle, &[0.0; 32 * 32 * 32]);
        assert!(r > 100.0, "ambient ratio only {r}");
    }

    #[test]
    fn smooth_blocks_still_compress() {
        // A smooth ramp: upper byte planes are long runs.
        let data: Vec<f32> = (0..4096).map(|i| i as f32 / 4096.0).collect();
        let r = compression_ratio(Codec::PlaneRle, &data);
        assert!(r > 1.5, "smooth ratio only {r}");
    }

    #[test]
    fn incompressible_noise_does_not_explode() {
        // Worst case for RLE is alternating bytes: ≤ 2x expansion.
        let data: Vec<f32> =
            (0..2048).map(|i| f32::from_bits((i as u32).wrapping_mul(2654435761))).collect();
        let encoded = Codec::PlaneRle.compress(&data).len();
        assert!(encoded <= data.len() * 8 + 16, "expansion {encoded}");
        roundtrip(Codec::PlaneRle, &data);
    }

    #[test]
    fn decompress_rejects_corruption() {
        let data = vec![1.0f32; 64];
        let bytes = Codec::PlaneRle.compress(&data);
        assert!(Codec::PlaneRle.decompress(&bytes[..bytes.len() - 1], 64).is_err());
        assert!(Codec::PlaneRle.decompress(&bytes, 63).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(Codec::PlaneRle.decompress(&extra, 64).is_err());
        assert!(Codec::Raw.decompress(&[0u8; 7], 2).is_err());
    }

    #[test]
    fn tags_roundtrip() {
        for c in [Codec::Raw, Codec::PlaneRle] {
            assert_eq!(Codec::from_tag(c.tag()), Some(c));
        }
        assert_eq!(Codec::from_tag(99), None);
    }
}
