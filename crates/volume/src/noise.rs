//! Deterministic lattice value noise and fractal Brownian motion.
//!
//! The synthetic stand-ins for the paper's combustion and climate datasets
//! need spatially coherent "turbulence" so that block entropy varies the way
//! it does in real simulation output (smooth ambient regions → low entropy,
//! feature-rich regions → high entropy). A seeded hash-lattice value noise
//! gives that without any external data.

/// Seeded value-noise generator over `R^3`, smooth (C1) and in `[-1, 1]`.
#[derive(Debug, Clone, Copy)]
pub struct ValueNoise {
    seed: u64,
}

impl ValueNoise {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        ValueNoise { seed }
    }

    /// Hash a lattice point to a pseudo-random value in `[-1, 1]`.
    #[inline]
    fn lattice(&self, x: i64, y: i64, z: i64) -> f64 {
        // SplitMix64-style avalanche over the packed coordinates.
        let mut h = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(x as u64))
            .wrapping_add(0xBF58_476D_1CE4_E5B9u64.wrapping_mul(y as u64))
            .wrapping_add(0x94D0_49BB_1331_11EBu64.wrapping_mul(z as u64));
        h ^= h >> 30;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        // Map to [-1, 1].
        (h >> 11) as f64 / ((1u64 << 53) as f64) * 2.0 - 1.0
    }

    /// Smooth interpolated noise at a continuous point, in `[-1, 1]`.
    pub fn sample(&self, x: f64, y: f64, z: f64) -> f64 {
        let (x0, y0, z0) = (x.floor(), y.floor(), z.floor());
        let (fx, fy, fz) = (x - x0, y - y0, z - z0);
        // Smoothstep fade for C1 continuity at lattice boundaries.
        let fade = |t: f64| t * t * (3.0 - 2.0 * t);
        let (ux, uy, uz) = (fade(fx), fade(fy), fade(fz));
        let (ix, iy, iz) = (x0 as i64, y0 as i64, z0 as i64);

        let mut c = [0.0f64; 8];
        for (i, v) in c.iter_mut().enumerate() {
            let dx = (i & 1) as i64;
            let dy = ((i >> 1) & 1) as i64;
            let dz = ((i >> 2) & 1) as i64;
            *v = self.lattice(ix + dx, iy + dy, iz + dz);
        }
        let lerp = |a: f64, b: f64, t: f64| a + (b - a) * t;
        let x00 = lerp(c[0], c[1], ux);
        let x10 = lerp(c[2], c[3], ux);
        let x01 = lerp(c[4], c[5], ux);
        let x11 = lerp(c[6], c[7], ux);
        let y0v = lerp(x00, x10, uy);
        let y1v = lerp(x01, x11, uy);
        lerp(y0v, y1v, uz)
    }

    /// Fractal Brownian motion: `octaves` layers of self-similar noise.
    /// Result stays in `[-1, 1]` (normalized by the geometric weight sum).
    pub fn fbm(&self, x: f64, y: f64, z: f64, octaves: u32, lacunarity: f64, gain: f64) -> f64 {
        let mut amp = 1.0;
        let mut freq = 1.0;
        let mut sum = 0.0;
        let mut norm = 0.0;
        for octave in 0..octaves {
            // Decorrelate octaves by shifting the seed.
            let layer = ValueNoise::new(self.seed.wrapping_add(octave as u64 * 0x9E37_79B9));
            sum += amp * layer.sample(x * freq, y * freq, z * freq);
            norm += amp;
            amp *= gain;
            freq *= lacunarity;
        }
        if norm > 0.0 {
            sum / norm
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_is_deterministic_per_seed() {
        let a = ValueNoise::new(11);
        let b = ValueNoise::new(11);
        let c = ValueNoise::new(12);
        assert_eq!(a.sample(1.3, 2.7, 0.2), b.sample(1.3, 2.7, 0.2));
        assert_ne!(a.sample(1.3, 2.7, 0.2), c.sample(1.3, 2.7, 0.2));
    }

    #[test]
    fn noise_is_bounded() {
        let n = ValueNoise::new(5);
        for i in 0..2000 {
            let t = i as f64 * 0.173;
            let v = n.sample(t, t * 0.7, t * 1.3);
            assert!((-1.0..=1.0).contains(&v), "noise escaped bounds: {v}");
        }
    }

    #[test]
    fn noise_is_continuous() {
        // Small input step ⇒ small output step.
        let n = ValueNoise::new(5);
        let mut prev = n.sample(0.0, 0.5, 0.5);
        for i in 1..10_000 {
            let v = n.sample(i as f64 * 1e-3, 0.5, 0.5);
            assert!((v - prev).abs() < 0.02, "jump at step {i}");
            prev = v;
        }
    }

    #[test]
    fn noise_varies_in_space() {
        let n = ValueNoise::new(5);
        let samples: Vec<f64> =
            (0..100).map(|i| n.sample(i as f64 * 0.61, i as f64 * 0.37, 0.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!(var > 0.01, "noise is nearly constant (var = {var})");
    }

    #[test]
    fn fbm_is_bounded_and_rougher_with_octaves() {
        let n = ValueNoise::new(9);
        for i in 0..500 {
            let t = i as f64 * 0.217;
            let v = n.fbm(t, -t, t * 0.5, 5, 2.0, 0.5);
            assert!((-1.0..=1.0).contains(&v));
        }
        // Higher octave count adds high-frequency energy: the mean absolute
        // finite difference must grow.
        // Total-variation proxy with a step fine enough to resolve the
        // highest octave's lattice (freq 2^5 = 32 ⇒ step << 1/32).
        let rough = |oct: u32| -> f64 {
            (1..4000)
                .map(|i| {
                    let a = n.fbm(i as f64 * 0.005, 0.0, 0.0, oct, 2.0, 0.5);
                    let b = n.fbm((i - 1) as f64 * 0.005, 0.0, 0.0, oct, 2.0, 0.5);
                    (a - b).abs()
                })
                .sum()
        };
        assert!(rough(6) > rough(1));
    }

    #[test]
    fn zero_octaves_is_zero() {
        assert_eq!(ValueNoise::new(1).fbm(0.3, 0.4, 0.5, 0, 2.0, 0.5), 0.0);
    }
}
