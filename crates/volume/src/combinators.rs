//! Scalar-field combinators: derived variables without materialization.
//!
//! §III-A's query-based visualization works on "possibly complex functions
//! of the primary variables". These combinators compose [`ScalarFunction`]s
//! lazily — a derived variable (difference of two fields, thresholded
//! magnitude, time-shifted comparison) plugs into block extraction, entropy
//! importance, and rendering exactly like a primary variable, with no
//! intermediate grid.

use crate::field::ScalarFunction;

/// Pointwise sum of two fields.
pub struct Sum<A, B>(pub A, pub B);

impl<A: ScalarFunction, B: ScalarFunction> ScalarFunction for Sum<A, B> {
    fn eval(&self, x: f64, y: f64, z: f64, t: f64) -> f32 {
        self.0.eval(x, y, z, t) + self.1.eval(x, y, z, t)
    }
}

/// Pointwise difference `A - B` (e.g. anomaly against a reference field).
pub struct Diff<A, B>(pub A, pub B);

impl<A: ScalarFunction, B: ScalarFunction> ScalarFunction for Diff<A, B> {
    fn eval(&self, x: f64, y: f64, z: f64, t: f64) -> f32 {
        self.0.eval(x, y, z, t) - self.1.eval(x, y, z, t)
    }
}

/// Affine transform `scale * A + offset`.
pub struct Affine<A> {
    /// Wrapped field.
    pub inner: A,
    /// Multiplicative factor.
    pub scale: f32,
    /// Additive offset.
    pub offset: f32,
}

impl<A: ScalarFunction> ScalarFunction for Affine<A> {
    fn eval(&self, x: f64, y: f64, z: f64, t: f64) -> f32 {
        self.inner.eval(x, y, z, t) * self.scale + self.offset
    }
}

/// Binary threshold: 1 where `A > threshold`, else 0 — the indicator field
/// behind "voxels where PM10 exceeds the contamination level" queries.
pub struct Threshold<A> {
    /// Wrapped field.
    pub inner: A,
    /// Cut value.
    pub threshold: f32,
}

impl<A: ScalarFunction> ScalarFunction for Threshold<A> {
    fn eval(&self, x: f64, y: f64, z: f64, t: f64) -> f32 {
        if self.inner.eval(x, y, z, t) > self.threshold {
            1.0
        } else {
            0.0
        }
    }
}

/// Evaluate the wrapped field at a fixed time (freezes a time-varying
/// field so it can be compared across timesteps).
pub struct AtTime<A> {
    /// Wrapped field.
    pub inner: A,
    /// Frozen normalized time.
    pub time: f64,
}

impl<A: ScalarFunction> ScalarFunction for AtTime<A> {
    fn eval(&self, x: f64, y: f64, z: f64, _t: f64) -> f32 {
        self.inner.eval(x, y, z, self.time)
    }
}

/// Temporal derivative by finite difference: `(A(t+dt) - A(t)) / dt` —
/// highlights where a time-varying field is changing (storm fronts).
pub struct TimeDerivative<A> {
    /// Wrapped field.
    pub inner: A,
    /// Normalized-time step of the finite difference.
    pub dt: f64,
}

impl<A: ScalarFunction> ScalarFunction for TimeDerivative<A> {
    fn eval(&self, x: f64, y: f64, z: f64, t: f64) -> f32 {
        let a = self.inner.eval(x, y, z, t);
        let b = self.inner.eval(x, y, z, (t + self.dt).min(1.0));
        (b - a) / self.dt as f32
    }
}

/// Euclidean magnitude of two component fields (wind speed from u/v).
pub struct Magnitude2<A, B>(pub A, pub B);

impl<A: ScalarFunction, B: ScalarFunction> ScalarFunction for Magnitude2<A, B> {
    fn eval(&self, x: f64, y: f64, z: f64, t: f64) -> f32 {
        let a = self.0.eval(x, y, z, t);
        let b = self.1.eval(x, y, z, t);
        (a * a + b * b).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dims::Dims3;
    use crate::field::VolumeField;

    fn fx() -> impl ScalarFunction {
        |x: f64, _y: f64, _z: f64, _t: f64| x as f32
    }

    fn fy() -> impl ScalarFunction {
        |_x: f64, y: f64, _z: f64, _t: f64| y as f32
    }

    fn ft() -> impl ScalarFunction {
        |_x: f64, _y: f64, _z: f64, t: f64| t as f32
    }

    #[test]
    fn sum_and_diff() {
        let s = Sum(fx(), fy());
        assert_eq!(s.eval(0.25, 0.5, 0.0, 0.0), 0.75);
        let d = Diff(fx(), fy());
        assert_eq!(d.eval(0.25, 0.5, 0.0, 0.0), -0.25);
    }

    #[test]
    fn affine_transform() {
        let a = Affine { inner: fx(), scale: 2.0, offset: 1.0 };
        assert_eq!(a.eval(0.5, 0.0, 0.0, 0.0), 2.0);
    }

    #[test]
    fn threshold_indicator() {
        let t = Threshold { inner: fx(), threshold: 0.5 };
        assert_eq!(t.eval(0.6, 0.0, 0.0, 0.0), 1.0);
        assert_eq!(t.eval(0.4, 0.0, 0.0, 0.0), 0.0);
        assert_eq!(t.eval(0.5, 0.0, 0.0, 0.0), 0.0); // strict
    }

    #[test]
    fn at_time_freezes() {
        let f = AtTime { inner: ft(), time: 0.25 };
        assert_eq!(f.eval(0.0, 0.0, 0.0, 0.9), 0.25);
    }

    #[test]
    fn time_derivative_of_linear_time_is_one() {
        let d = TimeDerivative { inner: ft(), dt: 0.1 };
        let v = d.eval(0.0, 0.0, 0.0, 0.2);
        assert!((v - 1.0).abs() < 1e-5, "dt/dt = {v}");
    }

    #[test]
    fn magnitude_of_3_4_is_5() {
        let m = Magnitude2(
            Affine { inner: fx(), scale: 0.0, offset: 3.0 },
            Affine { inner: fy(), scale: 0.0, offset: 4.0 },
        );
        assert_eq!(m.eval(0.0, 0.0, 0.0, 0.0), 5.0);
    }

    #[test]
    fn combinators_materialize_like_primaries() {
        // A derived field drops into VolumeField::from_function unchanged.
        let derived = Threshold { inner: Sum(fx(), fy()), threshold: 1.0 };
        let vf = VolumeField::from_function(Dims3::cube(8), &derived, 0.0);
        let (lo, hi) = vf.min_max();
        assert_eq!(lo, 0.0);
        assert_eq!(hi, 1.0);
        // The indicator region is the corner x + y > 1.
        assert_eq!(vf.get(7, 7, 0), 1.0);
        assert_eq!(vf.get(0, 0, 0), 0.0);
    }

    #[test]
    fn nesting_composes() {
        // |d/dt of (x + t)| at fixed x: derivative 1 everywhere.
        let nested = TimeDerivative { inner: Sum(fx(), ft()), dt: 0.05 };
        assert!((nested.eval(0.3, 0.0, 0.0, 0.1) - 1.0).abs() < 1e-4);
    }
}
