//! # viz-volume — volumetric data substrate
//!
//! Bricked volumes, synthetic dataset generators standing in for the
//! paper's proprietary simulation data (Table I), per-block statistics
//! (the Shannon-entropy importance measure of Eq. 2), and an on-disk block
//! store used as the slow end of the memory hierarchy.
//!
//! - [`dims`], [`layout`] — voxel grids and the uniform block partition.
//! - [`bvh`] — the cached per-layout spatial index accelerating Eq. 1 scans.
//! - [`field`] — materialized scalar fields and procedural generation.
//! - [`noise`] — seeded value noise / fBm used by the generators.
//! - [`datasets`] — the four Table I datasets as procedural stand-ins.
//! - [`stats`] — histograms and block entropy.
//! - [`store`] — framed on-disk and in-memory block stores.
//!
//! # Example
//!
//! ```
//! use viz_volume::{BrickLayout, DatasetKind, DatasetSpec, Dims3};
//! use viz_volume::stats::BlockStats;
//!
//! // A miniature 3d_ball (paper scale / 32 = 32^3), split into 8 blocks.
//! let spec = DatasetSpec::new(DatasetKind::Ball3d, 32, 7);
//! let field = spec.materialize(0, 0.0);
//! let layout = BrickLayout::new(field.dims, Dims3::cube(16));
//! assert_eq!(layout.num_blocks(), 8);
//!
//! // Per-block Shannon entropy (Eq. 2) over the global value range:
//! let (lo, hi) = field.min_max();
//! let id = layout.block_at(0, 0, 0);
//! let stats = BlockStats::compute(&field.extract_block(&layout, id), lo, hi, 64);
//! assert!(stats.entropy >= 0.0);
//! ```

#![warn(missing_docs)]

pub mod bvh;
pub mod checksum;
pub mod codec;
pub mod combinators;
pub mod datasets;
pub mod dims;
pub mod field;
pub mod gradient;
pub mod layout;
pub mod lod;
pub mod noise;
pub mod stats;
pub mod store;
pub mod timevarying;

pub use bvh::BlockBvh;
pub use checksum::crc32;
pub use codec::Codec;
pub use datasets::{DatasetKind, DatasetSpec};
pub use dims::Dims3;
pub use field::{ScalarFunction, VolumeField};
pub use gradient::{block_mean_gradient, gradient_at, gradient_magnitude};
pub use layout::{BlockId, BrickLayout};
pub use lod::{LodLevel, LodPyramid};
pub use stats::{BlockStats, Histogram};
pub use store::{BlockKey, BlockSource, DiskBlockStore, MemBlockStore};
pub use timevarying::{FieldCache, FieldKey};
