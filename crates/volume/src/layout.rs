//! Brick layout: the uniform block partition of a volume (§IV, "a volume
//! data is divided into a set of uniform-size blocks") and its mapping into
//! the paper's normalized world coordinates (volume edge = 2, centered at
//! the origin; see Fig. 10).

use crate::bvh::BlockBvh;
use crate::dims::Dims3;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;
use viz_geom::{Aabb, Vec3};

/// Identifier of a block within a layout (dense, `0..layout.num_blocks()`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(/** Dense index within the layout. */ pub u32);

impl BlockId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// The uniform partition of a voxel grid into blocks, plus the voxel→world
/// transform. World coordinates normalize the *longest* volume edge to 2
/// (so coordinates span `[-1, 1]` on that axis), exactly the normalization
/// the paper's radius model assumes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BrickLayout {
    /// Voxel dimensions of the whole volume.
    pub volume: Dims3,
    /// Nominal voxel dimensions of one block (edge blocks may be smaller).
    pub block: Dims3,
    /// Number of blocks along each axis.
    pub grid: Dims3,
    /// Lazily-built spatial index over the block AABBs (see
    /// [`Self::block_bvh`]); derived data, excluded from comparison and
    /// serialization.
    #[serde(skip)]
    bvh: OnceLock<BlockBvh>,
}

impl PartialEq for BrickLayout {
    fn eq(&self, other: &Self) -> bool {
        self.volume == other.volume && self.block == other.block && self.grid == other.grid
    }
}

impl Eq for BrickLayout {}

impl BrickLayout {
    /// Partition `volume` into blocks of nominal size `block`.
    pub fn new(volume: Dims3, block: Dims3) -> Self {
        assert!(block.nx > 0 && block.ny > 0 && block.nz > 0, "block dims must be positive");
        assert!(volume.nx > 0 && volume.ny > 0 && volume.nz > 0, "volume dims must be positive");
        let grid = volume.blocks_for(block);
        BrickLayout { volume, block, grid, bvh: OnceLock::new() }
    }

    /// Partition targeting approximately `target_blocks` equal cubes.
    ///
    /// The paper reports block *counts* (1024, 2048, 4096); this helper maps
    /// a count to per-axis splits proportional to the volume's aspect ratio.
    pub fn with_target_blocks(volume: Dims3, target_blocks: usize) -> Self {
        assert!(target_blocks > 0);
        // Choose per-axis split counts s_x*s_y*s_z ≈ target, with splits
        // proportional to edge lengths (cube-ish blocks).
        let (vx, vy, vz) = (volume.nx as f64, volume.ny as f64, volume.nz as f64);
        let geo = (vx * vy * vz).powf(1.0 / 3.0);
        let k = (target_blocks as f64).powf(1.0 / 3.0);
        let sx = ((vx / geo * k).round() as usize).max(1).min(volume.nx);
        let sy = ((vy / geo * k).round() as usize).max(1).min(volume.ny);
        let sz = ((vz / geo * k).round() as usize).max(1).min(volume.nz);
        let block =
            Dims3::new(volume.nx.div_ceil(sx), volume.ny.div_ceil(sy), volume.nz.div_ceil(sz));
        BrickLayout::new(volume, block)
    }

    /// Total number of blocks.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.grid.count()
    }

    /// Iterate over all block ids.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.num_blocks() as u32).map(BlockId)
    }

    /// Block grid coordinates of `id`.
    #[inline]
    pub fn block_coords(&self, id: BlockId) -> (usize, usize, usize) {
        self.grid.coords(id.index())
    }

    /// Block id at block-grid coordinates.
    #[inline]
    pub fn block_at(&self, bx: usize, by: usize, bz: usize) -> BlockId {
        debug_assert!(self.grid.contains(bx, by, bz));
        BlockId(self.grid.index(bx, by, bz) as u32)
    }

    /// Block containing voxel `(x, y, z)`.
    #[inline]
    pub fn block_of_voxel(&self, x: usize, y: usize, z: usize) -> BlockId {
        debug_assert!(self.volume.contains(x, y, z));
        self.block_at(x / self.block.nx, y / self.block.ny, z / self.block.nz)
    }

    /// Voxel extent of `id`: inclusive start, exclusive end per axis.
    /// Edge blocks are clipped to the volume.
    pub fn voxel_range(&self, id: BlockId) -> (Dims3, Dims3) {
        let (bx, by, bz) = self.block_coords(id);
        let start = Dims3::new(bx * self.block.nx, by * self.block.ny, bz * self.block.nz);
        let end = Dims3::new(
            (start.nx + self.block.nx).min(self.volume.nx),
            (start.ny + self.block.ny).min(self.volume.ny),
            (start.nz + self.block.nz).min(self.volume.nz),
        );
        (start, end)
    }

    /// Actual voxel dimensions of `id` (clipped at volume edges).
    pub fn block_dims(&self, id: BlockId) -> Dims3 {
        let (s, e) = self.voxel_range(id);
        Dims3::new(e.nx - s.nx, e.ny - s.ny, e.nz - s.nz)
    }

    /// Size in bytes of one nominal (full) block of `f32` voxels.
    pub fn nominal_block_bytes(&self) -> usize {
        self.block.bytes_f32()
    }

    /// World-space scale: voxels → normalized coordinates where the longest
    /// edge spans `[-1, 1]`.
    fn world_scale(&self) -> f64 {
        2.0 / self.volume.max_edge() as f64
    }

    /// Map a voxel-space point to world space.
    pub fn voxel_to_world(&self, p: Vec3) -> Vec3 {
        let s = self.world_scale();
        let half = Vec3::new(
            self.volume.nx as f64 * 0.5,
            self.volume.ny as f64 * 0.5,
            self.volume.nz as f64 * 0.5,
        );
        (p - half) * s
    }

    /// Map a world-space point back to (fractional) voxel coordinates.
    pub fn world_to_voxel(&self, p: Vec3) -> Vec3 {
        let s = self.world_scale();
        let half = Vec3::new(
            self.volume.nx as f64 * 0.5,
            self.volume.ny as f64 * 0.5,
            self.volume.nz as f64 * 0.5,
        );
        p / s + half
    }

    /// World-space bounding box of the whole volume.
    pub fn world_bounds(&self) -> Aabb {
        Aabb::new(
            self.voxel_to_world(Vec3::ZERO),
            self.voxel_to_world(Vec3::new(
                self.volume.nx as f64,
                self.volume.ny as f64,
                self.volume.nz as f64,
            )),
        )
    }

    /// World-space bounding box of one block (its corners are the `b_i` of
    /// the paper's Eq. 1).
    pub fn block_bounds(&self, id: BlockId) -> Aabb {
        let (s, e) = self.voxel_range(id);
        Aabb::new(
            self.voxel_to_world(Vec3::new(s.nx as f64, s.ny as f64, s.nz as f64)),
            self.voxel_to_world(Vec3::new(e.nx as f64, e.ny as f64, e.nz as f64)),
        )
    }

    /// World-space bounds of every block, indexed by `BlockId`.
    pub fn all_block_bounds(&self) -> Vec<Aabb> {
        self.block_ids().map(|id| self.block_bounds(id)).collect()
    }

    /// The spatial index over this layout's block AABBs, built on first use
    /// and cached for the layout's lifetime (thread-safe). Accelerated
    /// queries through it return exactly the brute-force Eq. 1 visible set.
    pub fn block_bvh(&self) -> &BlockBvh {
        self.bvh.get_or_init(|| BlockBvh::new(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_partition_counts() {
        let l = BrickLayout::new(Dims3::cube(128), Dims3::cube(32));
        assert_eq!(l.grid, Dims3::cube(4));
        assert_eq!(l.num_blocks(), 64);
    }

    #[test]
    fn partial_edge_blocks_are_clipped() {
        let l = BrickLayout::new(Dims3::new(100, 64, 64), Dims3::cube(32));
        assert_eq!(l.grid, Dims3::new(4, 2, 2));
        // Last x-block covers voxels 96..100 → width 4.
        let id = l.block_at(3, 0, 0);
        assert_eq!(l.block_dims(id), Dims3::new(4, 32, 32));
    }

    #[test]
    fn block_of_voxel_matches_ranges() {
        let l = BrickLayout::new(Dims3::new(70, 50, 30), Dims3::new(16, 16, 16));
        for &(x, y, z) in &[(0, 0, 0), (69, 49, 29), (16, 16, 16), (15, 31, 17)] {
            let id = l.block_of_voxel(x, y, z);
            let (s, e) = l.voxel_range(id);
            assert!(x >= s.nx && x < e.nx);
            assert!(y >= s.ny && y < e.ny);
            assert!(z >= s.nz && z < e.nz);
        }
    }

    #[test]
    fn voxel_ranges_tile_the_volume_exactly() {
        let l = BrickLayout::new(Dims3::new(33, 17, 9), Dims3::new(8, 8, 8));
        let mut covered = vec![false; l.volume.count()];
        for id in l.block_ids() {
            let (s, e) = l.voxel_range(id);
            for z in s.nz..e.nz {
                for y in s.ny..e.ny {
                    for x in s.nx..e.nx {
                        let idx = l.volume.index(x, y, z);
                        assert!(!covered[idx], "voxel covered twice");
                        covered[idx] = true;
                    }
                }
            }
        }
        assert!(covered.iter().all(|&c| c), "some voxel uncovered");
    }

    #[test]
    fn world_bounds_longest_edge_is_two() {
        let l = BrickLayout::new(Dims3::new(800, 686, 215), Dims3::cube(64));
        let wb = l.world_bounds();
        let e = wb.extent();
        assert!((e.x - 2.0).abs() < 1e-12); // longest axis normalized
        assert!(e.y < 2.0 && e.z < 2.0);
        assert!(wb.center().norm() < 1e-12); // centered at origin
    }

    #[test]
    fn voxel_world_roundtrip() {
        let l = BrickLayout::new(Dims3::new(100, 50, 25), Dims3::cube(16));
        let p = Vec3::new(12.5, 40.0, 3.0);
        let back = l.world_to_voxel(l.voxel_to_world(p));
        assert!(p.distance(back) < 1e-9);
    }

    #[test]
    fn block_bounds_tile_world_bounds() {
        let l = BrickLayout::new(Dims3::cube(64), Dims3::cube(16));
        let wb = l.world_bounds();
        let mut total = 0.0;
        for id in l.block_ids() {
            let bb = l.block_bounds(id);
            total += bb.volume();
            // Every block inside world bounds (with tolerance).
            assert!(wb.contains(bb.center()));
        }
        assert!((total - wb.volume()).abs() < 1e-9);
    }

    #[test]
    fn target_blocks_is_approximate_for_cubes() {
        for target in [64usize, 512, 1024, 2048, 4096] {
            let l = BrickLayout::with_target_blocks(Dims3::cube(256), target);
            let n = l.num_blocks();
            // Within a factor of 2 of the request.
            assert!(n >= target / 2 && n <= target * 2, "target {target} produced {n} blocks");
        }
    }

    #[test]
    fn target_blocks_respects_aspect_ratio() {
        // An elongated volume should be split more along its long axis.
        let l = BrickLayout::with_target_blocks(Dims3::new(400, 100, 100), 64);
        assert!(l.grid.nx > l.grid.ny);
        assert!(l.grid.nx > l.grid.nz);
    }

    #[test]
    fn paper_block_example_lifted_rr() {
        // §V-B2: lifted_rr 800×800×400 partitioned into 1024 blocks with
        // block size 50×100×50 → grid 16×8×8.
        let l = BrickLayout::new(Dims3::new(800, 800, 400), Dims3::new(50, 100, 50));
        assert_eq!(l.num_blocks(), 1024);
    }

    #[test]
    #[should_panic]
    fn zero_block_dim_panics() {
        BrickLayout::new(Dims3::cube(8), Dims3::new(0, 1, 1));
    }
}
