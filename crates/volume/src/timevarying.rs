//! Time-varying dataset access with a bounded materialization cache.
//!
//! The climate dataset is time-varying (Table I); playback touches one or
//! two timesteps at a time while the rest stay procedural. `FieldCache`
//! memoizes materialized `(variable, timestep)` grids under an LRU bound so
//! examples and sessions can scrub through time without either re-running
//! the generator per frame or holding every timestep in memory.

use crate::datasets::DatasetSpec;
use crate::field::VolumeField;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Key of a materialized grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FieldKey {
    /// Variable index.
    pub var: usize,
    /// Timestep index.
    pub time: usize,
}

/// Bounded cache of materialized fields for one dataset.
pub struct FieldCache {
    spec: DatasetSpec,
    capacity: usize,
    inner: Mutex<Inner>,
}

struct Inner {
    fields: HashMap<FieldKey, (Arc<VolumeField>, u64)>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl FieldCache {
    /// Cache up to `capacity` materialized `(var, time)` grids of `spec`.
    pub fn new(spec: DatasetSpec, capacity: usize) -> Self {
        assert!(capacity > 0, "field cache needs a positive capacity");
        FieldCache {
            spec,
            capacity,
            inner: Mutex::new(Inner { fields: HashMap::new(), clock: 0, hits: 0, misses: 0 }),
        }
    }

    /// The dataset this cache materializes.
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    /// Fetch (materializing on miss) the grid of `var` at timestep `time`.
    /// `time` is mapped to the generator's normalized `t` by the dataset's
    /// timestep count.
    pub fn get(&self, var: usize, time: usize) -> Arc<VolumeField> {
        let key = FieldKey { var, time };
        let steps = self.spec.kind.num_timesteps();
        assert!(time < steps, "timestep {time} out of range (dataset has {steps})");

        // Fast path under the lock.
        {
            let mut inner = self.inner.lock();
            inner.clock += 1;
            let clock = inner.clock;
            if let Some((field, stamp)) = inner.fields.get_mut(&key) {
                *stamp = clock;
                let out = Arc::clone(field);
                inner.hits += 1;
                return out;
            }
            inner.misses += 1;
        }

        // Materialize outside the lock (seconds of work).
        let t = if steps <= 1 { 0.0 } else { time as f64 / (steps - 1) as f64 };
        let field = Arc::new(self.spec.materialize(var, t));

        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        // Another thread may have raced us; keep whichever is present.
        let entry = inner.fields.entry(key).or_insert_with(|| (Arc::clone(&field), clock));
        let out = Arc::clone(&entry.0);
        // Evict LRU entries beyond capacity.
        while inner.fields.len() > self.capacity {
            if let Some((&victim, _)) = inner.fields.iter().min_by_key(|(_, (_, stamp))| *stamp) {
                inner.fields.remove(&victim);
            } else {
                break;
            }
        }
        out
    }

    /// Number of resident grids.
    pub fn len(&self) -> usize {
        self.inner.lock().fields.len()
    }

    /// `true` when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.hits, inner.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetKind;

    fn cache(cap: usize) -> FieldCache {
        // Tiny climate instance: multivariate and time-varying.
        FieldCache::new(DatasetSpec::new(DatasetKind::Climate, 16, 3), cap)
    }

    #[test]
    fn repeated_get_hits_cache() {
        let c = cache(4);
        let a = c.get(0, 0);
        let b = c.get(0, 0);
        assert!(Arc::ptr_eq(&a, &b), "second get must reuse the grid");
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn different_keys_materialize_separately() {
        let c = cache(4);
        let a = c.get(0, 0);
        let b = c.get(1, 0);
        let d = c.get(0, 1);
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &d));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let c = cache(2);
        c.get(0, 0);
        c.get(1, 0);
        c.get(0, 0); // refresh (0,0)
        c.get(2, 0); // evicts (1,0)
        assert_eq!(c.len(), 2);
        let (h0, m0) = c.stats();
        c.get(0, 0); // still resident → hit
        let (h1, _) = c.stats();
        assert_eq!(h1, h0 + 1);
        c.get(1, 0); // evicted → miss
        let (_, m1) = c.stats();
        assert_eq!(m1, m0 + 1);
    }

    #[test]
    fn timesteps_map_to_distinct_data() {
        let c = cache(8);
        let t0 = c.get(1, 0); // wind at t=0
        let t1 = c.get(1, 7); // wind at the final timestep
        assert_ne!(t0.as_ref(), t1.as_ref(), "typhoon must move between timesteps");
    }

    #[test]
    fn concurrent_access_is_safe_and_coherent() {
        let c = Arc::new(cache(4));
        let mut handles = Vec::new();
        for i in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for j in 0..5 {
                    let f = c.get((i + j) % 3, 0);
                    assert!(f.dims.count() > 0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.len() <= 4);
    }

    #[test]
    #[should_panic]
    fn out_of_range_timestep_panics() {
        cache(2).get(0, 99);
    }
}
