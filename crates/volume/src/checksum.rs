//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) for block and
//! table frames.
//!
//! The store's frames travel HDD → SSD → DRAM and sit on disk for the
//! lifetime of a dataset; silent bit-rot there would otherwise surface as
//! NaN voxels or skewed entropy tables far downstream. Framing every
//! payload with a CRC turns corruption into an `InvalidData` error at
//! decode time, where the fetch path's fail-fast classification handles
//! it. Table-driven, one table built on first use.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    })
}

/// CRC-32 of `data` (IEEE, as used by zlib/PNG/Ethernet).
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = t[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data: Vec<u8> = (0..=255).collect();
        let good = crc32(&data);
        for i in [0usize, 17, 128, 255] {
            let mut bad = data.clone();
            bad[i] ^= 0x01;
            assert_ne!(crc32(&bad), good, "flip at byte {i} must change the crc");
        }
    }
}
