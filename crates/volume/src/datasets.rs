//! Synthetic stand-ins for the paper's experimental datasets (Table I).
//!
//! | name              | description            | resolution       | #vars | size  |
//! |-------------------|------------------------|------------------|-------|-------|
//! | `3d_ball`         | synthetic              | 1024×1024×1024   | 1     | 4 GB  |
//! | `lifted_mix_frac` | combustion simulation  | 800×686×215      | 1     | 472 MB|
//! | `lifted_rr`       | combustion simulation  | 800×800×400      | 1     | 1 GB  |
//! | `climate`         | climate simulation     | 294×258×98       | 244   | 7.2 GB|
//!
//! The real combustion/climate data is proprietary (Sandia/NASA), so each
//! dataset is replaced by a procedural generator that reproduces the two
//! properties the replacement policy actually depends on: the grid geometry
//! (hence block visibility) and a realistic spatial entropy distribution
//! (smooth ambient regions vs. high-variation feature regions). See
//! DESIGN.md §2 for the substitution argument.

use crate::dims::Dims3;
use crate::field::{ScalarFunction, VolumeField};
use crate::noise::ValueNoise;
use serde::{Deserialize, Serialize};

/// Identifier of one of the paper's four experimental datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Synthetic ball with continuous interior intensity changes.
    Ball3d,
    /// Combustion: stoichiometric mixture fraction of a lifted flame.
    LiftedMixFrac,
    /// Combustion: reaction rate of a lifted flame.
    LiftedRr,
    /// Multivariate, time-varying climate simulation.
    Climate,
}

impl DatasetKind {
    /// All four datasets in Table I order.
    pub const ALL: [DatasetKind; 4] = [
        DatasetKind::Ball3d,
        DatasetKind::LiftedMixFrac,
        DatasetKind::LiftedRr,
        DatasetKind::Climate,
    ];

    /// The paper's dataset name.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Ball3d => "3d_ball",
            DatasetKind::LiftedMixFrac => "lifted_mix_frac",
            DatasetKind::LiftedRr => "lifted_rr",
            DatasetKind::Climate => "climate",
        }
    }

    /// Table I description.
    pub fn description(&self) -> &'static str {
        match self {
            DatasetKind::Ball3d => "a synthetic dataset",
            DatasetKind::LiftedMixFrac => "a combustion simulation dataset",
            DatasetKind::LiftedRr => "a combustion simulation dataset",
            DatasetKind::Climate => "a climate simulation dataset",
        }
    }

    /// Full-scale resolution from Table I.
    pub fn full_resolution(&self) -> Dims3 {
        match self {
            DatasetKind::Ball3d => Dims3::cube(1024),
            DatasetKind::LiftedMixFrac => Dims3::new(800, 686, 215),
            DatasetKind::LiftedRr => Dims3::new(800, 800, 400),
            DatasetKind::Climate => Dims3::new(294, 258, 98),
        }
    }

    /// Number of variables (Table I).
    pub fn num_variables(&self) -> usize {
        match self {
            DatasetKind::Climate => 244,
            _ => 1,
        }
    }

    /// Number of timesteps our generator exposes (the paper's climate data
    /// is time-varying; the others are single-timestep).
    pub fn num_timesteps(&self) -> usize {
        match self {
            DatasetKind::Climate => 8,
            _ => 1,
        }
    }
}

/// A concrete dataset instance: a kind at some resolution scale.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Which Table I dataset.
    pub kind: DatasetKind,
    /// Per-axis divisor applied to the full Table I resolution (1 = paper
    /// scale). Benches default to 4 so `3d_ball` becomes 256³.
    pub scale: usize,
    /// Seed controlling all procedural noise in the generators.
    pub seed: u64,
}

impl DatasetSpec {
    /// Create a spec; `scale` is the per-axis resolution divisor.
    pub fn new(kind: DatasetKind, scale: usize, seed: u64) -> Self {
        assert!(scale >= 1, "scale divisor must be >= 1");
        DatasetSpec { kind, scale, seed }
    }

    /// Resolution after applying the scale divisor (each axis ≥ 8 voxels).
    pub fn resolution(&self) -> Dims3 {
        let full = self.kind.full_resolution();
        Dims3::new(
            (full.nx / self.scale).max(8),
            (full.ny / self.scale).max(8),
            (full.nz / self.scale).max(8),
        )
    }

    /// Dataset size in bytes as Table I reports it: all variables of one
    /// timestep, f32 voxels (the climate entry's 7.2 GB is 244 variables of
    /// one 294×258×98 snapshot).
    pub fn table1_bytes(&self) -> usize {
        self.resolution().bytes_f32() * self.kind.num_variables()
    }

    /// Total bytes across every timestep our generator exposes.
    pub fn total_bytes(&self) -> usize {
        self.table1_bytes() * self.kind.num_timesteps()
    }

    /// The generator for variable `var` of this dataset.
    pub fn generator(&self, var: usize) -> Box<dyn ScalarFunction + Send> {
        assert!(var < self.kind.num_variables(), "variable index out of range");
        match self.kind {
            DatasetKind::Ball3d => Box::new(Ball3dField::new(self.seed)),
            DatasetKind::LiftedMixFrac => Box::new(CombustionField::mix_frac(self.seed)),
            DatasetKind::LiftedRr => Box::new(CombustionField::reaction_rate(self.seed)),
            DatasetKind::Climate => Box::new(ClimateField::new(self.seed, var)),
        }
    }

    /// Materialize variable `var` at normalized time `t` (in `[0, 1]`).
    pub fn materialize(&self, var: usize, t: f64) -> VolumeField {
        VolumeField::from_function(self.resolution(), &*self.generator(var), t)
    }
}

/// `3d_ball`: radial field with continuous interior variation — a smooth
/// oscillating shell structure so interior blocks carry signal while the
/// exterior is exactly-zero ambient space.
#[derive(Debug, Clone)]
pub struct Ball3dField {
    noise: ValueNoise,
}

impl Ball3dField {
    /// Create the generator from a noise seed.
    pub fn new(seed: u64) -> Self {
        Ball3dField { noise: ValueNoise::new(seed) }
    }
}

impl ScalarFunction for Ball3dField {
    fn eval(&self, x: f64, y: f64, z: f64, _t: f64) -> f32 {
        // Radius from volume center, normalized so r = 1 at face centers.
        let (dx, dy, dz) = (x - 0.5, y - 0.5, z - 0.5);
        let r = (dx * dx + dy * dy + dz * dz).sqrt() * 2.0;
        if r >= 1.0 {
            return 0.0; // ambient outside the ball
        }
        // Continuous intensity change: damped radial oscillation plus a
        // whisper of angular variation so iso-shells are not perfectly flat.
        let shell = (1.0 - r) * (0.5 + 0.5 * (r * 18.0).cos());
        let wobble = 0.05 * self.noise.sample(x * 6.0, y * 6.0, z * 6.0);
        (shell + wobble * (1.0 - r)).max(0.0) as f32
    }
}

/// Combustion generator: a lifted turbulent jet along +X.
///
/// `mix_frac` is a diffusing jet core with fBm turbulence growing
/// downstream; `reaction_rate` is a thin sheet where the mixture fraction
/// crosses its stoichiometric value — concentrated, high-entropy structure
/// surrounded by near-zero ambient, as in the real `lifted_rr` data.
#[derive(Debug, Clone)]
pub struct CombustionField {
    noise: ValueNoise,
    reaction_rate: bool,
}

impl CombustionField {
    /// The mixture-fraction variable (`lifted_mix_frac`).
    pub fn mix_frac(seed: u64) -> Self {
        CombustionField { noise: ValueNoise::new(seed), reaction_rate: false }
    }

    /// The reaction-rate variable (`lifted_rr`).
    pub fn reaction_rate(seed: u64) -> Self {
        CombustionField { noise: ValueNoise::new(seed ^ 0xC0FFEE), reaction_rate: true }
    }

    /// The underlying mixture-fraction field in `[0, 1]`.
    fn mixture(&self, x: f64, y: f64, z: f64) -> f64 {
        // Jet core half-width grows downstream; lift-off at x ≈ 0.08.
        let cy = 0.5 + 0.04 * self.noise.sample(x * 4.0, 0.0, 7.7);
        let cz = 0.5 + 0.04 * self.noise.sample(0.0, x * 4.0, 3.3);
        let w = 0.04 + 0.22 * x;
        let r2 = ((y - cy).powi(2) + (z - cz).powi(2)) / (w * w);
        let core = (-r2).exp();
        // Turbulence intensity grows downstream of the lift-off height.
        let turb_amp = 0.35 * (x - 0.08).clamp(0.0, 0.6);
        let turb = self.noise.fbm(x * 10.0, y * 10.0, z * 10.0, 5, 2.1, 0.55);
        (core * (1.0 + turb_amp * turb)).clamp(0.0, 1.0)
    }
}

impl ScalarFunction for CombustionField {
    fn eval(&self, x: f64, y: f64, z: f64, _t: f64) -> f32 {
        let f = self.mixture(x, y, z);
        if !self.reaction_rate {
            return f as f32;
        }
        // Reaction rate peaks where f crosses stoichiometric f_st = 0.42,
        // gated on being downstream of lift-off.
        let f_st = 0.42;
        let sheet = (-(f - f_st).powi(2) / (2.0 * 0.03f64.powi(2))).exp();
        let lifted = ((x - 0.12) / 0.05).clamp(0.0, 1.0);
        (sheet * lifted) as f32
    }
}

/// Climate generator: 244 variables in a few physical families, each with
/// distinct spatial structure; time moves a typhoon vortex and its
/// interacting smoke plume across the domain (the scenario of Figs. 2–3).
#[derive(Debug, Clone)]
pub struct ClimateField {
    noise: ValueNoise,
    var: usize,
}

/// Physical family of a climate variable, chosen by index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClimateFamily {
    /// Water-vapor-like: smooth vertical decay + plumes (e.g. QVAPOR).
    Moisture,
    /// Wind-like: vortex flow around the typhoon center.
    Wind,
    /// Aerosol-like: smoke/PM10 plume, highly localized (Observation 2's
    /// "severely contaminated" regions).
    Aerosol,
    /// Thermodynamic: smooth latitudinal/vertical gradients (low entropy
    /// almost everywhere).
    Thermo,
}

impl ClimateField {
    /// Generator for climate variable `var`.
    pub fn new(seed: u64, var: usize) -> Self {
        ClimateField { noise: ValueNoise::new(seed.wrapping_add(var as u64 * 0x5851_F42D)), var }
    }

    /// Deterministic family assignment: the 244 variables cycle through the
    /// four families so every family is well represented.
    pub fn family(&self) -> ClimateFamily {
        match self.var % 4 {
            0 => ClimateFamily::Moisture,
            1 => ClimateFamily::Wind,
            2 => ClimateFamily::Aerosol,
            _ => ClimateFamily::Thermo,
        }
    }

    /// Typhoon eye position at normalized time `t` (tracks west-northwest,
    /// like the paper's southeast-Asia scenario).
    fn eye(&self, t: f64) -> (f64, f64) {
        (0.75 - 0.5 * t, 0.35 + 0.3 * t)
    }
}

impl ScalarFunction for ClimateField {
    fn eval(&self, x: f64, y: f64, z: f64, t: f64) -> f32 {
        let (ex, ey) = self.eye(t);
        let dx = x - ex;
        let dy = y - ey;
        let r = (dx * dx + dy * dy).sqrt();
        let v = match self.family() {
            ClimateFamily::Moisture => {
                let base = (-(z * 3.0)).exp();
                let plume = self.noise.fbm(x * 8.0, y * 8.0, z * 4.0 + t * 2.0, 4, 2.0, 0.5);
                base * (0.7 + 0.3 * plume)
            }
            ClimateFamily::Wind => {
                // Tangential vortex speed: ramps up to the eyewall then
                // decays outward; plus background shear.
                let eyewall = 0.08;
                let speed = if r < eyewall { r / eyewall } else { (eyewall / r).powf(0.6) };
                let shear = 0.2 * (z - 0.5);
                (speed + shear + 0.08 * self.noise.sample(x * 12.0, y * 12.0, z * 6.0))
                    .clamp(-1.0, 2.0)
            }
            ClimateFamily::Aerosol => {
                // Smoke source in the southwest, advected towards the
                // typhoon; sharply localized ⇒ most blocks are ambient.
                let sx = 0.2 + 0.3 * t;
                let sy = 0.25;
                let d2 = ((x - sx).powi(2) + (y - sy).powi(2)) / 0.02;
                let plume = (-d2).exp() * (-(z * 5.0)).exp();
                let tongue = ((-((y - sy - 0.4 * (x - sx)).powi(2)) / 0.005).exp()
                    * ((x - sx) / 0.5).clamp(0.0, 1.0))
                    * (-(z * 4.0)).exp();
                let turb = 0.5 + 0.5 * self.noise.fbm(x * 14.0, y * 14.0, z * 7.0, 4, 2.0, 0.5);
                ((plume + 0.6 * tongue) * turb).clamp(0.0, 1.0)
            }
            ClimateFamily::Thermo => {
                // Smooth meridional + vertical gradient, tiny noise.
                1.0 - 0.6 * y - 0.3 * z + 0.02 * self.noise.sample(x * 3.0, y * 3.0, z * 2.0)
            }
        };
        v as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::BrickLayout;
    use crate::stats::BlockStats;

    #[test]
    fn table1_resolutions_match_paper() {
        assert_eq!(DatasetKind::Ball3d.full_resolution(), Dims3::cube(1024));
        assert_eq!(DatasetKind::LiftedMixFrac.full_resolution(), Dims3::new(800, 686, 215));
        assert_eq!(DatasetKind::LiftedRr.full_resolution(), Dims3::new(800, 800, 400));
        assert_eq!(DatasetKind::Climate.full_resolution(), Dims3::new(294, 258, 98));
        assert_eq!(DatasetKind::Climate.num_variables(), 244);
    }

    #[test]
    fn table1_sizes_match_paper() {
        // Full-scale sizes (Table I): 4 GB, 472 MB, 1 GB, 7.2 GB.
        let gb = |b: usize| b as f64 / (1024.0 * 1024.0 * 1024.0);
        let spec = |k| DatasetSpec::new(k, 1, 0);
        assert!((gb(spec(DatasetKind::Ball3d).resolution().bytes_f32()) - 4.0).abs() < 0.01);
        let mf = spec(DatasetKind::LiftedMixFrac).resolution().bytes_f32();
        assert!((mf as f64 / (1024.0 * 1024.0) - 472.0).abs() < 30.0);
        let rr = spec(DatasetKind::LiftedRr).resolution().bytes_f32();
        assert!((gb(rr) - 1.0).abs() < 0.05);
        // climate: 244 variables of one timestep ≈ 7.2 GB (decimal GB —
        // Table I uses binary GiB for 3d_ball but decimal for climate).
        let cl = DatasetSpec::new(DatasetKind::Climate, 1, 0).table1_bytes() as f64 / 1e9;
        assert!((cl - 7.25).abs() < 0.1, "climate {cl}");
    }

    #[test]
    fn scaled_resolution_divides_axes() {
        let s = DatasetSpec::new(DatasetKind::Ball3d, 4, 0);
        assert_eq!(s.resolution(), Dims3::cube(256));
    }

    #[test]
    fn scale_floors_at_eight_voxels() {
        let s = DatasetSpec::new(DatasetKind::Climate, 1000, 0);
        let r = s.resolution();
        assert!(r.nx >= 8 && r.ny >= 8 && r.nz >= 8);
    }

    #[test]
    fn ball_is_zero_outside_radius() {
        let f = Ball3dField::new(1);
        assert_eq!(f.eval(0.0, 0.0, 0.0, 0.0), 0.0); // corner: r > 1
        assert!(f.eval(0.5, 0.5, 0.5, 0.0) > 0.0); // center
    }

    #[test]
    fn ball_generation_is_deterministic() {
        let s = DatasetSpec::new(DatasetKind::Ball3d, 32, 7);
        let a = s.materialize(0, 0.0);
        let b = s.materialize(0, 0.0);
        assert_eq!(a, b);
    }

    #[test]
    fn mixfrac_peaks_in_jet_core() {
        let f = CombustionField::mix_frac(3);
        let core = f.eval(0.3, 0.5, 0.5, 0.0);
        let ambient = f.eval(0.3, 0.02, 0.02, 0.0);
        assert!(core > 0.5, "core = {core}");
        assert!(ambient < 0.05, "ambient = {ambient}");
    }

    #[test]
    fn reaction_rate_is_zero_before_liftoff() {
        let f = CombustionField::reaction_rate(3);
        assert_eq!(f.eval(0.05, 0.5, 0.5, 0.0), 0.0);
    }

    #[test]
    fn reaction_rate_is_bounded() {
        let f = CombustionField::reaction_rate(3);
        for i in 0..500 {
            let t = i as f64 / 500.0;
            let v = f.eval(t, (t * 7.0) % 1.0, (t * 13.0) % 1.0, 0.0);
            assert!((0.0..=1.0).contains(&(v as f64)));
        }
    }

    #[test]
    fn climate_families_cycle() {
        assert_eq!(ClimateField::new(0, 0).family(), ClimateFamily::Moisture);
        assert_eq!(ClimateField::new(0, 1).family(), ClimateFamily::Wind);
        assert_eq!(ClimateField::new(0, 2).family(), ClimateFamily::Aerosol);
        assert_eq!(ClimateField::new(0, 3).family(), ClimateFamily::Thermo);
        assert_eq!(ClimateField::new(0, 244 - 1).family(), ClimateFamily::Thermo);
    }

    #[test]
    fn climate_is_time_varying() {
        let f = ClimateField::new(0, 1); // wind
        let a = f.eval(0.6, 0.4, 0.5, 0.0);
        let b = f.eval(0.6, 0.4, 0.5, 1.0);
        assert_ne!(a, b);
    }

    #[test]
    fn aerosol_field_is_mostly_ambient() {
        // Observation 2: most blocks should be low-importance.
        let spec = DatasetSpec::new(DatasetKind::Climate, 6, 5);
        let field = VolumeField::from_function(spec.resolution(), &ClimateField::new(5, 2), 0.3);
        let layout = BrickLayout::with_target_blocks(spec.resolution(), 128);
        let (lo, hi) = field.min_max();
        let mut entropies: Vec<f64> = layout
            .block_ids()
            .map(|id| BlockStats::compute(&field.extract_block(&layout, id), lo, hi, 64).entropy)
            .collect();
        entropies.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = entropies[entropies.len() / 2];
        let top = entropies[entropies.len() - 1];
        assert!(top > median * 1.5 + 0.5, "no entropy contrast: median {median}, top {top}");
    }

    #[test]
    fn ball_entropy_contrast_between_interior_and_exterior() {
        let spec = DatasetSpec::new(DatasetKind::Ball3d, 16, 2); // 64³
        let field = spec.materialize(0, 0.0);
        let layout = BrickLayout::new(field.dims, Dims3::cube(16));
        let (lo, hi) = field.min_max();
        // Corner block (all outside the ball) vs. a central block.
        let corner = layout.block_at(0, 0, 0);
        let center = layout.block_at(2, 2, 2);
        let ec = BlockStats::compute(&field.extract_block(&layout, corner), lo, hi, 64).entropy;
        let ei = BlockStats::compute(&field.extract_block(&layout, center), lo, hi, 64).entropy;
        assert!(ec < 0.2, "corner should be ambient, entropy {ec}");
        assert!(ei > 1.0, "center should be structured, entropy {ei}");
    }

    #[test]
    #[should_panic]
    fn out_of_range_variable_panics() {
        DatasetSpec::new(DatasetKind::Ball3d, 8, 0).generator(1);
    }
}
