//! Property-based tests for the volume substrate.

use proptest::prelude::*;
use viz_volume::store::{decode_block, encode_block, encode_block_with};
use viz_volume::Codec;
use viz_volume::{BlockStats, BrickLayout, Dims3, Histogram, VolumeField};

fn dims_strategy(max: usize) -> impl Strategy<Value = Dims3> {
    (1..=max, 1..=max, 1..=max).prop_map(|(x, y, z)| Dims3::new(x, y, z))
}

proptest! {
    #[test]
    fn dims_index_roundtrip(d in dims_strategy(12), idx_seed in 0usize..10_000) {
        let idx = idx_seed % d.count();
        let (x, y, z) = d.coords(idx);
        prop_assert!(d.contains(x, y, z));
        prop_assert_eq!(d.index(x, y, z), idx);
    }

    #[test]
    fn layout_tiles_exactly(volume in dims_strategy(24), block in dims_strategy(9)) {
        let layout = BrickLayout::new(volume, block);
        // Sum of block voxel counts equals the volume voxel count.
        let total: usize = layout.block_ids().map(|id| layout.block_dims(id).count()).sum();
        prop_assert_eq!(total, volume.count());
        // block_of_voxel agrees with voxel_range.
        let probe = [(0, 0, 0), (volume.nx - 1, volume.ny - 1, volume.nz - 1)];
        for (x, y, z) in probe {
            let id = layout.block_of_voxel(x, y, z);
            let (s, e) = layout.voxel_range(id);
            prop_assert!(x >= s.nx && x < e.nx && y >= s.ny && y < e.ny && z >= s.nz && z < e.nz);
        }
    }

    #[test]
    fn world_roundtrip(volume in dims_strategy(32), px in 0.0f64..32.0, py in 0.0f64..32.0, pz in 0.0f64..32.0) {
        let layout = BrickLayout::new(volume, Dims3::cube(4));
        let p = viz_geom::Vec3::new(px, py, pz);
        let back = layout.world_to_voxel(layout.voxel_to_world(p));
        prop_assert!(p.distance(back) < 1e-9 * (1.0 + p.norm()));
    }

    #[test]
    fn world_bounds_longest_edge_normalized(volume in dims_strategy(64)) {
        let layout = BrickLayout::new(volume, Dims3::cube(8));
        let e = layout.world_bounds().extent();
        let longest = e.x.max(e.y).max(e.z);
        prop_assert!((longest - 2.0).abs() < 1e-9);
    }

    #[test]
    fn entropy_is_bounded(values in prop::collection::vec(-100.0f32..100.0, 1..500), bins in 1usize..128) {
        let h = Histogram::from_data(&values, bins);
        let e = h.entropy();
        prop_assert!(e >= 0.0);
        prop_assert!(e <= (bins as f64).log2() + 1e-9);
    }

    #[test]
    fn entropy_invariant_under_permutation(mut values in prop::collection::vec(0.0f32..1.0, 2..200)) {
        let a = Histogram::from_data(&values, 32).entropy();
        values.reverse();
        let b = Histogram::from_data(&values, 32).entropy();
        prop_assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn histogram_total_counts_non_nan(values in prop::collection::vec(prop::num::f32::ANY, 0..200)) {
        let mut h = Histogram::new(-1e30, 1e30, 16);
        h.add_all(&values);
        let non_nan = values.iter().filter(|v| !v.is_nan()).count() as u64;
        prop_assert_eq!(h.total, non_nan);
        prop_assert_eq!(h.counts.iter().sum::<u64>(), non_nan);
    }

    #[test]
    fn block_stats_min_max_bracket_mean(values in prop::collection::vec(-1000.0f32..1000.0, 1..300)) {
        let s = BlockStats::compute(&values, -1000.0, 1000.0, 32);
        prop_assert!(s.min <= s.max);
        prop_assert!(s.mean >= s.min - 1e-3 && s.mean <= s.max + 1e-3);
    }

    #[test]
    fn encode_decode_roundtrip(
        dims in dims_strategy(6),
        seed in 0u64..1000,
    ) {
        let n = dims.count();
        let data: Vec<f32> = (0..n)
            .map(|i| ((seed.wrapping_add(i as u64).wrapping_mul(2654435761)) % 1000) as f32 / 7.0)
            .collect();
        let buf = encode_block(dims, &data);
        let (d2, v2) = decode_block(&buf).unwrap();
        prop_assert_eq!(d2, dims);
        prop_assert_eq!(v2, data);
    }

    #[test]
    fn truncated_frames_never_decode(
        dims in dims_strategy(4),
        cut in 1usize..8,
    ) {
        let data = vec![1.0f32; dims.count()];
        let buf = encode_block(dims, &data);
        let end = buf.len().saturating_sub(cut);
        prop_assert!(decode_block(&buf[..end]).is_err());
    }

    /// Both codecs roundtrip arbitrary bit patterns exactly (including
    /// NaN payloads and infinities), through the full frame path.
    #[test]
    fn codec_frames_roundtrip_bitexact(
        dims in dims_strategy(5),
        seed in 0u64..5000,
    ) {
        let n = dims.count();
        let data: Vec<f32> = (0..n)
            .map(|i| f32::from_bits(((seed).wrapping_add(i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 32) as u32))
            .collect();
        for codec in [Codec::Raw, Codec::PlaneRle] {
            let frame = encode_block_with(codec, dims, &data);
            let (d2, v2) = decode_block(&frame).unwrap();
            prop_assert_eq!(d2, dims);
            prop_assert_eq!(v2.len(), data.len());
            for (a, b) in data.iter().zip(&v2) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    /// PlaneRle never expands beyond the 2x-per-plane RLE worst case.
    #[test]
    fn codec_expansion_is_bounded(
        dims in dims_strategy(5),
        seed in 0u64..1000,
    ) {
        let n = dims.count();
        let data: Vec<f32> = (0..n)
            .map(|i| ((seed.wrapping_add(i as u64 * 7919)) % 97) as f32 * 0.173)
            .collect();
        let encoded = Codec::PlaneRle.compress(&data).len();
        prop_assert!(encoded <= n * 8 + 16, "expanded to {encoded} for {n} voxels");
    }

    #[test]
    fn extract_block_lengths_match(volume in dims_strategy(16), block in dims_strategy(6)) {
        let layout = BrickLayout::new(volume, block);
        let field = VolumeField::from_function(volume, &|x: f64, y: f64, z: f64, _t: f64| {
            (x * 31.0 + y * 7.0 + z) as f32
        }, 0.0);
        for id in layout.block_ids() {
            let data = field.extract_block(&layout, id);
            prop_assert_eq!(data.len(), layout.block_dims(id).count());
        }
    }

    #[test]
    fn trilinear_within_data_range(
        x in -5.0f64..20.0, y in -5.0f64..20.0, z in -5.0f64..20.0,
    ) {
        let dims = Dims3::cube(8);
        let field = VolumeField::from_function(dims, &|x: f64, y: f64, z: f64, _t: f64| {
            (x + y + z) as f32
        }, 0.0);
        let (lo, hi) = field.min_max();
        let v = field.sample_trilinear(x, y, z);
        prop_assert!(v >= lo - 1e-6 && v <= hi + 1e-6, "interpolation escaped range");
    }
}
